//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only [`channel`] is reproduced, and only the MPMC unbounded channel with
//! cloneable senders *and receivers* (the property std's mpsc lacks).
//! Disconnection semantics match crossbeam: `recv` on an empty channel with
//! no live senders errors, `send` with no live receivers errors.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        avail: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent value is returned inside.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.avail.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.avail.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .avail
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            avail: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(7).unwrap();
            assert_eq!(h.join().unwrap(), 7);
        }
    }
}
