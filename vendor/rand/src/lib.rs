//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Reproduces the subset this workspace uses: [`SeedableRng::seed_from_u64`]
//! construction of [`rngs::StdRng`], and the [`RngExt`] methods `random`
//! and `random_range` over primitive ints and floats. The generator is
//! xoshiro256++ seeded through SplitMix64 — *not* the real StdRng (ChaCha12),
//! so absolute sequences differ from upstream rand, but every property the
//! repository relies on holds: determinism for a given seed, uniformity
//! good enough for workload synthesis, and distinct streams per seed.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (for floats: in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Unit-interval f64 from the high 53 bits of one word.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64. Deterministic per
    /// seed; not cryptographic (neither is the use here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let r = rng.random_range(-3.0f64..=3.0);
            assert!((-3.0..=3.0).contains(&r));
            let i = rng.random_range(5usize..17);
            assert!((5..17).contains(&i));
            let j = rng.random_range(0usize..=3);
            assert!(j <= 3);
            let n = rng.random_range(-10i64..10);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
