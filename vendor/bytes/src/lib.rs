//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Reproduces the subset this workspace uses: [`Bytes`] as a cheaply
//! cloneable shared byte buffer, [`BytesMut`] as a growable builder with
//! `split().freeze()`, and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the datagen wire formats rely on. Backed by
//! `Arc<[u8]>`; zero-copy slicing of a shared allocation is preserved,
//! zero-copy `from_static` is not (it copies — nothing here depends on the
//! distinction).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let len = data.len();
        Self { data, off: 0, len }
    }

    /// Buffer over static data (copies; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len);
        Self {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let len = data.len();
        Self { data, off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes.iter().take(32) {
        for c in std::ascii::escape_default(b) {
            write!(f, "{}", c as char)?;
        }
    }
    if bytes.len() > 32 {
        write!(f, "…({} bytes)", bytes.len())?;
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

/// A growable, uniquely owned byte builder.
#[derive(Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.vec
    }

    /// Split off all written bytes, leaving `self` empty. (The real crate
    /// keeps the allocation shared; here the returned half owns it and
    /// `self` starts fresh — same observable behaviour, one extra alloc on
    /// reuse.)
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            vec: std::mem::take(&mut self.vec),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.vec, f)
    }
}

/// Read cursor over a byte source. Little-endian accessors panic when the
/// source is exhausted, matching the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance past end");
        self.off += cnt;
        self.len -= cnt;
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_through_bytesmut() {
        let mut b = BytesMut::new();
        b.put_u16_le(7);
        b.put_u32_le(1 << 20);
        b.put_u64_le(u64::MAX - 3);
        b.put_f64_le(2.5);
        b.put_slice(b"tail");
        let frozen = b.split().freeze();
        assert!(b.is_empty());
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u16_le(), 7);
        assert_eq!(cur.get_u32_le(), 1 << 20);
        assert_eq!(cur.get_u64_le(), u64::MAX - 3);
        assert_eq!(cur.get_f64_le(), 2.5);
        let mut tail = [0u8; 4];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_slices_share() {
        let b = Bytes::copy_from_slice(b"hello world");
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(6..11);
        assert_eq!(s.as_ref(), b"world");
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn bytes_as_buf_advances() {
        let mut b = Bytes::copy_from_slice(&42u64.to_le_bytes());
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.remaining(), 0);
    }
}
