//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A minimal wall-clock harness over the API subset the bench files use:
//! `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs one
//! warmup iteration plus `sample_size` timed iterations and prints
//! mean/min per-iteration wall time (and MiB/s when a byte throughput was
//! declared). No statistical analysis, outlier rejection, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Declared work per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Mean/min per-iteration nanoseconds, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warmup, untimed
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((
            total.as_nanos() as f64 / self.samples as f64,
            min.as_nanos() as f64,
        ));
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion; // group lifetime tied to the criterion
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean_ns, min_ns)) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) => {
                    let mibs = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
                    format!("  {mibs:.1} MiB/s")
                }
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 / (mean_ns / 1e9);
                    format!("  {eps:.0} elem/s")
                }
                None => String::new(),
            };
            println!(
                "bench {name:<50} mean {:>12}  min {:>12}{extra}",
                fmt_ns(mean_ns),
                fmt_ns(min_ns),
            );
        }
        None => println!("bench {name:<50} (no iter() call)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, None, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// `criterion_group!(name, target, ...)`: a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &two| {
            b.iter(|| {
                runs += 1;
                two * 2
            })
        });
        group.finish();
        assert_eq!(runs, 4, "1 warmup + 3 samples");
    }
}
