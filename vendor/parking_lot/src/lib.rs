//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *exact API subset it uses* of each external
//! dependency (see `vendor/README.md`). This crate reproduces
//! `parking_lot`'s `Mutex`/`RwLock`/`Condvar` surface on top of `std::sync`:
//! non-poisoning guards (a panicked holder does not wedge later lockers),
//! `lock()`/`read()`/`write()` returning guards directly, and a `Condvar`
//! that re-waits through `&mut MutexGuard` like parking_lot's does.
//!
//! Semantics intentionally preserved: spurious wakeups are possible, condvar
//! timeout results report `timed_out()`, and guards release on drop. Not
//! reproduced (unused here): fairness, `try_lock`, mapped guards, timeouts
//! on lock acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Non-poisoning mutex with parking_lot's `lock() -> MutexGuard` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. The `Option` exists so [`Condvar::wait`] can take
/// the underlying std guard out and put the re-acquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter. parking_lot reports whether a thread was woken; std
    /// cannot observe that, so this conservatively reports `false`.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wake all waiters. parking_lot reports how many; std cannot observe
    /// that, so this conservatively reports 0.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_is_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
