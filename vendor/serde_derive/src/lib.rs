//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of wire-ability — nothing in the tree takes a
//! `T: Serialize` bound or invokes a serializer (all export formats are
//! hand-rolled CSV/JSON writers). The derives therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
