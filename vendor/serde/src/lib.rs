//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` as wire-ability markers
//! but never takes the traits as bounds nor drives a serializer, so this
//! stand-in only re-exports the no-op derive macros from the vendored
//! `serde_derive`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
