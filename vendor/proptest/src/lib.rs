//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Reproduces the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, `x in strategy` argument
//! binding, range / tuple / `collection::vec` / `bool::ANY` strategies, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed (FNV of the test name), so failures
//! reproduce exactly on re-run. Not reproduced: shrinking — a failing case
//! prints its inputs instead of minimizing them.

/// Strategy trait and implementations for ranges, tuples, and vectors.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for one `proptest!` argument.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `collection::vec(element_strategy, len_range)`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.len.start < self.len.end {
                self.len.start + (rng.next_u64() as usize) % (self.len.end - self.len.start)
            } else {
                self.len.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `bool::ANY`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Deterministic per-test random source and run configuration.
pub mod test_runner {
    /// SplitMix64; seeded from the test name so every run of a given test
    /// explores the same cases (reproducible CI, no shrinking needed to
    /// re-hit a failure).
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            Self { x: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration; only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Generate `#[test]` functions that run their body over generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __case_desc = format!("{:?}", ($(&$arg,)*));
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __case_desc,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert within a proptest body (plain assert; no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Generated values respect their strategies.
        #[test]
        fn generated_values_in_bounds(
            n in 2usize..8,
            x in -1e3f64..1e3,
            flag in crate::bool::ANY,
            items in crate::collection::vec((0usize..8, 1u32..500), 0..20),
        ) {
            prop_assert!((2..8).contains(&n));
            prop_assert!((-1e3..1e3).contains(&x));
            prop_assert!(usize::from(flag) <= 1);
            for (a, b) in items {
                prop_assert!(a < 8);
                prop_assert!((1..500).contains(&b));
            }
        }
    }

    proptest! {
        /// Default config runs too (256 cases).
        #[test]
        fn default_config_runs(v in crate::collection::vec(0u64..10, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }
}
