//! Runtime-adaptation integration tests (paper Section II-D): function
//! replacement without new pilots, processor scaling, and fault isolation.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{baseline_factory, datagen_produce_factory, paper_model_factory};
use pilot_edge::{CloudFactory, Context, EdgeToCloudPipeline, ProcessOutcome};
use pilot_ml::ModelKind;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn pilots(edge_cores: usize, cloud_cores: usize) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(edge_cores, 16.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    // Leak the service so pilots outlive this helper (Drop cancels pilots).
    std::mem::forget(svc);
    (edge, cloud)
}

#[test]
fn swap_low_to_high_fidelity_model_mid_stream() {
    // The paper's canonical adaptation: "exchanging low vs high fidelity
    // models" at runtime. Start with the baseline (low fidelity), swap to
    // k-means (high fidelity); the parameter server must start receiving
    // model updates only after the swap.
    let (edge, cloud) = pilots(1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(200), 40))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .rate_per_device(100.0)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        ctx.params.get(&ctx.model_key()).is_none(),
        "baseline must not publish a model"
    );
    running.replace_cloud_function(paper_model_factory(ModelKind::KMeans, 32));
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 40);
    let (_, version) = ctx.params.get(&ctx.model_key()).expect("model after swap");
    assert!((1..40).contains(&version), "version={version}");
}

#[test]
fn repeated_swaps_are_safe() {
    let (edge, cloud) = pilots(1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 30))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .rate_per_device(200.0)
        .start()
        .unwrap();
    for i in 0..5 {
        std::thread::sleep(Duration::from_millis(20));
        let gen = running.replace_cloud_function(baseline_factory());
        assert_eq!(gen, i + 2);
    }
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 30);
    assert_eq!(summary.errors, 0);
}

#[test]
fn scale_up_during_burst() {
    // 8 partitions, 1 consumer; scale to 8 mid-run. Everything drains and
    // the consumer pool reflects the scale.
    let (edge, cloud) = pilots(8, 8);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(200), 12))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(8)
        .processors(1)
        .rate_per_device(200.0)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    running.scale_processors(8).unwrap();
    assert_eq!(running.processor_count(), 8);
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 96);
}

#[test]
fn scale_down_preserves_completeness() {
    let (edge, cloud) = pilots(4, 4);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(200), 15))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(4)
        .rate_per_device(200.0)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    running.scale_processors(1).unwrap();
    assert_eq!(running.processor_count(), 1);
    let summary = running.wait(WAIT).unwrap();
    // At-least-once during the rebalance: no message may be LOST.
    assert_eq!(summary.messages, 60, "all distinct messages observed");
}

#[test]
fn poison_messages_do_not_stop_the_stream() {
    // Fault injection: the processing function fails on specific payloads.
    let (edge, cloud) = pilots(1, 1);
    let flaky: CloudFactory = Arc::new(|_ctx| {
        Box::new(move |_ctx: &Context, block| {
            if block.msg_id % 3 == 0 {
                Err(format!("poison at {}", block.msg_id))
            } else {
                Ok(ProcessOutcome::default())
            }
        })
    });
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 9))
        .process_cloud_function(flaky)
        .devices(1)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 9);
    assert_eq!(summary.errors, 3, "msg ids 0, 3, 6 fail");
    assert_eq!(ctx.counter("process_errors").get(), 3);
    assert_eq!(ctx.counter("messages_processed").get(), 6);
}

#[test]
fn oversubscribed_cloud_pilot_recovers_via_eviction() {
    // Occupy all-but-one cloud core with a long foreign task, then ask for
    // 2 processors. One consumer task can never start; the runtime must
    // evict its membership and let the live consumer drain everything.
    let (edge, cloud) = pilots(2, 2);
    let blocker = cloud
        .client()
        .unwrap()
        .submit("foreign-long-task", || {
            std::thread::sleep(Duration::from_secs(4));
            Ok(())
        })
        .unwrap();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 6))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 12);
    blocker.wait().unwrap();
}
