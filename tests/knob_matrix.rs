//! Knob-matrix equivalence (DESIGN.md §10, §12): the staged runtime
//! collapses formerly-divergent loops into shared engines, so the
//! producer-engine shape (thread-per-device vs multiplexed), the consumer
//! shape (inline fetch vs prefetch thread), and the consumer scheduling
//! shape (thread-backed cloud tasks vs the waker-based reactor) must be
//! *observationally interchangeable*. Every combination of the 2×2×2
//! matrix at a fixed seed must process the identical message set — ids,
//! exact payload content — and record a complete five-span chain
//! (EdgeProducer, edge→broker Network, Broker, broker→cloud Network,
//! CloudProcessor) for every message.

use parking_lot::Mutex;
use pilot_core::{Pilot, PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::faas::{CloudFactory, ProcessOutcome};
use pilot_edge::processors::datagen_produce_factory;
use pilot_edge::EdgeToCloudPipeline;
use pilot_metrics::{Component, MetricsRegistry};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);
const DEVICES: usize = 4;
const MESSAGES: usize = 6;

fn pilots(edge_cores: usize, cloud_cores: usize) -> (Pilot, Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 16.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

/// FNV-style content hash over a block's payload: identifies a message's
/// exact data without retaining it.
fn block_hash(data: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in data {
        h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
    }
    h
}

/// One run of the seeded workload under a given engine/prefetch/reactor
/// combo. Returns the sorted `(msg_id, content-hash)` set the cloud
/// function saw.
fn run_combo(
    producer_threads: Option<usize>,
    prefetch_depth: usize,
    reactor_threads: Option<usize>,
    log_dir: Option<std::path::PathBuf>,
) -> BTreeSet<(u64, u64)> {
    run_combo_controlled(
        producer_threads,
        prefetch_depth,
        reactor_threads,
        log_dir,
        None,
    )
}

/// [`run_combo`] with an optional live feedback controller attached — the
/// controller axis of the matrix.
fn run_combo_controlled(
    producer_threads: Option<usize>,
    prefetch_depth: usize,
    reactor_threads: Option<usize>,
    log_dir: Option<std::path::PathBuf>,
    controller: Option<pilot_edge::ControllerConfig>,
) -> BTreeSet<(u64, u64)> {
    let combo = format!(
        "producer_threads={producer_threads:?} prefetch_depth={prefetch_depth} \
         reactor_threads={reactor_threads:?} log_dir={log_dir:?} \
         controller={}",
        if controller.is_some() { "on" } else { "off" }
    );
    let edge_cores = producer_threads.unwrap_or(DEVICES);
    let (edge, cloud) = pilots(edge_cores, 2);
    let seen = Arc::new(Mutex::new(BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let capture: CloudFactory = Arc::new(move |_ctx| {
        let seen = Arc::clone(&seen2);
        Box::new(
            move |_ctx: &pilot_edge::faas::Context, block: &pilot_datagen::Block| {
                seen.lock().insert((block.msg_id, block_hash(&block.data)));
                Ok(ProcessOutcome::default())
            },
        )
    });
    let registry = MetricsRegistry::new();
    let mut builder = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(20), MESSAGES))
        .process_cloud_function(capture)
        .metrics(registry.clone())
        .devices(DEVICES)
        .processors(2)
        .prefetch_depth(prefetch_depth);
    if let Some(n) = producer_threads {
        builder = builder.producer_threads(n);
    }
    if let Some(n) = reactor_threads {
        builder = builder.reactor_threads(n);
    }
    if let Some(dir) = log_dir {
        builder = builder.log_dir(dir);
    }
    if let Some(cfg) = controller {
        builder = builder.telemetry_sample_ms(5).controller(cfg);
    }
    let running = builder.start().unwrap();
    let job_id = running.job_id();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages as usize, DEVICES * MESSAGES, "{combo}");
    assert_eq!(summary.errors, 0, "{combo}");

    // Span-chain completeness: group this job's spans by metric msg id and
    // demand the full five-component chain for every one of them.
    let mut chains: HashMap<u64, Vec<Component>> = HashMap::new();
    for span in registry.snapshot() {
        if span.job_id == job_id {
            chains.entry(span.msg_id).or_default().push(span.component);
        }
    }
    assert_eq!(
        chains.len(),
        DEVICES * MESSAGES,
        "{combo}: distinct metric msg ids"
    );
    for (mid, components) in &chains {
        let count = |want: &Component| components.iter().filter(|c| *c == want).count();
        let networks = components
            .iter()
            .filter(|c| matches!(c, Component::Network(_)))
            .count();
        assert_eq!(
            count(&Component::EdgeProducer),
            1,
            "{combo}: msg {mid} EdgeProducer spans"
        );
        assert_eq!(
            count(&Component::Broker),
            1,
            "{combo}: msg {mid} Broker spans"
        );
        assert_eq!(
            networks, 2,
            "{combo}: msg {mid} Network spans (edge→broker + broker→cloud); chain: {components:?}"
        );
        assert_eq!(
            count(&Component::CloudProcessor),
            1,
            "{combo}: msg {mid} CloudProcessor spans"
        );
    }
    Arc::try_unwrap(seen)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone())
}

#[test]
fn all_engine_prefetch_reactor_combos_process_identical_sets() {
    // The seed shape: threaded producers + serial consumers on cloud tasks.
    let baseline = run_combo(None, 0, None, None);
    assert_eq!(baseline.len(), DEVICES * MESSAGES);
    for producer_threads in [None, Some(2)] {
        for prefetch_depth in [0usize, 2] {
            for reactor_threads in [None, Some(2)] {
                if (producer_threads, prefetch_depth, reactor_threads) == (None, 0, None) {
                    continue;
                }
                let set = run_combo(producer_threads, prefetch_depth, reactor_threads, None);
                assert_eq!(
                    set, baseline,
                    "producer_threads={producer_threads:?} \
                     prefetch_depth={prefetch_depth} \
                     reactor_threads={reactor_threads:?} \
                     diverged from the threaded/serial baseline"
                );
            }
        }
    }
}

/// The durability axis: turning on the durable broker log (`log_dir`) is a
/// storage-engine change only — the message set the cloud function sees is
/// identical to the memory-only baseline, and the run leaves a recoverable
/// on-disk log behind.
#[test]
fn durable_log_is_observationally_identical_to_memory() {
    let dir =
        std::env::temp_dir().join(format!("pilot-knob-matrix-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let baseline = run_combo(None, 0, None, None);
    let durable = run_combo(None, 0, None, Some(dir.clone()));
    assert_eq!(
        durable, baseline,
        "log_dir changed the observable message set"
    );
    // The run persisted real segment files (one directory per partition).
    let partitions = std::fs::read_dir(&dir)
        .expect("durable run must create the log directory")
        .count();
    assert_eq!(partitions, DEVICES, "one p<N>/ directory per partition");
    std::fs::remove_dir_all(&dir).ok();
}

/// The controller axis: attaching a deliberately twitchy live controller
/// (2 ms tick, hysteresis 1, near-zero lag band — it will turn knobs
/// mid-run at every opportunity) must not change the observable message
/// set. Live resizes of the consumer pool, compute width, batching,
/// prefetch, and fetch budget all preserve exactly-once delivery and
/// payload integrity.
#[test]
fn live_controller_is_observationally_identical_to_static_knobs() {
    let baseline = run_combo(None, 2, None, None);
    assert_eq!(baseline.len(), DEVICES * MESSAGES);
    let twitchy = pilot_edge::ControllerConfig {
        tick: Duration::from_millis(2),
        hysteresis: 1,
        cooldown: Duration::from_millis(5),
        lag_bound: 1,
        lag_low: 0,
        bounds: pilot_edge::ControlBounds {
            max_processors: 4,
            max_compute: 4,
            ..pilot_edge::ControlBounds::default()
        },
        use_attribution: true,
        ..pilot_edge::ControllerConfig::default()
    };
    let controlled = run_combo_controlled(None, 2, None, None, Some(twitchy));
    assert_eq!(
        controlled, baseline,
        "the live controller changed the observable message set"
    );
}
