//! Live-telemetry-plane integration tests (DESIGN.md §11): the stage
//! gauges, the sampler, the bottleneck attributor, and the Chrome trace
//! export — plus the zero-overhead contract when the plane is off.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::runtime::telemetry::{
    GAUGE_BROKER_LAG_TOTAL, GAUGE_INFLIGHT_BATCH_BYTES, GAUGE_PREFETCH_OCCUPANCY,
    GAUGE_PRODUCER_QUEUE_DEPTH,
};
use pilot_edge::{EdgeToCloudPipeline, PipelineConfig, PipelineError};
use pilot_metrics::{attribute, validate_trace_json, Component, MetricsRegistry};
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::collections::HashMap;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn pilots(edge_cores: usize, cloud_cores: usize) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

#[test]
fn defaults_leave_telemetry_off() {
    // The knob must be opt-in, and OFF must mean zero footprint: no gauge
    // registered in the registry, no frames, no sampler thread.
    assert_eq!(PipelineConfig::default().telemetry_sample_ms, None);
    let registry = MetricsRegistry::new();
    let (edge, cloud) = pilots(1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 3))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .metrics(registry.clone())
        .start()
        .unwrap();
    assert!(running.telemetry().is_empty(), "no sampler when off");
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 3);
    assert_eq!(registry.gauge_count(), 0, "no gauges registered when off");
}

#[test]
fn zero_interval_is_rejected() {
    let cfg = PipelineConfig {
        telemetry_sample_ms: Some(0),
        ..PipelineConfig::default()
    };
    assert!(matches!(cfg.validate(), Err(PipelineError::Config(_))));
}

#[test]
fn frames_arrive_mid_run_and_are_monotonic() {
    // A paced run long enough to observe mid-flight: frames must be
    // retrievable before completion and time-ordered.
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 10))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .rate_per_device(40.0)
        .telemetry_sample_ms(5)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(80));
    let mid = running.telemetry();
    assert!(
        !mid.is_empty(),
        "sampler should have produced frames mid-run"
    );
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 20);
    assert!(mid.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    // Every frame carries every registered stage gauge.
    for frame in &mid {
        assert!(frame.value(GAUGE_PRODUCER_QUEUE_DEPTH).is_some());
        assert!(frame.value(GAUGE_BROKER_LAG_TOTAL).is_some());
    }
}

#[test]
fn gauges_read_zero_after_drain() {
    // Every push gauge (queue depth, in-flight bytes, prefetch occupancy)
    // must return to zero once the run drains — increments and decrements
    // balance across batching, prefetch, and the multiplexed engine.
    let registry = MetricsRegistry::new();
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(200), 8))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .metrics(registry.clone())
        .devices(4)
        .processors(2)
        .producer_threads(2)
        .batch_max_bytes(64 * 1024)
        .linger(Duration::from_millis(2))
        .prefetch_depth(2)
        .telemetry_sample_ms(5)
        .start()
        .unwrap();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 32);
    for name in [
        GAUGE_PRODUCER_QUEUE_DEPTH,
        GAUGE_INFLIGHT_BATCH_BYTES,
        GAUGE_PREFETCH_OCCUPANCY,
        GAUGE_BROKER_LAG_TOTAL,
    ] {
        assert_eq!(
            registry.gauge_value(name),
            Some(0),
            "{name} should drain to zero"
        );
    }
}

#[test]
fn attributor_names_wan_link_on_transatlantic_profile() {
    // Baseline model + transatlantic edge→broker hop: the WAN link must
    // dominate the critical path.
    let registry = MetricsRegistry::new();
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(200), 3))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .metrics(registry.clone())
        .devices(2)
        .link_edge_to_broker(profiles::transatlantic("edge->broker(wan)", 7).build())
        .link_broker_to_cloud(profiles::cloud_local("broker->cloud", 8).build())
        .telemetry_sample_ms(5)
        .start()
        .unwrap();
    let job_id = running.job_id();
    let frames = running.telemetry();
    running.wait(WAIT).unwrap();
    let spans: Vec<_> = registry
        .snapshot()
        .into_iter()
        .filter(|s| s.job_id == job_id)
        .collect();
    let attribution = attribute(&spans, &frames, 50_000);
    match attribution.dominant() {
        Some(Component::Network(name)) => assert!(name.contains("wan"), "{name}"),
        other => panic!("expected the WAN link to dominate, got {other:?}"),
    }
    let share = attribution.critical_path[0].1;
    assert!(share > 0.5, "WAN share should dominate, got {share}");
}

#[test]
fn attributor_names_processor_on_compute_heavy_cell() {
    // Isolation forest on large messages over local links: cloud
    // processing must dominate the critical path.
    let registry = MetricsRegistry::new();
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(2000), 3))
        .process_cloud_function(paper_model_factory(ModelKind::IsolationForest, 32))
        .metrics(registry.clone())
        .devices(2)
        .link_edge_to_broker(profiles::cloud_local("edge->broker", 7).build())
        .link_broker_to_cloud(profiles::cloud_local("broker->cloud", 8).build())
        .telemetry_sample_ms(5)
        .start()
        .unwrap();
    let job_id = running.job_id();
    let frames = running.telemetry();
    running.wait(WAIT).unwrap();
    let spans: Vec<_> = registry
        .snapshot()
        .into_iter()
        .filter(|s| s.job_id == job_id)
        .collect();
    let attribution = attribute(&spans, &frames, 50_000);
    assert_eq!(
        attribution.dominant(),
        Some(&Component::CloudProcessor),
        "critical path: {:?}",
        attribution.critical_path
    );
}

#[test]
fn chrome_trace_exports_complete_span_chains() {
    // The exported trace must be valid JSON with one complete 5-span chain
    // (produce → link → broker → link → process) per message, plus the
    // sampled gauge counter events.
    let registry = MetricsRegistry::new();
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 4))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .metrics(registry.clone())
        .devices(2)
        .telemetry_sample_ms(5)
        .start()
        .unwrap();
    let job_id = running.job_id();
    let frames = running.telemetry();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 8);
    let spans: Vec<_> = registry
        .snapshot()
        .into_iter()
        .filter(|s| s.job_id == job_id)
        .collect();
    // Per-message chain completeness on the span stream itself.
    let mut chains: HashMap<u64, Vec<&Component>> = HashMap::new();
    for s in &spans {
        chains.entry(s.msg_id).or_default().push(&s.component);
    }
    assert_eq!(chains.len(), 8, "one chain per message");
    for (msg, comps) in &chains {
        assert_eq!(comps.len(), 5, "msg {msg} chain incomplete: {comps:?}");
        let networks = comps
            .iter()
            .filter(|c| matches!(c, Component::Network(_)))
            .count();
        assert_eq!(networks, 2, "msg {msg} must cross both links");
        for required in [
            Component::EdgeProducer,
            Component::Broker,
            Component::CloudProcessor,
        ] {
            assert!(comps.contains(&&required), "msg {msg} missing {required:?}");
        }
    }
    // And the JSON itself must parse with everything aboard.
    let json = pilot_metrics::chrome_trace_json(&spans, &frames);
    let events = validate_trace_json(&json).expect("valid Chrome trace JSON");
    assert!(
        events >= spans.len(),
        "{events} events cannot hold {} spans",
        spans.len()
    );
}
