//! The models must actually *detect* the generator's injected outliers —
//! systems numbers mean nothing if the ML is broken. Scored with ROC-AUC
//! and precision@k against ground truth, through public APIs only.

use pilot_datagen::{DataGenConfig, DataGenerator};
use pilot_ml::eval::{precision_at_k, roc_auc, threshold_by_contamination};
use pilot_ml::{
    AutoEncoder, AutoEncoderConfig, Dataset, IsolationForest, IsolationForestConfig, KMeans,
    KMeansConfig, OutlierModel,
};

fn train_and_score(model: &mut dyn OutlierModel, passes: usize) -> (f64, f64) {
    let mut generator = DataGenerator::new(DataGenConfig::paper(2000));
    let train = generator.next_block();
    let test = generator.next_block();
    let train_ds = Dataset::new(&train.data, train.points, train.features);
    let test_ds = Dataset::new(&test.data, test.points, test.features);
    for _ in 0..passes {
        model.partial_fit(&train_ds);
    }
    let scores = model.score(&test_ds);
    let auc = roc_auc(&scores, &test.labels);
    let p_at_k = precision_at_k(&scores, &test.labels, test.outlier_count());
    (auc, p_at_k)
}

#[test]
fn kmeans_detects_injected_outliers() {
    let mut model = KMeans::new(KMeansConfig::paper());
    let (auc, p) = train_and_score(&mut model, 10);
    assert!(auc > 0.95, "k-means AUC {auc}");
    assert!(p > 0.85, "k-means precision@k {p}");
}

#[test]
fn isolation_forest_detects_injected_outliers() {
    let mut model = IsolationForest::new(IsolationForestConfig::paper());
    let (auc, p) = train_and_score(&mut model, 1);
    assert!(auc > 0.95, "isolation-forest AUC {auc}");
    assert!(p > 0.85, "isolation-forest precision@k {p}");
}

#[test]
fn autoencoder_detects_injected_outliers() {
    let mut cfg = AutoEncoderConfig::paper();
    cfg.epochs_per_batch = 3;
    let mut model = AutoEncoder::new(cfg);
    let (auc, p) = train_and_score(&mut model, 10);
    assert!(auc > 0.9, "auto-encoder AUC {auc}");
    assert!(p > 0.7, "auto-encoder precision@k {p}");
}

#[test]
fn contamination_threshold_flags_approximately_five_percent() {
    let mut generator = DataGenerator::new(DataGenConfig::paper(5000));
    let block = generator.next_block();
    let ds = Dataset::new(&block.data, block.points, block.features);
    let mut model = KMeans::new(KMeansConfig::paper());
    model.partial_fit(&ds);
    let scores = model.score(&ds);
    let flags = threshold_by_contamination(&scores, 0.05);
    let flagged = flags.iter().filter(|&&f| f).count();
    // round(5000 * 0.05) = 250, modulo score ties.
    assert!((225..=300).contains(&flagged), "flagged={flagged}");
}

#[test]
fn models_agree_on_strong_outliers() {
    // Cross-model sanity: the points every model ranks in its top-1% should
    // be mostly true outliers.
    let mut generator = DataGenerator::new(DataGenConfig::paper(3000));
    let block = generator.next_block();
    let ds = Dataset::new(&block.data, block.points, block.features);

    let mut km = KMeans::new(KMeansConfig::paper());
    let mut iso = IsolationForest::new(IsolationForestConfig::paper());
    for _ in 0..5 {
        km.partial_fit(&ds);
    }
    iso.partial_fit(&ds);

    let top_set = |scores: &[f64]| {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        idx[..30].to_vec()
    };
    let km_top = top_set(&km.score(&ds));
    let iso_top = top_set(&iso.score(&ds));
    let km_hits = km_top.iter().filter(|&&i| block.labels[i]).count();
    let iso_hits = iso_top.iter().filter(|&&i| block.labels[i]).count();
    assert!(km_hits >= 28, "k-means top-30 hits: {km_hits}");
    assert!(iso_hits >= 28, "iso-forest top-30 hits: {iso_hits}");
}
