//! Federated learning over the full pipeline — the paper's named
//! future-work scenario, asserted end-to-end: raw data stays on the
//! devices, FedAvg produces a global model that detects outliers on unseen
//! mixed data.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{DataGenConfig, DataGenerator};
use pilot_edge::processors::datagen_produce_factory;
use pilot_edge::windows::{aggregate_points, AggKind};
use pilot_edge::{
    CloudFactory, Context, DeploymentMode, EdgeFactory, EdgeToCloudPipeline, ProcessOutcome,
};
use pilot_ml::eval::roc_auc;
use pilot_ml::federated::{fed_avg, ClientUpdate};
use pilot_ml::{Dataset, KMeans, KMeansConfig, OutlierModel};
use std::sync::Arc;
use std::time::Duration;

const DEVICES: usize = 3;
const MESSAGES: usize = 8;
const POINTS: usize = 400;
const WAIT: Duration = Duration::from_secs(120);

fn kmeans_config() -> KMeansConfig {
    KMeansConfig::paper()
}

fn edge_factory() -> EdgeFactory {
    Arc::new(move |_ctx: &Context, device: usize| {
        let mut local = KMeans::new(kmeans_config());
        let mut last_global = 0;
        Box::new(move |ctx: &Context, block| {
            let key = format!("fed:global:{}", ctx.job_id);
            if let Some((g, v)) = ctx.params.get_if_newer(&key, last_global) {
                last_global = v;
                local.set_weights(&g);
                ctx.counter("global_pulls").incr();
            }
            let ds = Dataset::new(&block.data, block.points, block.features);
            local.partial_fit(&ds);
            ctx.params.update(
                &format!("fed:update:{}:{device}", ctx.job_id),
                pilot_params::MergePolicy::Assign,
                &local.weights(),
            );
            // Only a 10× downsampled summary leaves the device.
            Ok(aggregate_points(&block, 10, AggKind::Mean))
        })
    })
}

fn cloud_factory() -> CloudFactory {
    Arc::new(move |_ctx: &Context| {
        Box::new(move |ctx: &Context, _summary| {
            let updates: Vec<ClientUpdate> = (0..DEVICES)
                .filter_map(|d| {
                    ctx.params
                        .get(&format!("fed:update:{}:{d}", ctx.job_id))
                        .map(|(w, _)| ClientUpdate {
                            weights: w.to_vec(),
                            samples: POINTS as u64,
                        })
                })
                .collect();
            if updates.len() == DEVICES {
                if let Some(global) = fed_avg(&updates) {
                    ctx.params.update(
                        &format!("fed:global:{}", ctx.job_id),
                        pilot_params::MergePolicy::Assign,
                        &global,
                    );
                    ctx.counter("rounds").incr();
                }
            }
            Ok(ProcessOutcome::default())
        })
    })
}

#[test]
fn federated_kmeans_end_to_end() {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(DEVICES, 16.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 44.0), WAIT)
        .unwrap();
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(POINTS),
            MESSAGES,
        ))
        .process_edge_function(edge_factory())
        .process_cloud_function(cloud_factory())
        .mode(DeploymentMode::EdgeCentric)
        .devices(DEVICES)
        .processors(1)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    let summary = running.wait(WAIT).unwrap();

    // All summaries arrived, aggregation rounds happened, devices pulled
    // the global model back down.
    assert_eq!(summary.messages as usize, DEVICES * MESSAGES);
    assert!(ctx.counter("rounds").get() >= 1, "no aggregation round ran");
    assert!(
        ctx.counter("global_pulls").get() >= 1,
        "devices never pulled the global model"
    );

    // Only summaries crossed the network: per-message wire bytes match the
    // 10×-downsampled block, not the raw one.
    let broker = summary
        .report
        .component(&pilot_metrics::Component::Broker)
        .unwrap();
    let per_msg = broker.bytes / broker.count;
    assert_eq!(
        per_msg,
        pilot_datagen::serialized_size(POINTS / 10, 32) as u64
    );

    // The global model detects outliers on unseen mixed data.
    let (global, _) = ctx
        .params
        .get(&format!("fed:global:{}", ctx.job_id))
        .expect("global model");
    let mut model = KMeans::new(kmeans_config());
    assert!(model.set_weights(&global));
    let mut generator = DataGenerator::new(DataGenConfig::paper(2_000).with_seed(4242));
    let test = generator.next_block();
    let ds = Dataset::new(&test.data, test.points, test.features);
    let auc = roc_auc(&model.score(&ds), &test.labels);
    assert!(auc > 0.9, "federated global model AUC {auc}");
}
