//! Federation acceptance (DESIGN.md §14): scale-out must change the
//! *cost* of running many cells, never the *data* any one cell sees.
//!
//! 1. **Conservation.** A federated run with identical per-cell workloads
//!    delivers, per cell, exactly the `(msg_id, payload-hash)` set that N
//!    independent single-cell pipeline runs produce at the same seeds —
//!    sharing one reactor, one compute pool, and a sharded parameter
//!    plane is observationally invisible to each cell.
//! 2. **Thread budget.** 1024 cells on shared pools add a bounded, O(k)
//!    number of OS threads (≤64), asserted via `/proc/self/status` —
//!    not O(cells × stages).
//! 3. **Hierarchical exactness.** With the built-in streaming-mean
//!    participant, the final global model is the sample-weighted mean of
//!    every point generated anywhere in the federation.

use parking_lot::Mutex;
use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::faas::{CloudFactory, Context, ProcessOutcome};
use pilot_edge::federation::{self, FederationConfig};
use pilot_edge::processors::datagen_produce_factory;
use pilot_edge::EdgeToCloudPipeline;
use pilot_metrics::MetricsRegistry;
use pilot_params::ParameterServer;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// FNV-style content hash over a block's payload (same scheme as the
/// knob-matrix suite): identifies exact data without retaining it.
fn block_hash(data: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in data {
        h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
    }
    h
}

type SeenByCell = Arc<Mutex<HashMap<u64, BTreeSet<(u64, u64)>>>>;

/// A cell factory recording each cell's observed message set, keyed by
/// the cell id the federation passes as `ctx.job_id`.
fn capture_factory(seen: SeenByCell) -> CloudFactory {
    Arc::new(move |ctx: &Context| {
        let seen = Arc::clone(&seen);
        let cell = ctx.job_id;
        Box::new(move |_ctx: &Context, block: &pilot_datagen::Block| {
            seen.lock()
                .entry(cell)
                .or_default()
                .insert((block.msg_id, block_hash(&block.data)));
            Ok(ProcessOutcome::default())
        })
    })
}

/// One standalone single-cell pipeline run (the seed path, all defaults)
/// over the given generator config; returns its observed message set.
fn standalone_run(datagen: DataGenConfig, devices: usize, messages: usize) -> BTreeSet<(u64, u64)> {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(devices, 4.0 * devices as f64), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 16.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    let seen = Arc::new(Mutex::new(BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let capture: CloudFactory = Arc::new(move |_ctx| {
        let seen = Arc::clone(&seen2);
        Box::new(move |_ctx: &Context, block: &pilot_datagen::Block| {
            seen.lock().insert((block.msg_id, block_hash(&block.data)));
            Ok(ProcessOutcome::default())
        })
    });
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(datagen, messages))
        .process_cloud_function(capture)
        .devices(devices)
        .processors(2)
        .start()
        .unwrap();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages as usize, devices * messages);
    assert_eq!(summary.errors, 0);
    Arc::try_unwrap(seen)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone())
}

/// Conservation: each federated cell sees exactly what an independent
/// single-cell pipeline run at the same generator config sees.
#[test]
fn federated_cells_match_independent_pipeline_runs() {
    let mut cfg = FederationConfig {
        cells: 6,
        regions: 2,
        devices_per_cell: 3,
        messages_per_device: 5,
        points: 12,
        skew: 1.5, // per-cell data is deliberately non-iid
        reactor_threads: 3,
        ..FederationConfig::default()
    };
    let seen: SeenByCell = Arc::new(Mutex::new(HashMap::new()));
    cfg.cell_factory = Some(capture_factory(Arc::clone(&seen)));
    let expected = cfg.expected_messages();
    let summary = federation::run(cfg.clone(), WAIT).expect("federation run");
    assert_eq!(summary.processed, expected);
    assert_eq!(summary.produced, expected);

    let seen = seen.lock();
    assert_eq!(seen.len(), cfg.cells, "every cell processed something");
    for cell in 0..cfg.cells {
        let standalone = standalone_run(
            cfg.cell_datagen(cell),
            cfg.devices_per_cell,
            cfg.messages_per_device,
        );
        assert_eq!(
            seen[&(cell as u64)],
            standalone,
            "cell {cell}: federated message set diverged from the \
             equivalent standalone pipeline run"
        );
    }
}

#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status readable on linux")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

/// The scale-out acceptance gate: 1024 cells — 1024 pooled pilots, 1024
/// brokers, 2048 reactor tasks, 8 regions, telemetry on — must add at
/// most 64 OS threads over the pre-start baseline.
#[cfg(target_os = "linux")]
#[test]
fn thousand_cell_federation_stays_within_thread_budget() {
    let before = os_thread_count();
    let cfg = FederationConfig {
        cells: 1024,
        regions: 8,
        devices_per_cell: 1,
        messages_per_device: 1,
        points: 4,
        reactor_threads: 4,
        merge_interval: Duration::from_micros(500),
        telemetry_sample_ms: Some(5),
        ..FederationConfig::default()
    };
    let expected = cfg.expected_messages();
    let running = federation::start(cfg).expect("1024-cell start");
    let during = os_thread_count();
    let summary = running.wait(WAIT).expect("1024-cell run");
    assert_eq!(summary.processed, expected);
    assert!(summary.global.is_some(), "global model published");
    let added = during.saturating_sub(before);
    assert!(
        added <= 64,
        "1024 cells added {added} OS threads (budget 64): scale-out must \
         cost O(reactor_threads), not O(cells)"
    );
}

/// Hierarchical exactness: cell means → region weighted means → global
/// weighted mean reproduces the direct mean over every generated point.
#[test]
fn hierarchical_fedavg_matches_direct_mean() {
    let cfg = FederationConfig {
        cells: 5,
        regions: 2,
        devices_per_cell: 2,
        messages_per_device: 4,
        points: 8,
        skew: 2.0,
        reactor_threads: 2,
        ..FederationConfig::default()
    };
    let summary = federation::run(cfg.clone(), WAIT).expect("federation run");
    let (samples, model) = summary.global.expect("global model");

    // Regenerate every cell's stream through the same factory the
    // federation uses and fold the direct per-feature mean.
    let ctx = Context::new(
        0,
        cfg.devices_per_cell,
        ParameterServer::new(),
        MetricsRegistry::new(),
        HashMap::new(),
    );
    let mut sums: Vec<f64> = Vec::new();
    let mut count = 0u64;
    for cell in 0..cfg.cells {
        let factory = datagen_produce_factory(cfg.cell_datagen(cell), cfg.messages_per_device);
        for device in 0..cfg.devices_per_cell {
            let mut produce = factory(&ctx, device);
            while let Some(block) = produce(&ctx) {
                if sums.len() != block.features {
                    sums.resize(block.features, 0.0);
                }
                for point in block.data.chunks_exact(block.features) {
                    for (s, v) in sums.iter_mut().zip(point) {
                        *s += v;
                    }
                }
                count += block.points as u64;
            }
        }
    }
    assert_eq!(samples, count as f64, "every point counted exactly once");
    assert_eq!(model.len(), sums.len());
    for (feature, (got, sum)) in model.iter().zip(&sums).enumerate() {
        let want = sum / count as f64;
        let tol = 1e-9 * want.abs().max(1.0);
        assert!(
            (got - want).abs() < tol,
            "feature {feature}: global {got} vs direct mean {want}"
        );
    }
}
