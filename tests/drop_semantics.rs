//! Drop semantics of [`RunningPipeline`] (DESIGN.md §10): dropping a
//! mid-run pipeline must behave like an abort — every stage stops at its
//! next step boundary, drains (batch flush, sentinel append, group leave),
//! and is joined before `drop` returns. No leaked threads, no lost
//! sentinels, and the pilots' cores are immediately reusable.

use pilot_core::{Pilot, PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{baseline_factory, datagen_produce_factory};
use pilot_edge::EdgeToCloudPipeline;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn pilots(edge_cores: usize, cloud_cores: usize) -> (Pilot, Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 16.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

/// Read each partition's raw log back from the broker and assert it ends
/// with exactly one end-of-stream sentinel (an empty record): producers
/// drained on drop, and no duplicate sentinel was appended.
fn assert_sentinels_conserved(broker: &pilot_broker::Broker, topic: &str, devices: usize) {
    for partition in 0..devices {
        let hw = broker.high_watermark(topic, partition).unwrap();
        assert!(hw >= 1, "partition {partition} has no records at all");
        let records = broker
            .fetch(topic, partition, 0, hw as usize, Duration::ZERO)
            .unwrap();
        let sentinels = records.iter().filter(|r| r.value.is_empty()).count();
        assert_eq!(
            sentinels, 1,
            "partition {partition} holds {sentinels} sentinels (want exactly 1)"
        );
        assert!(
            records.last().unwrap().value.is_empty(),
            "partition {partition} does not end with its sentinel"
        );
    }
}

/// Start a long rate-paced run with the given builder tweaks, drop it
/// mid-stream, and verify the drop is prompt and sentinel-conserving.
fn drop_mid_run(
    devices: usize,
    configure: impl FnOnce(EdgeToCloudPipeline) -> EdgeToCloudPipeline,
) {
    let (edge, cloud) = pilots(devices.min(4), 2);
    let builder = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 100_000))
        .process_cloud_function(baseline_factory())
        .devices(devices)
        .processors(2)
        .rate_per_device(50.0); // ~2000 s stream: the drop is always mid-run
    let running = configure(builder).start().unwrap();
    let topic = running.topic().to_string();
    std::thread::sleep(Duration::from_millis(100));
    let t = Instant::now();
    drop(running);
    // Stages stop at their next step boundary; nothing should come close
    // to the 5 s per-task grace timeout.
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "drop took {:?} — a stage hit its join grace period",
        t.elapsed()
    );
    let broker = cloud.start_broker().unwrap(); // idempotent: same broker
    assert_sentinels_conserved(&broker, &topic, devices);
}

#[test]
fn drop_aborts_default_pipeline() {
    drop_mid_run(4, |b| b);
}

#[test]
fn drop_aborts_pipelined_multiplexed_pipeline() {
    // All the threaded machinery at once: engine workers, producer-side
    // batching with a linger window, and the consumer prefetch thread.
    // Drop must flush open batches before the sentinel and join the
    // prefetch thread (quit flag + channel disconnect), not leak it.
    drop_mid_run(8, |b| {
        b.producer_threads(2)
            .batch_max_bytes(16 * 1024)
            .linger(Duration::from_millis(2))
            .prefetch_depth(2)
    });
}

#[test]
fn dropped_pipeline_releases_cores() {
    // After a mid-run drop, the same pilots must be able to host a fresh
    // pipeline: if producer/consumer tasks leaked, the second run would
    // fail the capacity check or deadlock waiting for cores.
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge.clone())
        .pilot_cloud_processing(cloud.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 100_000))
        .process_cloud_function(baseline_factory())
        .devices(2)
        .processors(2)
        .rate_per_device(50.0)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    drop(running);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 5))
        .process_cloud_function(baseline_factory())
        .devices(2)
        .processors(2)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 10, "2 devices × 5 messages");
    assert_eq!(summary.errors, 0);
}
