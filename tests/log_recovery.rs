//! Crash-recovery property test for the durable broker log (DESIGN.md §13).
//!
//! Each case builds a durable topic, appends a known record sequence,
//! fsyncs at a random commit point, keeps appending, then "crashes": the
//! broker is dropped (user-space buffers flush, nothing fsyncs) and the
//! on-disk tail is torn at a random byte at-or-after the durable file
//! mark — exactly the region a real power cut may corrupt, since
//! everything at-or-before the mark has been fsynced. Reopening the same
//! directory must then uphold the recovery contract:
//!
//! 1. **Clean prefix** — the recovered log is a prefix of the appended
//!    sequence, byte-for-byte (no holes, no reordering, no invented
//!    records).
//! 2. **Durability floor** — every record at-or-below the durable
//!    watermark observed before the crash survives; only un-synced tail
//!    records may be lost.
//! 3. **Torn tails truncate, not poison** — a mid-frame tear costs at most
//!    the suffix from the tear onward, and the reopened log accepts new
//!    appends at the recovered high watermark.

use pilot_broker::{Broker, DurabilityConfig, Record, RetentionPolicy, SyncPolicy};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory (no `tempfile` crate in the build image).
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pilot-log-recovery-{}-{}",
        std::process::id(),
        TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic record for sequence index `i`: content derivable from
/// the index alone, so recovery can be checked without retaining payloads.
fn record_for(i: u64, size: usize) -> Record {
    let mut value = vec![0u8; size.max(8)];
    value[..8].copy_from_slice(&i.to_le_bytes());
    for (j, b) in value.iter_mut().enumerate().skip(8) {
        *b = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
    }
    Record::new(value)
        .with_key(format!("k{i}").into_bytes())
        .with_timestamp(1_000 + i * 10)
}

/// Sorted `.seg` files of partition 0 under `dir` (lexicographic order ==
/// base-offset order by the zero-padded naming scheme).
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir.join("p0"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case writes + tears + recovers a real on-disk log
        .. ProptestConfig::default()
    })]

    /// Random workload, random commit point, random tear point: the
    /// reopened log is always the longest clean prefix, never shorter than
    /// the durable watermark.
    #[test]
    fn prop_reopen_yields_clean_prefix_at_or_above_watermark(
        total in 8u64..400,
        commit_frac in 0u64..1000,
        tear_frac in 0u64..1000,
        value_size in 16usize..600,
    ) {
        let dir = scratch_dir();
        let cfg = DurabilityConfig::new(&dir).with_policy(SyncPolicy::OsOnly);
        let commit_at = total * commit_frac / 1000; // records synced before the crash

        // --- First life: append, sync part-way, append more, "crash". ---
        let (durable, mark) = {
            let broker = Broker::new();
            broker.create_topic_durable("t", 1, RetentionPolicy::unbounded(), &cfg).unwrap();
            let topic = broker.topic("t").unwrap();
            for i in 0..total {
                let off = topic.append(0, record_for(i, value_size)).unwrap();
                prop_assert_eq!(off, i);
                if i + 1 == commit_at {
                    topic.sync();
                }
            }
            // commit_at == 0 never syncs: the mark stays at the file start
            // the log was opened with, and nothing is durable.
            let durable = topic.durable_watermark(0).unwrap();
            prop_assert_eq!(durable, commit_at);
            (durable, topic.durable_file_mark(0).unwrap())
            // Drop: writers flush their buffers but never fsync.
        };

        // --- The crash: tear the log at a random byte after the mark. ---
        // Candidate tear sites are (file, len ≥ mark) pairs from the marked
        // segment onward; everything past the chosen site is deleted, the
        // chosen file truncated — the prefix a failed flush leaves behind.
        let (mark_base, mark_bytes) = mark;
        let mark_name = format!("{mark_base:020}.seg");
        let files = segment_files(&dir);
        let tail: Vec<&PathBuf> = files
            .iter()
            .filter(|p| p.file_name().unwrap().to_str().unwrap() >= mark_name.as_str())
            .collect();
        prop_assert!(!tail.is_empty(), "durable mark must point at an existing file");
        // Total tearable bytes across the tail, then pick one by fraction.
        let floors: Vec<u64> = tail
            .iter()
            .map(|p| if p.file_name().unwrap().to_str().unwrap() == mark_name { mark_bytes } else { 0 })
            .collect();
        let lens: Vec<u64> = tail.iter().map(|p| fs::metadata(p).unwrap().len()).collect();
        let tearable: u64 = lens.iter().zip(&floors).map(|(l, f)| l - f).sum();
        let mut tear_at = tearable * tear_frac / 1000;
        for ((path, len), floor) in tail.iter().zip(&lens).zip(&floors) {
            if tear_at <= len - floor {
                let keep = floor + tear_at;
                fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .unwrap()
                    .set_len(keep)
                    .unwrap();
                // Everything after the torn file is gone with the crash.
                let torn_name = path.file_name().unwrap().to_str().unwrap().to_string();
                for later in &files {
                    if later.file_name().unwrap().to_str().unwrap() > torn_name.as_str() {
                        fs::remove_file(later).unwrap();
                    }
                }
                break;
            }
            tear_at -= len - floor;
        }

        // --- Second life: recover and check the contract. ---
        let broker = Broker::new();
        broker.create_topic_durable("t", 1, RetentionPolicy::unbounded(), &cfg).unwrap();
        let topic = broker.topic("t").unwrap();
        let hwm = topic.high_watermark(0).unwrap();
        // Durability floor: every synced record survived the tear.
        prop_assert!(
            hwm >= durable,
            "recovered hwm {hwm} lost durable records (watermark was {durable})"
        );
        prop_assert!(hwm <= total, "recovery invented records: hwm {hwm} > appended {total}");
        // Clean prefix: recovered records match the appended sequence.
        let mut offset = 0;
        while offset < hwm {
            let records = topic.read(0, offset, 64).unwrap().unwrap();
            prop_assert!(!records.is_empty());
            for r in records {
                let want = record_for(r.offset, value_size);
                prop_assert_eq!(r.offset, offset);
                prop_assert_eq!(&r.value, &want.value);
                prop_assert_eq!(&r.key, &want.key);
                prop_assert_eq!(r.timestamp_us, want.timestamp_us);
                offset += 1;
            }
        }
        // The reopened log keeps accepting appends at the recovered hwm.
        let next = topic.append(0, record_for(hwm, value_size)).unwrap();
        prop_assert_eq!(next, hwm);

        drop(broker);
        fs::remove_dir_all(&dir).ok();
    }
}

/// Group commit publishes its watermark only after the fsync completes, so
/// a consumer that commits offsets it has *waited durable on* can never
/// commit past what recovery reproduces — even if the process dies the
/// instant after the wait returns.
#[test]
fn committed_offsets_never_exceed_recovered_watermark() {
    let dir = scratch_dir();
    let cfg = DurabilityConfig::new(&dir).with_policy(SyncPolicy::GroupCommit {
        interval: std::time::Duration::from_millis(2),
        batch_bytes: 0,
    });
    let committed = {
        let broker = Broker::new();
        broker
            .create_topic_durable("t", 1, RetentionPolicy::unbounded(), &cfg)
            .unwrap();
        let topic = broker.topic("t").unwrap();
        for i in 0..200 {
            topic.append(0, record_for(i, 64)).unwrap();
        }
        // Commit only up to the durable watermark, the rule a
        // durability-aware consumer group must follow.
        assert_eq!(
            topic.wait_durable(0, 120, std::time::Duration::from_secs(10)),
            Some(true)
        );
        let durable = topic.durable_watermark(0).unwrap();
        assert!(durable >= 120);
        broker.commit_offset("g", "t", 0, durable);
        durable
    };
    // Crash with whatever the OS was handed; recovery must cover the
    // committed prefix (fsync preceded the watermark the commit used).
    let broker = Broker::new();
    broker
        .create_topic_durable("t", 1, RetentionPolicy::unbounded(), &cfg)
        .unwrap();
    let topic = broker.topic("t").unwrap();
    let hwm = topic.high_watermark(0).unwrap();
    assert!(
        hwm >= committed,
        "recovered hwm {hwm} below an offset a consumer already committed ({committed})"
    );
    drop(broker);
    fs::remove_dir_all(&dir).ok();
}

/// Defaults-off guard: with `log_dir` unset the broker stays the seed's
/// memory-only structure — no durable watermark distinct from the high
/// watermark, no storage stats, no files anywhere.
#[test]
fn memory_only_defaults_are_seed_identical() {
    let broker = Broker::new();
    broker
        .create_topic("t", 2, RetentionPolicy::unbounded())
        .unwrap();
    let topic = broker.topic("t").unwrap();
    for i in 0..50u64 {
        topic.append((i % 2) as usize, record_for(i, 32)).unwrap();
    }
    assert!(!topic.is_durable());
    // Memory-only "durable" watermark is the high watermark (nothing lags).
    assert_eq!(topic.durable_watermark(0), topic.high_watermark(0));
    assert_eq!(topic.durable_file_mark(0), None);
    let stats = broker.log_stats();
    assert_eq!(stats.dirty_bytes, 0);
    assert_eq!(stats.fsync_count, 0);
    assert_eq!(stats.durable_lag, 0);
}
