//! Fan-in scale-out integration tests (DESIGN.md §9): the multiplexed
//! producer engine (`producer_threads`) and the multi-partition consumer
//! fetch must preserve every delivery and determinism guarantee of the
//! thread-per-device seed path — identical per-device message sets under a
//! fixed seed, conservation across consumer-group rebalances when
//! `processors << devices`, and unchanged defaults.

use parking_lot::Mutex;
use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::faas::{CloudFactory, ProcessOutcome};
use pilot_edge::processors::datagen_produce_factory;
use pilot_edge::{EdgeToCloudPipeline, PipelineConfig};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn pilots(edge_cores: usize, cloud_cores: usize) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

/// FNV-style content hash over a block's payload: identifies a message's
/// exact data without retaining it.
fn block_hash(data: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in data {
        h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
    }
    h
}

/// A cloud function that records the `(msg_id, content-hash)` of every
/// message it sees into a shared set.
fn capturing_factory(seen: Arc<Mutex<HashSet<(u64, u64)>>>) -> CloudFactory {
    Arc::new(move |_ctx| {
        let seen = Arc::clone(&seen);
        Box::new(
            move |_ctx: &pilot_edge::faas::Context, block: &pilot_datagen::Block| {
                seen.lock().insert((block.msg_id, block_hash(&block.data)));
                Ok(ProcessOutcome::default())
            },
        )
    })
}

#[test]
fn defaults_leave_multiplexing_off() {
    // The knobs must be opt-in: a default config runs thread-per-device
    // producers and thread-backed consumer tasks, exactly the seed
    // behaviour.
    let cfg = PipelineConfig::default();
    assert_eq!(cfg.producer_threads, None);
    assert_eq!(cfg.reactor_threads, None);
}

#[test]
fn threaded_and_multiplexed_message_sets_match() {
    // The same seeded workload through both engines: per-device message
    // sets (msg_id sequence + exact payload content) must be identical.
    // Per-device seeding makes every device's stream distinct, so the set
    // of (msg_id, content-hash) pairs across devices captures the full
    // per-device grouping.
    const DEVICES: usize = 8;
    const MESSAGES: usize = 6;
    let run = |producer_threads: Option<usize>| {
        let edge_cores = producer_threads.unwrap_or(DEVICES);
        let (edge, cloud) = pilots(edge_cores, 2);
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut builder = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(20), MESSAGES))
            .process_cloud_function(capturing_factory(Arc::clone(&seen)))
            .devices(DEVICES)
            .processors(2);
        if let Some(n) = producer_threads {
            builder = builder.producer_threads(n);
        }
        let summary = builder.run(WAIT).unwrap();
        assert_eq!(summary.messages as usize, DEVICES * MESSAGES);
        assert_eq!(summary.errors, 0);
        let mut v: Vec<(u64, u64)> = seen.lock().iter().copied().collect();
        v.sort_unstable();
        v
    };
    let threaded = run(None);
    let multiplexed = run(Some(2));
    assert_eq!(threaded.len(), DEVICES * MESSAGES);
    assert_eq!(
        threaded, multiplexed,
        "multiplexed engine changed the message set"
    );
}

#[test]
fn multiplexed_with_batching_and_prefetch() {
    // The engine must compose with the pipelined transport: per-device
    // batching state lives inside each DeviceProducer, so interleaved
    // stepping on two workers must not mix batches across devices.
    let (edge, cloud) = pilots(2, 4);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 10))
        .process_cloud_function(pilot_edge::processors::baseline_factory())
        .devices(16)
        .processors(4)
        .producer_threads(2)
        .batch_max_bytes(32 * 1024)
        .linger(Duration::from_millis(2))
        .prefetch_depth(2)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 160, "16 devices × 10 messages");
    assert_eq!(summary.errors, 0);
}

#[test]
fn rebalance_with_few_processors_over_many_partitions() {
    // processors << devices at scale: 8 members over 256 partitions, with
    // a mid-run scale-up and scale-down. Range reassignment moves dozens
    // of partitions per member per generation; no message may be lost and
    // distinct-message accounting must be exact.
    const DEVICES: usize = 256;
    const MESSAGES: usize = 4;
    let (edge, cloud) = pilots(4, 12);
    let seen = Arc::new(Mutex::new(HashSet::new()));
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), MESSAGES))
        .process_cloud_function(capturing_factory(Arc::clone(&seen)))
        .devices(DEVICES)
        .processors(8)
        .producer_threads(4)
        .rate_per_device(100.0) // ~40 ms stream: time for two rebalances
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    running.scale_processors(12).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    running.scale_processors(6).unwrap();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages as usize, DEVICES * MESSAGES);
    assert_eq!(summary.errors, 0);
    // At-least-once redelivery across the rebalances may process a message
    // twice, but the distinct set must be complete.
    assert_eq!(seen.lock().len(), DEVICES * MESSAGES);
}

#[test]
fn multiplexed_respects_rate_pacing() {
    // The deadline queue must reproduce the RateLimiter schedule: message n
    // of a device is due at epoch + n × interval, so 4 messages at 50 /s
    // cannot finish faster than ~3 intervals.
    let (edge, cloud) = pilots(2, 2);
    let t = Instant::now();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 4))
        .process_cloud_function(pilot_edge::processors::baseline_factory())
        .devices(4)
        .processors(2)
        .producer_threads(2)
        .rate_per_device(50.0)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 16);
    assert!(
        t.elapsed() >= Duration::from_millis(50),
        "4 messages at 50/s finished in {:?} — pacing ignored",
        t.elapsed()
    );
}

#[test]
fn multiplexed_abort_drains_sentinels() {
    // Abort mid-stream: engine workers must drain every device (batch
    // flush + sentinel) so wait() completes instead of timing out.
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 100_000))
        .process_cloud_function(pilot_edge::processors::baseline_factory())
        .devices(32)
        .processors(2)
        .producer_threads(2)
        .rate_per_device(50.0)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    running.abort();
    let summary = running.wait(Duration::from_secs(10)).unwrap();
    assert!((summary.messages as usize) < 32 * 100_000);
}

#[test]
fn small_edge_pilot_hosts_many_devices() {
    // The capacity check follows the engine: 2 edge cores cannot host 64
    // thread-per-device producers, but they can drive 64 multiplexed ones.
    let (edge, cloud) = pilots(2, 2);
    let err = EdgeToCloudPipeline::builder()
        .pilot_edge(edge.clone())
        .pilot_cloud_processing(cloud.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 2))
        .process_cloud_function(pilot_edge::processors::baseline_factory())
        .devices(64)
        .processors(2)
        .start()
        .unwrap_err();
    assert!(matches!(err, pilot_edge::PipelineError::Capacity(_)));
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 2))
        .process_cloud_function(pilot_edge::processors::baseline_factory())
        .devices(64)
        .processors(2)
        .producer_threads(2)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 128, "64 devices × 2 messages");
    assert_eq!(summary.errors, 0);
}
