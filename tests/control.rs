//! Feedback-controller tests (DESIGN.md §15): property tests over the pure
//! decision core ([`ControllerCore`]) — cooldown spacing under adversarial
//! lag sequences, guaranteed no-op at the bounds, hysteresis strictness,
//! scale-down walk order — plus integration tests pinning the two ends of
//! the `PipelineConfig::controller` knob: `None` is bit-identical to the
//! seed (empty journal, no `control.*` gauges), `Some` closes the loop
//! (non-empty journal with causes, `control.actions` gauge advancing).

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::control::{
    Action, BottleneckStage, ControllerCore, Knob, Observation, Verdict, GAUGE_CONTROL_ACTIONS,
};
use pilot_edge::processors::datagen_produce_factory;
use pilot_edge::{ControlBounds, ControllerConfig, EdgeToCloudPipeline, PipelineConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// Virtual knob state: the property tests feed released actions back into
/// the next observation, emulating a pipeline that applies every decision.
#[derive(Clone, Copy, Debug)]
struct KnobState {
    processors: usize,
    compute: usize,
    batch: usize,
    prefetch: usize,
    fetch: usize,
}

impl KnobState {
    fn observe(&self, now: Duration, lag: u64, stage: Option<BottleneckStage>) -> Observation {
        Observation {
            now,
            lag,
            bottleneck: stage,
            bottleneck_label: stage.map(|s| format!("{s:?}")),
            processors: self.processors,
            compute_width: self.compute,
            batch_max_bytes: self.batch,
            prefetch_depth: self.prefetch,
            fetch_max: self.fetch,
        }
    }

    fn apply(&mut self, action: &Action) {
        match *action {
            Action::ScaleProcessors { to, .. } => self.processors = to,
            Action::ResizeComputePool { to, .. } => self.compute = to,
            Action::SetBatchMaxBytes { to, .. } => self.batch = to,
            Action::SetPrefetchDepth { to, .. } => self.prefetch = to,
            Action::SetFetchMax { to, .. } => self.fetch = to,
            Action::SetLinger { .. } => {}
            Action::MigrateToEdge | Action::MigrateToCloud => {}
        }
    }
}

const STAGES: [Option<BottleneckStage>; 6] = [
    None,
    Some(BottleneckStage::EdgeLink),
    Some(BottleneckStage::CloudLink),
    Some(BottleneckStage::Broker),
    Some(BottleneckStage::Processors),
    Some(BottleneckStage::Producers),
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Under an adversarial gauge sequence — lag jumping arbitrarily and
    /// the attributed bottleneck rotating every tick — no knob ever fires
    /// twice within one cooldown window. Hysteresis 1 makes every tick
    /// eligible, so this is the worst case for oscillation.
    #[test]
    fn prop_cooldown_spaces_actions_per_knob(
        lags in proptest::collection::vec(0u64..200, 40..160),
        stage_offset in 0usize..6,
    ) {
        let cooldown = Duration::from_millis(70);
        let config = ControllerConfig {
            hysteresis: 1,
            cooldown,
            lag_bound: 50,
            lag_low: 5,
            use_attribution: true,
            ..ControllerConfig::default()
        };
        let mut core = ControllerCore::from_config(&config);
        let mut state = KnobState { processors: 2, compute: 2, batch: 0, prefetch: 2, fetch: 4 };
        let mut fired: HashMap<Knob, Vec<Duration>> = HashMap::new();
        for (i, lag) in lags.iter().enumerate() {
            let now = Duration::from_millis(10 * i as u64);
            let stage = STAGES[(i + stage_offset) % STAGES.len()];
            if let Some((_cause, action)) = core.observe(&state.observe(now, *lag, stage)) {
                fired.entry(action.knob()).or_default().push(now);
                state.apply(&action);
            }
        }
        for (knob, times) in &fired {
            for pair in times.windows(2) {
                prop_assert!(
                    pair[1].saturating_sub(pair[0]) >= cooldown,
                    "{knob:?} fired at {:?} then {:?}, inside the {cooldown:?} cooldown",
                    pair[0], pair[1]
                );
            }
        }
    }

    /// With every knob pinned (min = max = current) the controller is a
    /// guaranteed no-op: whatever the lag says and whatever bottleneck is
    /// attributed, no action is ever released.
    #[test]
    fn prop_no_action_released_at_the_bounds(
        lags in proptest::collection::vec(0u64..10_000, 30..100),
        stage_offset in 0usize..6,
    ) {
        let state = KnobState { processors: 3, compute: 2, batch: 4096, prefetch: 2, fetch: 8 };
        let config = ControllerConfig {
            hysteresis: 1,
            cooldown: Duration::ZERO,
            lag_bound: 10,
            lag_low: 9,
            bounds: ControlBounds {
                min_processors: 3,
                max_processors: 3,
                min_compute: 2,
                max_compute: 2,
                min_batch_bytes: 4096,
                max_batch_bytes: 4096,
                min_prefetch: 2,
                max_prefetch: 2,
                min_fetch_max: 8,
                max_fetch_max: 8,
            },
            use_attribution: true,
            ..ControllerConfig::default()
        };
        let mut core = ControllerCore::from_config(&config);
        for (i, lag) in lags.iter().enumerate() {
            let now = Duration::from_millis(10 * i as u64);
            let stage = STAGES[(i + stage_offset) % STAGES.len()];
            let decision = core.observe(&state.observe(now, *lag, stage));
            prop_assert!(decision.is_none(), "released {decision:?} at the bounds");
        }
    }
}

/// The hysteresis counter only advances on *consecutive* same-direction
/// observations: a mid-band sample resets it, so an over/over/mid pattern
/// never releases, while the Nth consecutive over does.
#[test]
fn hysteresis_counts_consecutive_observations_only() {
    let config = ControllerConfig {
        hysteresis: 3,
        cooldown: Duration::ZERO,
        lag_bound: 10,
        lag_low: 2,
        ..ControllerConfig::default()
    };
    let mut core = ControllerCore::from_config(&config);
    let state = KnobState {
        processors: 2,
        compute: 2,
        batch: 0,
        prefetch: 2,
        fetch: 4,
    };
    let mut tick = 0u64;
    let mut obs = |core: &mut ControllerCore, lag: u64| {
        tick += 1;
        core.observe(&state.observe(Duration::from_millis(10 * tick), lag, None))
    };
    // over, over, mid — the reset keeps this pattern silent forever.
    for round in 0..10 {
        assert!(obs(&mut core, 100).is_none(), "round {round}");
        assert!(obs(&mut core, 100).is_none(), "round {round}");
        assert!(obs(&mut core, 5).is_none(), "round {round} (mid-band)");
    }
    // Three consecutive overs release exactly one scale-up.
    assert!(obs(&mut core, 100).is_none());
    assert!(obs(&mut core, 100).is_none());
    let (cause, action) = obs(&mut core, 100).expect("third consecutive over must fire");
    assert_eq!(cause.verdict, Verdict::LagOver);
    assert_eq!(cause.lag, 100);
    assert_eq!(action, Action::ScaleProcessors { from: 2, to: 3 });
}

/// The attributed bottleneck picks the lever: edge link → batching, cloud
/// link → prefetch (or fetch when prefetch is off), broker → fetch budget,
/// processors / unattributed → consumer pool.
#[test]
fn bottleneck_routes_to_the_matching_knob() {
    let config = ControllerConfig {
        hysteresis: 1,
        cooldown: Duration::ZERO,
        lag_bound: 10,
        lag_low: 1,
        use_attribution: true,
        ..ControllerConfig::default()
    };
    let decide = |state: KnobState, stage: Option<BottleneckStage>| {
        let mut core = ControllerCore::from_config(&config);
        core.observe(&state.observe(Duration::from_millis(10), 100, stage))
            .map(|(_, action)| action)
    };
    let state = KnobState {
        processors: 2,
        compute: 2,
        batch: 0,
        prefetch: 2,
        fetch: 4,
    };
    assert_eq!(
        decide(state, Some(BottleneckStage::EdgeLink)),
        Some(Action::SetBatchMaxBytes {
            from: 0,
            to: 64 * 1024
        }),
        "edge link pressure turns batching on"
    );
    assert_eq!(
        decide(state, Some(BottleneckStage::CloudLink)),
        Some(Action::SetPrefetchDepth { from: 2, to: 3 }),
        "cloud link pressure deepens prefetch"
    );
    let no_prefetch = KnobState {
        prefetch: 0,
        ..state
    };
    assert_eq!(
        decide(no_prefetch, Some(BottleneckStage::CloudLink)),
        Some(Action::SetFetchMax { from: 4, to: 8 }),
        "with prefetch off, cloud link pressure grows the fetch budget"
    );
    assert_eq!(
        decide(state, Some(BottleneckStage::Broker)),
        Some(Action::SetFetchMax { from: 4, to: 8 })
    );
    assert_eq!(
        decide(state, Some(BottleneckStage::Processors)),
        Some(Action::ScaleProcessors { from: 2, to: 3 })
    );
    assert_eq!(
        decide(state, None),
        Some(Action::ScaleProcessors { from: 2, to: 3 }),
        "unattributed lag falls back to the consumer pool"
    );
}

/// Sustained low lag walks every knob back to its floor in reverse-cost
/// order (processors, compute, prefetch, fetch, batch), never raises
/// anything, and goes permanently silent once everything is at its floor.
#[test]
fn sustained_low_lag_walks_every_knob_to_its_floor() {
    let config = ControllerConfig {
        hysteresis: 1,
        cooldown: Duration::ZERO,
        lag_bound: 100,
        lag_low: 1,
        ..ControllerConfig::default()
    };
    let mut core = ControllerCore::from_config(&config);
    let mut state = KnobState {
        processors: 4,
        compute: 3,
        batch: 256 * 1024,
        prefetch: 4,
        fetch: 16,
    };
    let mut actions = Vec::new();
    for tick in 0..200u64 {
        let now = Duration::from_millis(10 * tick);
        if let Some((cause, action)) = core.observe(&state.observe(now, 0, None)) {
            assert_eq!(cause.verdict, Verdict::LagUnder);
            assert!(
                action.after() <= action.before(),
                "scale-down raised a knob: {action:?}"
            );
            state.apply(&action);
            actions.push(action);
        }
    }
    assert_eq!(state.processors, 1, "consumer pool at its floor");
    assert_eq!(state.compute, 1, "compute width at its floor");
    assert_eq!(state.prefetch, 1, "prefetch at its floor");
    assert_eq!(state.fetch, 1, "fetch budget at its floor");
    assert_eq!(state.batch, 0, "batching walked back off");
    // Reverse-cost order: all pool shrinks precede all prefetch/fetch/batch
    // trims, per the down-candidate priority.
    let rank = |a: &Action| match a.knob() {
        Knob::Processors => 0,
        Knob::Compute => 1,
        Knob::Prefetch => 2,
        Knob::Fetch => 3,
        Knob::Batch => 4,
        Knob::Placement => 5,
        Knob::Linger => 6,
    };
    let ranks: Vec<_> = actions.iter().map(rank).collect();
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(ranks, sorted, "walk order violated: {actions:?}");
    // And once at the floor, the controller stays silent.
    let decision = core.observe(&state.observe(Duration::from_secs(10), 0, None));
    assert!(decision.is_none(), "fired at the floor: {decision:?}");
}

fn pilots(edge_cores: usize, cloud_cores: usize) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

fn slow_processor(ms: u64) -> pilot_edge::CloudFactory {
    std::sync::Arc::new(move |_ctx| {
        Box::new(move |_ctx: &pilot_edge::Context, _block| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(pilot_edge::ProcessOutcome::default())
        })
    })
}

/// `controller: None` (the default) must be bit-identical to the seed:
/// no control thread, an empty journal, and no `control.*` gauge anywhere
/// in the telemetry stream.
#[test]
fn controller_off_leaves_zero_footprint() {
    assert!(PipelineConfig::default().controller.is_none());
    let registry = pilot_metrics::MetricsRegistry::new();
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 6))
        .process_cloud_function(slow_processor(1))
        .devices(2)
        .processors(2)
        .metrics(registry.clone())
        .telemetry_sample_ms(5)
        .start()
        .unwrap();
    assert!(running.control_events().is_empty(), "journal must be empty");
    assert!(running.scaling_events().is_empty());
    std::thread::sleep(Duration::from_millis(60));
    let frames = running.telemetry();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(
        registry.gauge_value(GAUGE_CONTROL_ACTIONS),
        None,
        "no control gauge may be registered without a controller"
    );
    assert_eq!(summary.messages, 12);
    assert_eq!(summary.errors, 0);
    assert!(!frames.is_empty(), "telemetry itself was on");
    for frame in &frames {
        assert!(
            frame.values.iter().all(|(n, _)| !n.starts_with("control.")),
            "control gauge leaked into a controller-off run: {frame:?}"
        );
    }
}

/// Controller on: a deliberately slow consumer builds lag, the controller
/// must journal at least one scale-up with its cause, and the
/// `control.actions` gauge must advance in the telemetry stream.
#[test]
fn controller_scales_up_under_lag_and_journals_the_cause() {
    let (edge, cloud) = pilots(4, 4);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 60))
        .process_cloud_function(slow_processor(5))
        .devices(4)
        .processors(1)
        .rate_per_device(100.0)
        .telemetry_sample_ms(10)
        .controller(ControllerConfig {
            tick: Duration::from_millis(25),
            hysteresis: 2,
            cooldown: Duration::from_millis(50),
            lag_bound: 10,
            lag_low: 1,
            bounds: ControlBounds {
                max_processors: 4,
                ..ControlBounds::default()
            },
            use_attribution: true,
            ..ControllerConfig::default()
        })
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(500));
    let events = running.control_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.action, Action::ScaleProcessors { from, to } if to > from)),
        "expected at least one scale-up in the journal, got {events:?}"
    );
    for e in &events {
        match e.cause.verdict {
            Verdict::LagOver => assert!(e.cause.lag > 10, "over-verdict with lag {}", e.cause.lag),
            Verdict::LagUnder => assert!(e.cause.lag <= 1),
            Verdict::External => panic!("controller never emits External verdicts"),
        }
        assert_eq!(e.before, e.action.before());
        assert_eq!(e.after, e.action.after());
    }
    assert!(
        events.iter().any(|e| !e.gauges.is_empty()),
        "telemetry was on, so journal entries must carry gauge snapshots"
    );
    // The sampler re-reads the gauge registry each frame, so the
    // controller's action counter must show up once it acted.
    let frames = running.telemetry();
    let acted = frames
        .iter()
        .filter_map(|f| f.value(GAUGE_CONTROL_ACTIONS))
        .max();
    assert!(
        acted.unwrap_or(0) >= 1,
        "control.actions gauge never advanced: {acted:?}"
    );
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 240);
    assert_eq!(summary.errors, 0);
}
