//! Event-driven consumer core stress tests (DESIGN.md §12).
//!
//! Two properties the reactor rests on, attacked directly:
//!
//! 1. **No lost wakeups.** `Topic::read_many_or_register` closes the
//!    classic race between "the sweep saw nothing" and "the waker was
//!    armed" by snapshotting the arrival sequence number before the sweep
//!    and re-checking it under the registry lock. The stress test races
//!    appends against registration across 256 partitions for thousands of
//!    iterations: every append must be observed — either by the sweep or
//!    by the waker it arms — and the watcher lists must not accumulate
//!    stale entries.
//!
//! 2. **Fixed thread pool.** With `reactor_threads = Some(k)` the consumer
//!    path spawns `k` reactor threads *total*, however many members the
//!    cell runs. Asserted at 4096 members via `/proc/self/status`.

use parking_lot::Mutex;
use pilot_broker::record::Record;
use pilot_broker::retention::RetentionPolicy;
use pilot_broker::topic::Topic;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};
use std::time::{Duration, Instant};

/// A waker that unparks a parked thread, with a notification flag so the
/// parked side can distinguish a real wake from a spurious unpark.
struct Unparker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for Unparker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Appends racing waker registration: one appender thread writes one
/// record to a random-ish partition per iteration while the consumer
/// thread sweeps-or-registers over all 256 partitions. The consumer must
/// observe every single record (no lost wakeup ⇒ no deadlock, because the
/// appender stops producing and the consumer would otherwise park
/// forever), and the registry must stay clean.
#[test]
fn registration_never_loses_a_wakeup_under_append_races() {
    const PARTITIONS: usize = 256;
    const APPENDS: usize = 10_000;
    let topic = Arc::new(Topic::new(
        "stress",
        PARTITIONS,
        RetentionPolicy::unbounded(),
    ));
    let waiter = topic.arrival_waiter();

    let appender = {
        let topic = Arc::clone(&topic);
        std::thread::spawn(move || {
            let mut state = 0x9e3779b97f4a7c15u64;
            for i in 0..APPENDS {
                // xorshift over the partition space: adjacent appends land
                // far apart, maximising sweep/registration interleavings.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let p = (state as usize) % PARTITIONS;
                topic
                    .append(p, Record::new(i.to_string().into_bytes()))
                    .expect("valid partition");
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
            }
        })
    };

    // The consumer: sweep-or-register, park on "registered", tally every
    // record seen. Offsets advance per partition, so each record counts
    // exactly once.
    let unparker = Arc::new(Unparker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&unparker));
    let mut offsets = vec![0u64; PARTITIONS];
    let mut seen = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    while seen < APPENDS {
        assert!(
            Instant::now() < deadline,
            "lost wakeup: consumer stuck with {seen}/{APPENDS} records observed"
        );
        let requests: Vec<(usize, u64)> = offsets.iter().copied().enumerate().collect();
        let ready = topic.read_many_or_register(&requests, usize::MAX, &waiter, &waker);
        if ready.is_empty() {
            // Registered. Park until the waker fires — bounded so the
            // assertion above (not a hung test) reports a lost wakeup.
            while !unparker.notified.swap(false, Ordering::Acquire) {
                std::thread::park_timeout(Duration::from_millis(200));
                if Instant::now() >= deadline {
                    break;
                }
            }
            continue;
        }
        for (p, result) in ready {
            let records = result.expect("offsets never trimmed under unbounded retention");
            offsets[p] += records.len() as u64;
            seen += records.len();
        }
    }
    appender.join().unwrap();
    assert_eq!(seen, APPENDS);
    // Self-cleaning watcher lists: one waiter re-registering thousands of
    // times leaves at most one entry per partition, and releasing the
    // waiter leaves the slot reusable.
    assert!(
        topic.watcher_entries() <= PARTITIONS,
        "watcher lists accumulated {} entries for a single waiter",
        topic.watcher_entries()
    );
    topic.release_waiter(waiter);
}

/// Many concurrent waiters with distinct partition sets: each waiter must
/// only ever be woken for its own partitions, and every waiter must see
/// its records. Exercises the epoch invalidation across overlapping
/// registrations.
#[test]
fn concurrent_waiters_each_observe_their_own_partitions() {
    const WAITERS: usize = 8;
    const PER_WAITER: usize = 32; // partitions per waiter
    const APPENDS_PER_PARTITION: usize = 40;
    let topic = Arc::new(Topic::new(
        "stress-multi",
        WAITERS * PER_WAITER,
        RetentionPolicy::unbounded(),
    ));
    let observed: Arc<Mutex<HashSet<(usize, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let consumers: Vec<_> = (0..WAITERS)
        .map(|w| {
            let topic = Arc::clone(&topic);
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                let waiter = topic.arrival_waiter();
                let unparker = Arc::new(Unparker {
                    thread: std::thread::current(),
                    notified: AtomicBool::new(false),
                });
                let waker = Waker::from(Arc::clone(&unparker));
                let parts: Vec<usize> = (w * PER_WAITER..(w + 1) * PER_WAITER).collect();
                let mut offsets = vec![0u64; PER_WAITER];
                let mut seen = 0usize;
                let deadline = Instant::now() + Duration::from_secs(60);
                while seen < PER_WAITER * APPENDS_PER_PARTITION {
                    assert!(Instant::now() < deadline, "waiter {w} lost a wakeup");
                    let requests: Vec<(usize, u64)> =
                        parts.iter().zip(&offsets).map(|(&p, &o)| (p, o)).collect();
                    let ready = topic.read_many_or_register(&requests, usize::MAX, &waiter, &waker);
                    if ready.is_empty() {
                        while !unparker.notified.swap(false, Ordering::Acquire) {
                            std::thread::park_timeout(Duration::from_millis(200));
                            if Instant::now() >= deadline {
                                break;
                            }
                        }
                        continue;
                    }
                    let mut obs = observed.lock();
                    for (p, result) in ready {
                        assert!(
                            parts.contains(&p),
                            "waiter {w} handed records for partition {p} it never requested"
                        );
                        let records = result.expect("never trimmed");
                        let base = offsets[p - w * PER_WAITER];
                        for (i, _) in records.iter().enumerate() {
                            obs.insert((p, base + i as u64));
                        }
                        offsets[p - w * PER_WAITER] += records.len() as u64;
                        seen += records.len();
                    }
                }
                topic.release_waiter(waiter);
            })
        })
        .collect();
    // One appender sprays all partitions round-robin.
    for i in 0..APPENDS_PER_PARTITION {
        for p in 0..WAITERS * PER_WAITER {
            topic
                .append(p, Record::new(i.to_string().into_bytes()))
                .unwrap();
        }
    }
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(
        observed.lock().len(),
        WAITERS * PER_WAITER * APPENDS_PER_PARTITION,
        "every appended record observed exactly once across waiters"
    );
}

#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status readable on linux")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

/// The acceptance gate for the reactor's whole point: 4096 consumer
/// members on `reactor_threads = 2` must cost 2 reactor threads plus a
/// constant for the rest of the harness — not 4096 task threads.
#[cfg(target_os = "linux")]
#[test]
fn four_thousand_members_run_on_a_fixed_thread_pool() {
    use pilot_core::{PilotComputeService, PilotDescription};
    use pilot_datagen::DataGenConfig;
    use pilot_edge::processors::{baseline_factory, datagen_produce_factory};
    use pilot_edge::EdgeToCloudPipeline;

    const DEVICES: usize = 4096;
    let wait = Duration::from_secs(300);
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(2, 16.0), wait)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 16.0), wait)
        .unwrap();
    let before = os_thread_count();
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 1))
        .process_cloud_function(baseline_factory())
        .devices(DEVICES) // 4096 members (processors defaults to devices)
        .producer_threads(2)
        .reactor_threads(2)
        .start()
        .unwrap();
    let during = os_thread_count();
    let added = during.saturating_sub(before);
    // 2 producer engine workers + 2 reactor threads + harness constant
    // (pilot workers, broker plumbing). The bound is generous; the point
    // is that it does not scale with the 4096 members.
    assert!(
        added <= 64,
        "4096 reactor members added {added} OS threads — expected a small \
         constant (2 reactor threads + harness), got per-member threads"
    );
    let summary = running.wait(wait).unwrap();
    assert_eq!(summary.messages as usize, DEVICES, "one message per device");
    assert_eq!(summary.errors, 0);
}
