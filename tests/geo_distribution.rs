//! Geographic-distribution integration tests: the WAN link model must shape
//! pipeline behaviour exactly as the paper's Section III.2 reports.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{serialized_size, DataGenConfig};
use pilot_edge::processors::{
    datagen_produce_factory, downsample_edge_factory, paper_model_factory,
};
use pilot_edge::{DeploymentMode, EdgeToCloudPipeline, RunSummary};
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(300);

fn run_geo(
    devices: usize,
    points: usize,
    messages: usize,
    mode: DeploymentMode,
    downsample: usize,
) -> RunSummary {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(devices, 4.0 * devices as f64).with_site("jetstream"),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 44.0).with_site("lrz"), WAIT)
        .unwrap();
    let mut builder = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(points),
            messages,
        ))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(devices)
        .mode(mode)
        .link_edge_to_broker(profiles::transatlantic("wan", 3).build())
        .link_broker_to_cloud(profiles::cloud_local("lrz", 4).build());
    if mode.edge_processing() {
        builder = builder.process_edge_function(downsample_edge_factory(downsample));
    }
    builder.run(WAIT).unwrap()
}

#[test]
fn wan_imposes_latency_floor() {
    // One-way 70–80 ms propagation: end-to-end latency can never be below
    // 70 ms, whatever the message size.
    let s = run_geo(1, 25, 4, DeploymentMode::CloudCentric, 1);
    assert_eq!(s.messages, 4);
    let p50 = s.latency_p50_ms;
    assert!(p50 >= 70.0, "median latency {p50} ms below the WAN floor");
    assert!(p50 < 250.0, "median latency {p50} ms implausibly high");
}

#[test]
fn wan_caps_throughput_at_link_bandwidth() {
    // 2.5 MB messages from two devices sharing the pipe: goodput must sit
    // within the link's 60–100 Mbit/s envelope (never above it; somewhat
    // below it because production time is not pipelined away entirely),
    // far below what local runs reach (multi-Gbit/s).
    let s = run_geo(2, 10_000, 4, DeploymentMode::CloudCentric, 1);
    let mbit = s.throughput_mb * 8.0;
    assert!(mbit <= 105.0, "goodput {mbit:.1} Mbit/s exceeds the link");
    assert!(mbit >= 20.0, "goodput {mbit:.1} Mbit/s suspiciously low");
}

#[test]
fn hybrid_deployment_beats_cloud_centric_on_wan() {
    // The paper: WAN-limited scenarios "would benefit from a hybrid
    // edge-to-cloud deployment, e.g., by adding a data compression step
    // before the data transfer". 4× downsampling → ~4× less data on the
    // WAN → higher message throughput and lower latency.
    // 10,000-point messages with 10× downsampling: the WAN transit term
    // (≈260 ms) dominates, so the reduction shows through clearly even
    // with unoptimised (debug-build) compute costs.
    let cloud_centric = run_geo(1, 10_000, 4, DeploymentMode::CloudCentric, 1);
    let hybrid = run_geo(1, 10_000, 4, DeploymentMode::Hybrid, 10);
    assert!(
        hybrid.throughput_msgs > cloud_centric.throughput_msgs * 1.5,
        "hybrid {:.2} msgs/s vs cloud-centric {:.2} msgs/s",
        hybrid.throughput_msgs,
        cloud_centric.throughput_msgs
    );
    assert!(
        hybrid.latency_mean_ms < cloud_centric.latency_mean_ms,
        "hybrid {:.1} ms vs cloud-centric {:.1} ms",
        hybrid.latency_mean_ms,
        cloud_centric.latency_mean_ms
    );
    // The hybrid run recorded edge-processing spans.
    assert!(hybrid
        .report
        .component(&pilot_metrics::Component::EdgeProcessor)
        .is_some());
}

#[test]
fn message_sizes_match_paper_s1() {
    // S-1: 25 points ≈ 7 KB, 10,000 points ≈ 2.6 MB.
    let small = serialized_size(25, 32);
    let large = serialized_size(10_000, 32);
    assert!((6_000..8_000).contains(&small), "{small}");
    assert!((2_500_000..2_700_000).contains(&large), "{large}");
}

#[test]
fn local_runs_are_far_faster_than_wan() {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(1, 44.0), WAIT)
        .unwrap();
    let local = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(25), 4))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(1)
        .link_edge_to_broker(profiles::cloud_local("lrz-a", 1).build())
        .link_broker_to_cloud(profiles::cloud_local("lrz-b", 2).build())
        .run(WAIT)
        .unwrap();
    let wan = run_geo(1, 25, 4, DeploymentMode::CloudCentric, 1);
    assert!(
        local.latency_mean_ms * 10.0 < wan.latency_mean_ms,
        "local {:.2} ms vs wan {:.2} ms",
        local.latency_mean_ms,
        wan.latency_mean_ms
    );
}
