//! Pilot-lifecycle integration: pipelines over every backend class,
//! HPC queue waits, walltime, energy accounting, and teardown.

use pilot_core::{
    BatchQueue, BatchQueueBackend, PilotComputeService, PilotDescription, PilotState,
};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::EdgeToCloudPipeline;
use pilot_ml::ModelKind;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

#[test]
fn pipeline_on_ssh_edge_and_openstack_cloud() {
    // The real backend classes, with their simulated boot delays.
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::edge_device("raspi-7", "plant"), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::lrz_large(), WAIT)
        .unwrap();
    assert_eq!(edge.description().cores, 1);
    assert_eq!(cloud.description().cores, 10);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge.clone())
        .pilot_cloud_processing(cloud.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 5))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 5);
    // Both pilots accumulated busy time and therefore energy.
    assert!(edge.energy().joules() > 0.0);
    assert!(cloud.energy().joules() > 0.0);
    // Edge (RasPi class) burns far less power than the large VM.
    let edge_watts = edge.energy().joules() / edge.uptime().as_secs_f64();
    let cloud_watts = cloud.energy().joules() / cloud.uptime().as_secs_f64();
    assert!(
        edge_watts < cloud_watts / 3.0,
        "edge {edge_watts:.1} W vs cloud {cloud_watts:.1} W"
    );
    edge.release();
    cloud.release();
    assert_eq!(edge.state(), PilotState::Done);
}

#[test]
fn hpc_pilot_waits_for_queue_then_processes() {
    let svc = PilotComputeService::new();
    let queue = BatchQueue::new("normal", 1);
    svc.register_backend(Arc::new(BatchQueueBackend::new(queue.clone())));
    // A held slot forces the pilot through a visible Queued phase.
    let slot = queue.acquire(Duration::from_secs(1)).unwrap();
    let hpc = svc
        .create_pilot(PilotDescription::hpc("normal", 4, 64.0))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(hpc.state(), PilotState::Queued);
    drop(slot);
    hpc.wait_active(WAIT).unwrap();
    // Once active, the HPC pilot processes like any other.
    let edge = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(hpc.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 4))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 4);
    hpc.release();
    // Releasing frees the queue slot for the next job.
    assert!(queue.acquire(Duration::from_millis(200)).is_some());
}

#[test]
fn released_pilot_rejects_new_pipelines() {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    cloud.release();
    let err = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 1))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(1)
        .start()
        .unwrap_err();
    assert!(
        matches!(err, pilot_edge::PipelineError::PilotNotReady { .. }),
        "{err}"
    );
}

#[test]
fn walltime_expiry_is_observable_during_runs() {
    let svc = PilotComputeService::new();
    let desc = PilotDescription::local(1, 4.0).with_walltime(Duration::from_millis(50));
    let pilot = svc.submit_and_wait(desc, WAIT).unwrap();
    assert!(!pilot.is_expired());
    std::thread::sleep(Duration::from_millis(80));
    assert!(pilot.is_expired());
    // Expiry is advisory (the application decides); the pilot still works.
    assert!(pilot.client().is_ok());
}

#[test]
fn service_drop_cancels_everything() {
    let pilot = {
        let svc = PilotComputeService::new();
        svc.submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
            .unwrap()
        // svc dropped here → cancel_all
    };
    assert_eq!(pilot.state(), PilotState::Cancelled);
    assert!(pilot.client().is_err());
}
