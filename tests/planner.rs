//! Planner-vs-simulator validation: the analytic capacity model's
//! predictions must agree with measured pipeline runs — the planner is only
//! useful if its whiteboard arithmetic tracks the system it plans for.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::planner::{predict, PlannerInput};
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::EdgeToCloudPipeline;
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(300);

#[test]
fn wan_prediction_matches_measured_run() {
    // The planner is used as designed: cost fields come from measurement.
    // Time one produce (generation + serialization) on this machine — in a
    // debug build on a loaded CI box this is far from negligible — and, on
    // a single-core host, producers serialise, so the effective producer
    // capacity is one device's worth.
    let mut generator = pilot_datagen::DataGenerator::new(DataGenConfig::paper(5_000).with_seed(9));
    let t0 = std::time::Instant::now();
    for _ in 0..3 {
        let block = generator.next_block();
        let _ = pilot_datagen::encode_with(pilot_datagen::Codec::F64, &block, 0);
    }
    let produce_secs = t0.elapsed().as_secs_f64() / 3.0;

    let mut input = PlannerInput::new(2, 5_000);
    input.link_edge_broker = profiles::transatlantic("wan", 9);
    input.produce_secs = produce_secs
        * if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            2.0 // both producers share one core
        } else {
            1.0
        };
    let prediction = predict(&input);

    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 44.0), WAIT)
        .unwrap();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5_000), 6))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .link_edge_to_broker(profiles::transatlantic("wan", 9).build())
        .run(WAIT)
        .unwrap();
    let measured = summary.throughput_msgs;
    let predicted = prediction.throughput_msgs;
    let ratio = measured / predicted;
    // First-order model + 12-message run (startup/drain edges included in
    // the measured window): agreement within a factor of ~2 both ways.
    assert!(
        (0.45..=1.6).contains(&ratio),
        "measured {measured:.2} vs predicted {predicted:.2} (ratio {ratio:.2})"
    );
    // The latency floor is a true lower bound (modulo produce cost not in
    // the floor's serial path on multi-core).
    assert!(
        summary.latency_p50_ms >= prediction.latency_floor_ms * 0.5,
        "measured p50 {:.1} ms far below predicted floor {:.1} ms",
        summary.latency_p50_ms,
        prediction.latency_floor_ms
    );
}

#[test]
fn throttled_prediction_matches_measured_run() {
    // Offered-load-bound configuration: 2 devices × 50 msg/s of small
    // messages; everything has slack, so throughput ≈ offered load.
    let mut input = PlannerInput::new(2, 100);
    input.rate_per_device = 50.0;
    let prediction = predict(&input);
    assert_eq!(prediction.bottleneck, "offered load");

    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 44.0), WAIT)
        .unwrap();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 30))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .rate_per_device(50.0)
        .run(WAIT)
        .unwrap();
    let ratio = summary.throughput_msgs / prediction.throughput_msgs;
    assert!(
        (0.7..=1.2).contains(&ratio),
        "measured {:.1} vs predicted {:.1}",
        summary.throughput_msgs,
        prediction.throughput_msgs
    );
}
