//! End-to-end integration: the full stack (pilots → dataflow → broker →
//! netsim → ML → params → metrics) exercised through the public API only.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::EdgeToCloudPipeline;
use pilot_metrics::Component;
use pilot_ml::ModelKind;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn pilots(
    edge_cores: usize,
    cloud_cores: usize,
) -> (PilotComputeService, pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    (svc, edge, cloud)
}

#[test]
fn kmeans_pipeline_full_stack() {
    let (_svc, edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(500), 10))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(2)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    let summary = running.wait(WAIT).unwrap();

    // Message conservation: 2 devices × 10 messages, no drops, no dupes.
    assert_eq!(summary.messages, 20);
    assert_eq!(ctx.counter("messages_processed").get(), 20);
    assert_eq!(ctx.counter("points_processed").get(), 10_000);
    assert_eq!(summary.errors, 0);

    // Every pipeline component recorded linked spans.
    for c in [
        Component::EdgeProducer,
        Component::Broker,
        Component::CloudProcessor,
        Component::ParamServer,
    ] {
        let stats = summary
            .report
            .component(&c)
            .unwrap_or_else(|| panic!("missing {c}"));
        assert!(stats.count > 0, "{c} recorded nothing");
    }

    // The shared model exists, with one version per processed message.
    let (weights, version) = ctx.params.get(&ctx.model_key()).expect("published model");
    assert_eq!(weights.len(), 25 * 32 + 25, "centroids + counts");
    assert_eq!(version, 20);

    // ~5% contamination flags outliers on every message.
    let outliers = summary.outliers_detected;
    assert!(
        (20 * 10..=20 * 50).contains(&outliers),
        "outliers={outliers}"
    );
}

#[test]
fn throughput_scales_with_partitions() {
    // The core Fig. 2 trend: more devices/partitions → more total
    // throughput. Each device produces at a fixed rate; the pipeline must
    // sustain the aggregate, so 4 partitions deliver ~4× the message rate
    // of 1. (Rate-paced rather than unthrottled so the trend holds even on
    // single-core CI machines, where unthrottled compute cannot overlap.)
    let run = |devices: usize| {
        let (_svc, edge, cloud) = pilots(devices, devices);
        EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 30))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(devices)
            .rate_per_device(100.0)
            .run(WAIT)
            .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.messages, 30);
    assert_eq!(four.messages, 120);
    assert!(
        four.throughput_msgs > 2.5 * one.throughput_msgs,
        "4 partitions ({:.1} msgs/s) should sustain ~4x 1 partition ({:.1} msgs/s)",
        four.throughput_msgs,
        one.throughput_msgs
    );
}

#[test]
fn model_complexity_degrades_throughput() {
    // The core Fig. 3 trend at one message size: baseline ≥ k-means >
    // auto-encoder.
    let run = |model: ModelKind| {
        let (_svc, edge, cloud) = pilots(2, 2);
        EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(1000), 8))
            .process_cloud_function(paper_model_factory(model, 32))
            .devices(2)
            .run(WAIT)
            .unwrap()
    };
    let baseline = run(ModelKind::Baseline);
    let kmeans = run(ModelKind::KMeans);
    let autoenc = run(ModelKind::AutoEncoder);
    assert!(
        baseline.throughput_mb >= kmeans.throughput_mb * 0.8,
        "baseline {:.1} vs kmeans {:.1}",
        baseline.throughput_mb,
        kmeans.throughput_mb
    );
    assert!(
        kmeans.throughput_mb > autoenc.throughput_mb,
        "kmeans {:.1} vs autoencoder {:.1}",
        kmeans.throughput_mb,
        autoenc.throughput_mb
    );
    // Latency ordering too.
    assert!(autoenc.latency_mean_ms > kmeans.latency_mean_ms);
}

#[test]
fn fewer_processors_than_partitions_still_drains() {
    // partition:consumer ratio 4:1 — one consumer owns all partitions.
    let (_svc, edge, cloud) = pilots(4, 1);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 6))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(4)
        .processors(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 24);
    assert_eq!(summary.errors, 0);
}

#[test]
fn broker_on_separate_pilot() {
    // Listing 2 passes a dedicated pilot_cloud_broker; data must flow
    // through the broker hosted there.
    let (svc, edge, cloud) = pilots(1, 1);
    let broker_pilot = svc
        .submit_and_wait(PilotDescription::lrz_medium(), WAIT)
        .unwrap();
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .pilot_cloud_broker(broker_pilot.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 4))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(1)
        .start()
        .unwrap();
    let topic = running.topic().to_string();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 4);
    // The topic lives on the broker pilot's broker instance.
    let broker = broker_pilot.start_broker().unwrap();
    assert!(broker.topic(&topic).is_ok());
    // 4 data records + 1 sentinel.
    assert_eq!(broker.high_watermark(&topic, 0).unwrap(), 5);
}

#[test]
fn two_pipelines_share_infrastructure_without_interference() {
    let (_svc, edge, cloud) = pilots(4, 4);
    let mk = || {
        EdgeToCloudPipeline::builder()
            .pilot_edge(edge.clone())
            .pilot_cloud_processing(cloud.clone())
            .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 5))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(2)
            .start()
            .unwrap()
    };
    let a = mk();
    let b = mk();
    assert_ne!(a.job_id(), b.job_id());
    assert_ne!(a.topic(), b.topic());
    let sa = a.wait(WAIT).unwrap();
    let sb = b.wait(WAIT).unwrap();
    assert_eq!(sa.messages, 10);
    assert_eq!(sb.messages, 10);
}
