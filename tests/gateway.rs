//! Observability-gateway integration tests (DESIGN.md §16): the HTTP/SSE
//! front door over a live pipeline and a live federation — plus the
//! zero-footprint contract when the knob is off.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::federation::{self, FederationConfig};
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::{EdgeToCloudPipeline, PipelineConfig, PipelineError, RunningPipeline};
use pilot_gateway::{GatewayConfig, HttpClient};
use pilot_metrics::{validate_json, validate_prometheus, validate_trace_json, MetricsRegistry};
use pilot_ml::ModelKind;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn pilots(edge_cores: usize, cloud_cores: usize) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

/// A paced cell with the gateway and telemetry on — slow enough that the
/// run is still in flight while the endpoints are probed.
fn start_gateway_pipeline(registry: &MetricsRegistry) -> RunningPipeline {
    let (edge, cloud) = pilots(2, 2);
    EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 20))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .metrics(registry.clone())
        .devices(2)
        .rate_per_device(50.0)
        .telemetry_sample_ms(5)
        .gateway(GatewayConfig::default())
        .start()
        .unwrap()
}

#[test]
fn defaults_leave_gateway_off() {
    // The knob must be opt-in, and OFF must mean zero footprint: no
    // listener, no gateway gauges in the registry.
    assert!(PipelineConfig::default().gateway.is_none());
    assert!(FederationConfig::default().gateway.is_none());
    let registry = MetricsRegistry::new();
    let (edge, cloud) = pilots(1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 3))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .metrics(registry.clone())
        .start()
        .unwrap();
    assert!(running.gateway_addr().is_none(), "no listener when off");
    running.wait(WAIT).unwrap();
    assert_eq!(
        registry.gauge_value("gateway.requests"),
        None,
        "no gateway gauges registered when off"
    );
}

#[test]
fn invalid_gateway_config_is_rejected() {
    for bad in [
        GatewayConfig {
            workers: 0,
            ..GatewayConfig::default()
        },
        GatewayConfig {
            bind: String::new(),
            ..GatewayConfig::default()
        },
        GatewayConfig {
            max_body_bytes: 0,
            ..GatewayConfig::default()
        },
    ] {
        let cfg = PipelineConfig {
            gateway: Some(bad),
            ..PipelineConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(PipelineError::Config(_))));
    }
}

#[test]
fn metrics_endpoint_is_valid_prometheus_even_with_hostile_names() {
    let registry = MetricsRegistry::new();
    // A gauge name carrying every character the exposition format must
    // escape inside label values: backslash, double quote, newline.
    let hostile = "evil\"name\nwith\\stuff";
    registry.gauge(hostile).set(7);
    let running = start_gateway_pipeline(&registry);
    let addr = running.gateway_addr().expect("gateway is on");
    let mut client = HttpClient::connect(addr).unwrap();
    let response = client.get("/metrics").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = response.text();
    validate_prometheus(&text).expect("valid Prometheus exposition");
    assert!(
        text.contains("evil\\\"name\\nwith\\\\stuff"),
        "hostile label must be escaped, got:\n{text}"
    );
    assert!(text.contains("pilot_gauge{"), "gauge family present");
    running.wait(WAIT).unwrap();
}

#[test]
fn endpoints_serve_the_live_pipeline() {
    let registry = MetricsRegistry::new();
    let running = start_gateway_pipeline(&registry);
    let addr = running.gateway_addr().expect("gateway is on");
    let mut client = HttpClient::connect(addr).unwrap();

    // /telemetry/frames: a JSON array of frames (possibly still empty on
    // the first tick — poll until one arrives).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = client.get("/telemetry/frames").unwrap();
        assert_eq!(r.status, 200);
        validate_json(&r.text()).expect("frames are valid JSON");
        if r.text().contains("\"t_us\"") || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // /top: the shared TopView JSON with gauge rows.
    let top = loop {
        let r = client.get("/top").unwrap();
        if r.status == 200 || Instant::now() > deadline {
            break r;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(top.status, 200, "body: {}", top.text());
    validate_json(&top.text()).unwrap();
    assert!(top.text().contains("\"rows\""));
    assert!(top.text().contains("\"processed\""));

    // /trace: a Perfetto-loadable Chrome trace, streamed.
    let trace = client.get("/trace").unwrap();
    assert_eq!(trace.status, 200);
    validate_trace_json(&trace.text()).expect("valid Chrome trace");

    // /control/tune: bounds-checked external tunes, journalled with the
    // External verdict; bad knobs rejected whole.
    let tuned = client
        .post(
            "/control/tune?fetch_max=8&batch_max_bytes=65536&linger_us=2000",
            b"",
        )
        .unwrap();
    assert_eq!(tuned.status, 200, "body: {}", tuned.text());
    validate_json(&tuned.text()).unwrap();
    for label in ["set_fetch_max", "set_batch_max_bytes", "set_linger"] {
        assert!(
            tuned.text().contains(label),
            "missing {label}: {}",
            tuned.text()
        );
    }
    assert_eq!(
        running.tune().fetch_max(),
        8,
        "tune applied to the live table"
    );
    assert_eq!(running.tune().batch_max_bytes(), 65536);
    for bad in [
        "/control/tune",                       // no knobs
        "/control/tune?fetch_max=100000",      // out of bounds
        "/control/tune?fetch_max=abc",         // not an integer
        "/control/tune?warp_factor=9",         // unknown knob
        "/control/tune?linger_us=99999999999", // over the linger ceiling
    ] {
        let r = client.post(bad, b"").unwrap();
        assert_eq!(r.status, 400, "{bad} should be rejected: {}", r.text());
    }
    let journal = client.get("/control/journal").unwrap();
    assert_eq!(journal.status, 200);
    validate_json(&journal.text()).unwrap();
    assert!(
        journal.text().contains("\"verdict\":\"external\""),
        "external tunes must be journalled: {}",
        journal.text()
    );

    // /produce: ingestion round-trips through the broker; the empty
    // payload (the end-of-stream sentinel) is refused at the door.
    let broker = running.broker();
    broker
        .create_topic("ingest", 1, pilot_broker::RetentionPolicy::unbounded())
        .unwrap();
    let produced = client
        .post("/produce?topic=ingest", b"hello-gateway")
        .unwrap();
    assert_eq!(produced.status, 200, "body: {}", produced.text());
    validate_json(&produced.text()).unwrap();
    assert!(produced.text().contains("\"offset\":0"));
    let records = broker.fetch("ingest", 0, 0, 16, Duration::ZERO).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].value.as_ref(), b"hello-gateway");
    assert_eq!(
        client.post("/produce?topic=ingest", b"").unwrap().status,
        400
    );
    assert_eq!(
        client.post("/produce?topic=nope", b"x").unwrap().status,
        404
    );
    assert_eq!(
        client
            .post("/produce?topic=ingest&partition=99", b"x")
            .unwrap()
            .status,
        404
    );

    // Routing errors: unknown path, wrong method, oversized body,
    // malformed head — all clean errors, none kill the worker.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/produce").unwrap().status, 405);
    let huge = vec![b'x'; 300 * 1024];
    assert_eq!(
        client.post("/produce?topic=ingest", &huge).unwrap().status,
        413
    );
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut reply = String::new();
    let _ = raw.read_to_string(&mut reply);
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply:?}");
    drop(raw);
    assert_eq!(
        client.get("/metrics").unwrap().status,
        200,
        "worker survived"
    );

    // The gateway accounted for its traffic.
    assert!(registry.gauge_value("gateway.requests").unwrap_or(0) > 0);

    // wait() tears the listener down with the rest of the run.
    running.wait(WAIT).unwrap();
    assert!(
        HttpClient::connect(addr).is_err(),
        "gateway must be down after wait()"
    );
}

#[test]
fn sse_stream_pushes_monotonic_frames() {
    let registry = MetricsRegistry::new();
    let running = start_gateway_pipeline(&registry);
    let addr = running.gateway_addr().expect("gateway is on");
    let (status, mut stream) = HttpClient::connect(addr)
        .unwrap()
        .open_stream("GET", "/telemetry/stream")
        .unwrap();
    assert_eq!(status, 200);
    let mut last_t = 0u64;
    let mut frames = 0;
    let mut verdicts = 0;
    let deadline = Instant::now() + Duration::from_secs(20);
    while frames < 3 && Instant::now() < deadline {
        match stream.next_event(Duration::from_secs(2)).unwrap() {
            Some(ev) if ev.event.as_deref() == Some("frame") => {
                validate_json(&ev.data).expect("frame event is valid JSON");
                let t = ev
                    .data
                    .split("\"t_us\":")
                    .nth(1)
                    .and_then(|s| s.split(',').next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("frame carries t_us");
                assert!(t > last_t, "frame timestamps must be strictly monotonic");
                last_t = t;
                frames += 1;
            }
            Some(ev) if ev.event.as_deref() == Some("verdict") => {
                validate_json(&ev.data).expect("verdict event is valid JSON");
                assert!(ev.data.contains("\"bottleneck\""));
                verdicts += 1;
            }
            Some(_) | None => {}
        }
    }
    assert!(frames >= 2, "expected >= 2 SSE frames, saw {frames}");
    assert!(verdicts >= 1, "expected >= 1 bottleneck verdict");
    running.wait(WAIT).unwrap();
    // The stream ends once the pipeline (and its gateway) shut down.
    let ended = Instant::now() + Duration::from_secs(5);
    loop {
        match stream.next_event(Duration::from_millis(200)) {
            Ok(Some(_)) if Instant::now() < ended => continue,
            _ => break,
        }
    }
}

#[test]
fn federation_gateway_serves_the_read_only_subset() {
    let cfg = FederationConfig {
        cells: 4,
        regions: 2,
        devices_per_cell: 2,
        messages_per_device: 16,
        telemetry_sample_ms: Some(5),
        gateway: Some(GatewayConfig::default()),
        ..FederationConfig::default()
    };
    let expected = cfg.expected_messages();
    let running = federation::start(cfg).unwrap();
    let addr = running.gateway_addr().expect("gateway is on");
    let mut client = HttpClient::connect(addr).unwrap();

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    validate_prometheus(&metrics.text()).unwrap();
    assert!(metrics.text().contains("federation.rounds"));

    let deadline = Instant::now() + Duration::from_secs(10);
    let top = loop {
        let r = client.get("/top").unwrap();
        if r.status == 200 || Instant::now() > deadline {
            break r;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(top.status, 200, "body: {}", top.text());
    validate_json(&top.text()).unwrap();
    assert!(
        top.text().contains("federation.lag.cells"),
        "federation gauge rows expected: {}",
        top.text()
    );
    assert!(top.text().contains(&format!("\"expected\":{expected}")));

    let frames = client.get("/telemetry/frames").unwrap();
    assert_eq!(frames.status, 200);
    validate_json(&frames.text()).unwrap();

    let trace = client.get("/trace").unwrap();
    assert_eq!(trace.status, 200);
    validate_trace_json(&trace.text()).unwrap();

    // The pipeline-only endpoints do not exist on a federation gateway.
    assert_eq!(client.get("/control/journal").unwrap().status, 404);
    assert_eq!(client.post("/produce", b"x").unwrap().status, 404);

    running.wait(WAIT).unwrap();
    assert!(
        HttpClient::connect(addr).is_err(),
        "gateway must be down after wait()"
    );
}
