//! Pipelined-transport integration tests (DESIGN.md §8): producer batching
//! and consumer prefetch must preserve every delivery and accounting
//! guarantee of the serial path — distinct-message conservation across
//! rebalances, hot-swap mid-stream, and complete per-message span chains —
//! while only changing *when* the WAN time is paid.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::{EdgeToCloudPipeline, PipelineConfig};
use pilot_metrics::{Component, MetricsRegistry};
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn pilots(edge_cores: usize, cloud_cores: usize) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64),
            WAIT,
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 44.0), WAIT)
        .unwrap();
    std::mem::forget(svc);
    (edge, cloud)
}

#[test]
fn defaults_leave_pipelining_off() {
    // The new knobs must be opt-in: a default config is the serial seed
    // behaviour, bit for bit.
    let cfg = PipelineConfig::default();
    assert_eq!(cfg.batch_max_bytes, 0);
    assert_eq!(cfg.linger, Duration::ZERO);
    assert_eq!(cfg.prefetch_depth, 0);
}

#[test]
fn prefetch_scale_processors_mid_run() {
    // 4 partitions, 1 prefetching consumer; scale to 4 mid-run. The
    // rebalance tears down prefetch threads with batches possibly in
    // flight; uncommitted batches are redelivered (at-least-once), and the
    // distinct-message accounting must still see every message exactly
    // once per (job, msg) key.
    let (edge, cloud) = pilots(4, 4);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(200), 12))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(4)
        .processors(1)
        .rate_per_device(200.0)
        .batch_max_bytes(64 * 1024)
        .linger(Duration::from_millis(2))
        .prefetch_depth(2)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    running.scale_processors(4).unwrap();
    assert_eq!(running.processor_count(), 4);
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 48, "no distinct message lost or invented");
    assert_eq!(summary.errors, 0);
}

#[test]
fn prefetch_scale_down_delivers_queued_committed_records() {
    // The inverse rebalance: scale 2 → 1 while the retired member's
    // prefetch queue is full of *committed* batches (the prefetch thread
    // commits after queueing — queued records count as delivered). The
    // successor resumes from the committed offset and will never redeliver
    // them, so the retiring member's drain must process its queue, not
    // discard it. A slow cloud function keeps the queue saturated at
    // retirement time.
    use parking_lot::Mutex;
    use pilot_edge::faas::{CloudFactory, ProcessOutcome};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    let (edge, cloud) = pilots(2, 2);
    let seen = Arc::new(Mutex::new(BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let slow_capture: CloudFactory = Arc::new(move |_ctx| {
        let seen = Arc::clone(&seen2);
        Box::new(
            move |_ctx: &pilot_edge::faas::Context, block: &pilot_datagen::Block| {
                std::thread::sleep(Duration::from_millis(3));
                // (per-device msg id, content hash) — the content
                // distinguishes the two devices' streams.
                let mut h = 0xcbf29ce484222325u64;
                for v in &block.data {
                    h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
                }
                seen.lock().insert((block.msg_id, h));
                Ok(ProcessOutcome::default())
            },
        )
    });
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(20), 16))
        .process_cloud_function(slow_capture)
        .devices(2)
        .processors(2)
        .prefetch_depth(2)
        .start()
        .unwrap();
    // Let the producers finish and the prefetch threads fetch, queue, and
    // commit well ahead of the slow processors.
    std::thread::sleep(Duration::from_millis(40));
    running.scale_processors(1).unwrap();
    assert_eq!(running.processor_count(), 1);
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.messages, 32);
    assert_eq!(
        seen.lock().len(),
        32,
        "scale-down retirement lost committed prefetched records"
    );
}

#[test]
fn prefetch_hot_swap_mid_stream() {
    // Function replacement while prefetched batches sit in the queue: the
    // swap must take effect without dropping queued messages.
    let (edge, cloud) = pilots(2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 20))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .rate_per_device(200.0)
        .batch_max_bytes(64 * 1024)
        .linger(Duration::from_millis(2))
        .prefetch_depth(2)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    std::thread::sleep(Duration::from_millis(50));
    running.replace_cloud_function(paper_model_factory(ModelKind::KMeans, 32));
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 40);
    assert_eq!(summary.errors, 0);
    // The swapped-in k-means published a model from post-swap messages.
    assert!(
        ctx.params.get(&ctx.model_key()).is_some(),
        "swapped model must publish"
    );
}

#[test]
fn pipelined_wan_run_conserves_messages_with_complete_span_chains() {
    // A real WAN-profile run with both batching and prefetch: every
    // distinct message must carry the full five-stage span chain —
    // EdgeProducer → Network(edge→broker) → Broker → Network(broker→cloud)
    // → CloudProcessor — i.e. batch-level transfers still attribute
    // network time to each message.
    let (edge, cloud) = pilots(2, 2);
    let registry = MetricsRegistry::new();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(25).with_seed(7),
            4,
        ))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .metrics(registry.clone())
        .link_edge_to_broker(profiles::transatlantic("edge->broker(wan)", 7).build())
        .link_broker_to_cloud(profiles::cloud_local("broker->cloud", 8).build())
        .batch_max_bytes(256 * 1024)
        .linger(Duration::from_millis(2))
        .prefetch_depth(2)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 8);
    assert_eq!(summary.errors, 0);

    let mut chains: HashMap<u64, HashSet<String>> = HashMap::new();
    for span in registry.snapshot() {
        if !span.error {
            chains
                .entry(span.msg_id)
                .or_default()
                .insert(span.component.to_string());
        }
    }
    // Messages only (parameter-server spans use synthetic ids tied to the
    // CloudProcessor's message, so every id with an EdgeProducer span is a
    // real message).
    let msgs: Vec<u64> = chains
        .iter()
        .filter(|(_, c)| c.contains(&Component::EdgeProducer.to_string()))
        .map(|(m, _)| *m)
        .collect();
    assert_eq!(msgs.len(), 8, "one chain per distinct message");
    for m in msgs {
        let chain = &chains[&m];
        for needed in [
            Component::EdgeProducer.to_string(),
            Component::Network("edge->broker(wan)".into()).to_string(),
            Component::Broker.to_string(),
            Component::Network("broker->cloud".into()).to_string(),
            Component::CloudProcessor.to_string(),
        ] {
            assert!(
                chain.contains(&needed),
                "msg {m} missing {needed}: {chain:?}"
            );
        }
    }
}

#[test]
fn pipelined_processes_the_same_message_set_as_serial() {
    // Same seed, same workload: the pipelined transport must deliver
    // exactly the message set the serial transport delivers — batching
    // changes the schedule, never the data.
    let run = |pipelined: bool| {
        let (edge, cloud) = pilots(2, 2);
        let registry = MetricsRegistry::new();
        let mut b = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(
                DataGenConfig::paper(50).with_seed(11),
                6,
            ))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(2)
            .metrics(registry.clone());
        if pipelined {
            b = b
                .batch_max_bytes(64 * 1024)
                .linger(Duration::from_millis(1))
                .prefetch_depth(2);
        }
        let summary = b.run(WAIT).unwrap();
        assert_eq!(summary.errors, 0);
        let mids: HashSet<u64> = registry
            .snapshot()
            .into_iter()
            .filter(|s| s.component == Component::CloudProcessor && !s.error)
            .map(|s| s.msg_id)
            .collect();
        mids
    };
    assert_eq!(run(false), run(true));
}
