//! Monitoring-fabric integration: the paper's "step 3" — comprehensive,
//! linked metrics across all components, bottleneck identification, shared
//! registries, timelines, and energy accounting, exercised end-to-end.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::{CloudFactory, Context, EdgeToCloudPipeline, ProcessOutcome};
use pilot_metrics::{Component, MetricsRegistry, Timeline};
use pilot_ml::ModelKind;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn pilots(svc: &PilotComputeService) -> (pilot_core::Pilot, pilot_core::Pilot) {
    let edge = svc
        .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(2, 44.0), WAIT)
        .unwrap();
    (edge, cloud)
}

#[test]
fn every_message_is_linked_across_all_components() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc);
    let registry = MetricsRegistry::new();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 10))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(2)
        .metrics(registry.clone())
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 20);
    // The raw span stream: every message must have a span in each of the
    // four mandatory components (producer, net×2, broker, processor).
    let spans = registry.snapshot();
    for comp in [
        Component::EdgeProducer,
        Component::Broker,
        Component::CloudProcessor,
    ] {
        let msgs: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| s.component == comp)
            .map(|s| s.msg_id)
            .collect();
        assert_eq!(msgs.len(), 20, "{comp} missing messages");
    }
    // Two network hops per message.
    let net_spans = spans
        .iter()
        .filter(|s| matches!(s.component, Component::Network(_)))
        .count();
    assert_eq!(net_spans, 40);
}

#[test]
fn bottleneck_identifies_slow_processing() {
    // A deliberately slow cloud function must be named the bottleneck —
    // the paper's Fig. 2 diagnosis mechanism.
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc);
    let slow: CloudFactory = Arc::new(|_ctx| {
        Box::new(move |_ctx: &Context, _block| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(ProcessOutcome::default())
        })
    });
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 10))
        .process_cloud_function(slow)
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.bottleneck.as_deref(), Some("cloud_processor"));
    let cp = summary
        .report
        .component(&Component::CloudProcessor)
        .unwrap();
    assert!(cp.mean_service_ms() >= 10.0);
}

#[test]
fn shared_registry_separates_jobs() {
    // Two runs into one registry: per-job reports must not bleed into
    // each other, while the combined report sees both.
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc);
    let registry = MetricsRegistry::new();
    let mk = |messages: usize| {
        EdgeToCloudPipeline::builder()
            .pilot_edge(edge.clone())
            .pilot_cloud_processing(cloud.clone())
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), messages))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(1)
            .metrics(registry.clone())
            .start()
            .unwrap()
    };
    let a = mk(3);
    let job_a = a.job_id();
    let sa = a.wait(WAIT).unwrap();
    let b = mk(5);
    let job_b = b.job_id();
    let sb = b.wait(WAIT).unwrap();
    assert_eq!(sa.messages, 3);
    assert_eq!(sb.messages, 5);
    assert_eq!(registry.report_for_job(job_a).total_messages(), 3);
    assert_eq!(registry.report_for_job(job_b).total_messages(), 5);
    assert_eq!(registry.report().total_messages(), 8);
}

#[test]
fn timeline_covers_the_whole_run() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc);
    let registry = MetricsRegistry::new();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 40))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(1)
        .rate_per_device(200.0)
        .metrics(registry.clone())
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 40);
    let tl = Timeline::from_spans(
        &registry.snapshot(),
        Some(&Component::CloudProcessor),
        50_000, // 50 ms buckets over a ~200 ms run
    );
    let total: u64 = tl.buckets.iter().map(|b| b.count).sum();
    assert_eq!(total, 40, "timeline must count every completion");
    assert!(tl.buckets.len() >= 3, "run spans multiple buckets");
    assert!(tl.peak_rate() > 0.0);
}

#[test]
fn pilot_energy_grows_with_work() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc);
    let idle_joules = cloud.energy().joules();
    EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(2000), 10))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(2)
        .run(WAIT)
        .unwrap();
    let after = cloud.energy();
    assert!(after.joules() > idle_joules);
    assert!(after.busy_secs() > 0.0, "cluster busy time recorded");
    assert!(svc.fleet_energy_joules() >= after.joules());
}

#[test]
fn custom_counters_flow_through_context() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc);
    let counting: CloudFactory = Arc::new(|_ctx| {
        Box::new(move |ctx: &Context, block| {
            ctx.counter("app_custom_metric").add(block.points as u64);
            Ok(ProcessOutcome::default())
        })
    });
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(7), 6))
        .process_cloud_function(counting)
        .devices(1)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    running.wait(WAIT).unwrap();
    assert_eq!(ctx.counter("app_custom_metric").get(), 42);
}
