//! Cross-crate property tests: message conservation and wire integrity
//! through the full pipeline, for arbitrary (small) topologies.

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::EdgeToCloudPipeline;
use pilot_ml::ModelKind;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case boots a full pipeline; keep the count modest
        .. ProptestConfig::default()
    })]

    /// Whatever the topology (devices × messages × points × processors),
    /// every produced message is observed exactly once end-to-end and no
    /// component errors.
    #[test]
    fn prop_message_conservation(
        devices in 1usize..4,
        messages in 1usize..8,
        points in 1usize..300,
        fewer_processors in proptest::bool::ANY,
    ) {
        let svc = PilotComputeService::new();
        let edge = svc
            .submit_and_wait(PilotDescription::local(devices, 16.0), Duration::from_secs(10))
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(devices, 16.0), Duration::from_secs(10))
            .unwrap();
        let processors = if fewer_processors { 1 } else { devices };
        let summary = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(points), messages))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(devices)
            .processors(processors)
            .run(Duration::from_secs(60))
            .unwrap();
        prop_assert_eq!(summary.messages as usize, devices * messages);
        prop_assert_eq!(summary.errors, 0);
        // Throughput/latency are well-formed.
        prop_assert!(summary.throughput_msgs > 0.0);
        prop_assert!(summary.latency_mean_ms >= 0.0);
        prop_assert!(summary.latency_p50_ms as f64 <= summary.latency_p99_ms as f64 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Generator → wire → decode preserves every feature bit-exactly for
    /// arbitrary block geometries.
    #[test]
    fn prop_wire_roundtrip(points in 1usize..200, features in 1usize..64, seed in 0u64..1000) {
        let cfg = DataGenConfig {
            points,
            features,
            clusters: 5,
            outlier_fraction: 0.1,
            cluster_std: 1.0,
            domain: 10.0,
            seed,
        };
        let mut generator = pilot_datagen::DataGenerator::new(cfg);
        let block = generator.next_block();
        let encoded = pilot_datagen::encode(&block, 12345);
        prop_assert_eq!(encoded.len(), pilot_datagen::serialized_size(points, features));
        let (decoded, ts) = pilot_datagen::decode(&encoded).unwrap();
        prop_assert_eq!(ts, 12345);
        prop_assert_eq!(decoded.msg_id, block.msg_id);
        prop_assert_eq!(decoded.data, block.data);
    }
}
