//! The compute pool's determinism contract, checked across crates: for a
//! fixed seed, running the ML hot path through an intra-task pool of ANY
//! width produces scores bit-identical to the sequential path. Parallelism
//! must be purely a performance decision (fixed chunk boundaries, per-tree
//! seeds, merge in chunk-index order — see `pilot_dataflow::pool`).

use pilot_dataflow::ComputePool;
use pilot_datagen::{Block, DataGenConfig, DataGenerator};
use pilot_ml::{
    AutoEncoder, AutoEncoderConfig, Dataset, IsolationForest, IsolationForestConfig, KMeans,
    KMeansConfig, OutlierModel,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Pool widths to compare against the width-1 reference. Must include 1
/// (the inline pool must equal the no-pool default) and widths that do and
/// do not divide the chunk counts evenly.
const WIDTHS: &[usize] = &[1, 2, 3, 4, 7];

fn blocks(points: usize, n: usize, seed: u64) -> Vec<Block> {
    let mut generator = DataGenerator::new(DataGenConfig::paper(points).with_seed(seed));
    (0..n).map(|_| generator.next_block()).collect()
}

/// Run the pipeline's per-message protocol (partial_fit then score) over a
/// message stream and collect every score vector.
fn score_stream(mut model: Box<dyn OutlierModel>, stream: &[Block]) -> Vec<Vec<f64>> {
    stream
        .iter()
        .map(|b| {
            let ds = Dataset::new(&b.data, b.points, b.features);
            model.partial_fit(&ds);
            model.score(&ds)
        })
        .collect()
}

type ModelMaker = Box<dyn Fn() -> Box<dyn OutlierModel>>;

fn makers() -> Vec<(&'static str, ModelMaker)> {
    vec![
        (
            "kmeans",
            Box::new(|| Box::new(KMeans::new(KMeansConfig::paper())) as Box<dyn OutlierModel>),
        ),
        (
            "isoforest",
            Box::new(|| {
                let mut cfg = IsolationForestConfig::paper();
                cfg.n_trees = 25; // keep the cross-width sweep fast
                Box::new(IsolationForest::new(cfg)) as Box<dyn OutlierModel>
            }),
        ),
        (
            "autoencoder",
            Box::new(|| {
                Box::new(AutoEncoder::new(AutoEncoderConfig::paper())) as Box<dyn OutlierModel>
            }),
        ),
    ]
}

/// The headline guarantee: every model kind, several widths, several
/// messages — scores are *bit*-identical to the sequential reference
/// (`assert_eq!` on `f64` vectors, no tolerance).
#[test]
fn parallel_scores_bit_identical_to_sequential() {
    // 400 points spans several 128/256-row chunks; 3 messages exercise
    // streaming refits (fresh per-epoch tree seeds must match too).
    let stream = blocks(400, 3, 7);
    for (name, make) in makers() {
        let reference = score_stream(make(), &stream);
        for &width in WIDTHS {
            let mut model = make();
            model.set_compute_pool(Arc::new(ComputePool::new(width)));
            let scores = score_stream(model, &stream);
            assert_eq!(scores, reference, "model={name} width={width}");
        }
    }
}

/// A width-1 explicit pool must equal the implicit no-pool default — the
/// edge-device path (never given a pool) and a cloud pilot configured with
/// `compute_threads(1)` are the same computation.
#[test]
fn width_one_pool_equals_default() {
    let stream = blocks(130, 2, 3);
    for (name, make) in makers() {
        let implicit = score_stream(make(), &stream);
        let mut model = make();
        model.set_compute_pool(Arc::new(ComputePool::sequential()));
        assert_eq!(score_stream(model, &stream), implicit, "model={name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case runs full k-means fits at several widths
        .. ProptestConfig::default()
    })]

    /// Property: the k-means inertia *trajectory* (inertia after every
    /// message of a stream) never depends on pool width, for arbitrary
    /// block geometry, stream length, and seed.
    #[test]
    fn prop_pool_width_never_changes_kmeans_inertia_trajectory(
        points in 1usize..600,
        messages in 1usize..4,
        seed in 0u64..1000,
        width in 2usize..9,
    ) {
        let stream = blocks(points, messages, seed);
        let trajectory = |pool_width: usize| -> Vec<f64> {
            let mut km = KMeans::new(KMeansConfig::paper());
            km.set_compute_pool(Arc::new(ComputePool::new(pool_width)));
            stream
                .iter()
                .map(|b| {
                    let ds = Dataset::new(&b.data, b.points, b.features);
                    km.partial_fit(&ds);
                    km.inertia(&ds)
                })
                .collect()
        };
        let sequential = trajectory(1);
        let parallel = trajectory(width);
        // Bit-exact, message by message.
        prop_assert_eq!(parallel, sequential);
    }
}
