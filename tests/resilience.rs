//! Resilience integration: failures and degraded infrastructure (paper
//! Section I: dynamism includes "failures and other external events";
//! Section V: the ability to respond at runtime "is crucial").

use pilot_broker::{MqttBroker, QoS};
use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{Codec, DataGenConfig};
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::{DeploymentMode, EdgeToCloudPipeline};
use pilot_ml::ModelKind;
use pilot_netsim::{profiles, FlakyLink, LinkSpec, Outage};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(300);

#[test]
fn wan_outage_stalls_then_recovers() {
    // A 150 ms outage in the middle of a transfer sequence: transfers
    // during the window stall, later ones are clean, nothing is lost.
    let flaky = std::sync::Arc::new(FlakyLink::new(
        LinkSpec::fixed("wan", 1.0, 1e9).build(),
        vec![Outage {
            start: Duration::from_millis(50),
            len: Duration::from_millis(150),
        }],
    ));
    let mut stalled = 0;
    let mut clean = 0;
    let start = Instant::now();
    for _ in 0..20 {
        let r = flaky.transfer(10_000);
        if r.queueing > Duration::from_millis(10) {
            stalled += 1;
        } else {
            clean += 1;
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    assert!(stalled >= 1, "at least one transfer must hit the outage");
    assert!(clean >= 10, "transfers after recovery are clean");
    assert!(start.elapsed() >= Duration::from_millis(150));
}

#[test]
fn quantized_codec_survives_pipeline_and_detects_outliers() {
    // Q16 compression end-to-end: 4× fewer bytes cross the (local) wire
    // and the k-means detector still flags outliers on the lossy data.
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(1, 44.0), WAIT)
        .unwrap();
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(1000), 8))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(1)
        .codec(Codec::Q16)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 8);
    assert_eq!(summary.errors, 0);
    // Outliers still detected on quantised data (5% contamination of
    // 8 × 1000 points ≈ 400 flags).
    assert!(
        summary.outliers_detected >= 200,
        "outliers={}",
        summary.outliers_detected
    );
    // Bytes on the wire reflect the compressed size.
    let broker_stats = summary
        .report
        .component(&pilot_metrics::Component::Broker)
        .unwrap();
    let per_msg = broker_stats.bytes / broker_stats.count;
    let q16 = Codec::Q16.serialized_size(1000, 32) as u64;
    assert_eq!(per_msg, q16, "wire bytes must match the Q16 size");
}

#[test]
fn q16_beats_f64_on_wan_throughput() {
    // The compression ablation at integration level: same workload over
    // the transatlantic link, Q16 vs F64 — message throughput must rise
    // by roughly the compression factor.
    let run = |codec: Codec| {
        let svc = PilotComputeService::new();
        let edge = svc
            .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(1, 44.0), WAIT)
            .unwrap();
        EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(5_000), 4))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(1)
            .codec(codec)
            .mode(DeploymentMode::CloudCentric)
            .link_edge_to_broker(profiles::transatlantic("wan", 5).build())
            .run(WAIT)
            .unwrap()
    };
    let plain = run(Codec::F64);
    let compressed = run(Codec::Q16);
    // Message throughput improves (how much depends on how compute-bound
    // the build is)...
    assert!(
        compressed.throughput_msgs > plain.throughput_msgs,
        "q16 {:.2} msgs/s vs f64 {:.2} msgs/s",
        compressed.throughput_msgs,
        plain.throughput_msgs
    );
    // ...and the WAN component itself — the paper's "amount of data
    // movement" — shrinks decisively: per-message network time drops by
    // well over a third (1.28 MB → 0.32 MB against a 70–80 ms latency
    // floor).
    let net = pilot_metrics::Component::Network("wan".into());
    let plain_net = plain.component_mean_ms(&net);
    let q16_net = compressed.component_mean_ms(&net);
    assert!(
        q16_net < plain_net * 0.65,
        "q16 wan {q16_net:.1} ms vs f64 wan {plain_net:.1} ms"
    );
}

#[test]
fn mqtt_qos1_is_lossless_under_slow_consumer() {
    // A slow subscriber with a tiny queue: QoS 1 must deliver every
    // message anyway (publisher blocks), unlike QoS 0 (drops).
    let broker = MqttBroker::new();
    let sub = broker.subscribe("sensors/#", QoS::AtLeastOnce, 2).unwrap();
    let b2 = broker.clone();
    let publisher = std::thread::spawn(move || {
        for i in 0..50u32 {
            b2.publish(
                "sensors/temp",
                i.to_le_bytes().to_vec(),
                QoS::AtLeastOnce,
                false,
                0,
            )
            .unwrap();
        }
    });
    let mut received = Vec::new();
    while received.len() < 50 {
        let msg = sub
            .recv(Duration::from_secs(5))
            .expect("QoS 1 must not lose messages");
        received.push(u32::from_le_bytes(msg.payload.as_ref().try_into().unwrap()));
        std::thread::sleep(Duration::from_millis(1)); // slow consumer
    }
    publisher.join().unwrap();
    let expected: Vec<u32> = (0..50).collect();
    assert_eq!(received, expected, "in-order, lossless delivery");
    assert_eq!(broker.dropped(), 0);
}

#[test]
fn pipeline_survives_broker_pilot_hosting_many_topics() {
    // Robustness under namespace pressure: many pipelines have come and
    // gone (stale topics remain); a fresh pipeline must be unaffected.
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(1, 44.0), WAIT)
        .unwrap();
    let broker = cloud.start_broker().unwrap();
    for i in 0..200 {
        broker
            .create_topic(
                &format!("stale-{i}"),
                4,
                pilot_broker::RetentionPolicy::default(),
            )
            .unwrap();
    }
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(50), 5))
        .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 5);
}
