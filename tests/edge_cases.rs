//! Edge-case integration: empty streams, single-point messages, combined
//! feature stacks (Q16 + hybrid + scaling), and cross-substrate stress.

use pilot_broker::{MqttBroker, QoS};
use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{Codec, DataGenConfig};
use pilot_edge::processors::{
    datagen_produce_factory, downsample_edge_factory, paper_model_factory,
};
use pilot_edge::windows::{aggregate_points, AggKind};
use pilot_edge::{Context, DeploymentMode, EdgeToCloudPipeline, ProduceFactory};
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn pilots(cores: usize) -> (PilotComputeService, pilot_core::Pilot, pilot_core::Pilot) {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(cores, 16.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cores, 44.0), WAIT)
        .unwrap();
    (svc, edge, cloud)
}

#[test]
fn empty_stream_terminates_cleanly() {
    // A produce function that immediately ends: zero messages, no hang,
    // clean summary.
    let (_svc, edge, cloud) = pilots(1);
    let empty: ProduceFactory = Arc::new(|_ctx: &Context, _| Box::new(|_ctx: &Context| None));
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(empty)
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 0);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.throughput_msgs, 0.0);
}

#[test]
fn single_point_messages_flow() {
    // The smallest possible message: 1 point. Models must cope (k-means
    // seeds from a single row).
    let (_svc, edge, cloud) = pilots(1);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(1), 12))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 12);
    assert_eq!(summary.errors, 0);
}

#[test]
fn q16_hybrid_and_scaling_compose() {
    // Feature stack: Q16 codec + hybrid downsampling + runtime scale-up in
    // one run. Everything must compose without loss.
    let (_svc, edge, cloud) = pilots(4);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(400), 10))
        .process_edge_function(downsample_edge_factory(4))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(4)
        .processors(1)
        .mode(DeploymentMode::Hybrid)
        .codec(Codec::Q16)
        .rate_per_device(200.0)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    running.scale_processors(3).unwrap();
    let ctx = running.context().clone();
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 40);
    assert_eq!(summary.errors, 0);
    // Downsampled (100 pts) + quantised wire size.
    let broker = summary
        .report
        .component(&pilot_metrics::Component::Broker)
        .unwrap();
    assert_eq!(
        broker.bytes / broker.count,
        Codec::Q16.serialized_size(100, 32) as u64
    );
    // 40 distinct messages × 100 surviving points each were processed;
    // the mid-run scale-up may redeliver a few in-flight messages
    // (at-least-once during rebalance), so the counter is a lower bound
    // with bounded slack.
    let points = ctx.counter("points_processed").get();
    assert!(
        (4_000..=4_800).contains(&points),
        "points_processed={points}"
    );
}

#[test]
fn window_aggregation_respects_feature_extremes() {
    // Aggregating blocks containing ±infinity-adjacent magnitudes must not
    // produce NaNs for min/max.
    let block = pilot_datagen::Block {
        msg_id: 0,
        points: 4,
        features: 1,
        data: vec![f64::MAX / 2.0, -f64::MAX / 2.0, 0.0, 1.0],
        labels: vec![false; 4],
    };
    let min = aggregate_points(&block, 4, AggKind::Min);
    let max = aggregate_points(&block, 4, AggKind::Max);
    assert_eq!(min.data[0], -f64::MAX / 2.0);
    assert_eq!(max.data[0], f64::MAX / 2.0);
    assert!(!min.data[0].is_nan() && !max.data[0].is_nan());
}

#[test]
fn mqtt_concurrent_publishers_and_subscribers() {
    // 4 publishers × 200 messages fanned out to 2 QoS-1 subscribers: every
    // subscriber sees all 800, per-topic order preserved.
    let broker = MqttBroker::new();
    let subs: Vec<_> = (0..2)
        .map(|_| broker.subscribe("load/#", QoS::AtLeastOnce, 64).unwrap())
        .collect();
    let mut pubs = Vec::new();
    for p in 0..4u32 {
        let b = broker.clone();
        pubs.push(std::thread::spawn(move || {
            for i in 0..200u32 {
                b.publish(
                    &format!("load/p{p}"),
                    i.to_le_bytes().to_vec(),
                    QoS::AtLeastOnce,
                    false,
                    0,
                )
                .unwrap();
            }
        }));
    }
    let readers: Vec<_> = subs
        .into_iter()
        .map(|sub| {
            std::thread::spawn(move || {
                let mut last_per_topic: std::collections::HashMap<String, u32> =
                    std::collections::HashMap::new();
                let mut n = 0;
                while n < 800 {
                    let msg = sub.recv(Duration::from_secs(10)).expect("qos1 lossless");
                    let v = u32::from_le_bytes(msg.payload.as_ref().try_into().unwrap());
                    if let Some(&prev) = last_per_topic.get(&msg.topic) {
                        assert!(v > prev, "per-topic order violated on {}", msg.topic);
                    }
                    last_per_topic.insert(msg.topic.clone(), v);
                    n += 1;
                }
                n
            })
        })
        .collect();
    for p in pubs {
        p.join().unwrap();
    }
    for r in readers {
        assert_eq!(r.join().unwrap(), 800);
    }
    assert_eq!(broker.dropped(), 0);
}

#[test]
fn wan_links_shared_by_two_pipelines_contend() {
    // Two pipelines over the SAME transatlantic link object: combined
    // goodput must stay within the single link's envelope (the pipe is a
    // shared resource, not per-pipeline).
    let svc = PilotComputeService::new();
    let shared_link = profiles::transatlantic("shared-wan", 77).build();
    let mk = |edge: pilot_core::Pilot, cloud: pilot_core::Pilot| {
        EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(5_000), 3))
            .process_cloud_function(paper_model_factory(ModelKind::Baseline, 32))
            .devices(1)
            .link_edge_to_broker(shared_link.clone())
            .start()
            .unwrap()
    };
    let e1 = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let c1 = svc
        .submit_and_wait(PilotDescription::local(1, 44.0), WAIT)
        .unwrap();
    let e2 = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), WAIT)
        .unwrap();
    let c2 = svc
        .submit_and_wait(PilotDescription::local(1, 44.0), WAIT)
        .unwrap();
    let start = std::time::Instant::now();
    let a = mk(e1, c1);
    let b = mk(e2, c2);
    let sa = a.wait(WAIT).unwrap();
    let sb = b.wait(WAIT).unwrap();
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(sa.messages + sb.messages, 6);
    // 6 × 1.28 MB over one ≤100 Mbit/s pipe needs ≥ 0.6 s of transit alone.
    assert!(
        wall >= 0.6,
        "wall={wall:.2}s — link contention not modelled?"
    );
}
