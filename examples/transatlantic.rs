//! Geographic distribution: the paper's Jetstream (US) → LRZ (EU) scenario,
//! and the hybrid deployment it recommends for it.
//!
//! Compares three placements of the same k-means workload over the
//! transatlantic link model (140–160 ms RTT, 60–100 Mbit/s):
//!
//! * cloud-centric — raw 250 KB messages cross the WAN (the paper's Fig. 3
//!   geo setup, bandwidth-limited);
//! * hybrid — `process_edge` downsamples 4× before the transfer ("adding a
//!   data compression step before the data transfer");
//! * the analytic placement advisor's verdict for this configuration.
//!
//! Run: `cargo run --release --example transatlantic`

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{serialized_size, DataGenConfig};
use pilot_edge::placement::{estimate, StageCost};
use pilot_edge::processors::{
    datagen_produce_factory, downsample_edge_factory, paper_model_factory,
};
use pilot_edge::{DeploymentMode, EdgeToCloudPipeline};
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::time::Duration;

const POINTS: usize = 1000;
const MESSAGES: usize = 8;
const DEVICES: usize = 2;

fn run(mode: DeploymentMode) -> pilot_edge::RunSummary {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(DEVICES, 8.0).with_site("jetstream"),
            Duration::from_secs(10),
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::lrz_large(), Duration::from_secs(10))
        .unwrap();
    let mut builder = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(POINTS),
            MESSAGES,
        ))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(DEVICES)
        .mode(mode)
        .link_edge_to_broker(profiles::transatlantic("us->eu", 11).build())
        .link_broker_to_cloud(profiles::cloud_local("lrz", 12).build());
    if mode.edge_processing() {
        builder = builder.process_edge_function(downsample_edge_factory(4));
    }
    builder.run(Duration::from_secs(300)).unwrap()
}

fn main() {
    println!(
        "# k-means over the transatlantic link; {DEVICES} devices x {MESSAGES} messages x {POINTS} points ({:.0} KB each)",
        serialized_size(POINTS, 32) as f64 / 1024.0
    );
    println!("deployment,throughput_msgs_s,throughput_mb_s,latency_mean_ms,latency_p99_ms");
    for mode in [DeploymentMode::CloudCentric, DeploymentMode::Hybrid] {
        let s = run(mode);
        println!(
            "{},{:.2},{:.3},{:.1},{:.1}",
            mode.label(),
            s.throughput_msgs,
            s.throughput_mb,
            s.latency_mean_ms,
            s.latency_p99_ms
        );
    }

    // The analytic advisor, fed rough per-message model costs.
    let cost = StageCost {
        edge_secs: 0.004,     // downsampling 1000 points is cheap
        cloud_secs: 0.010,    // k-means partial_fit + score
        edge_reduction: 0.25, // 4× downsampling
    };
    let est = estimate(
        serialized_size(POINTS, 32) as u64,
        &profiles::transatlantic("us->eu", 11),
        cost,
    );
    println!("\n# placement advisor (expected per-message seconds):");
    println!("#   cloud-centric: {:.3}", est.cloud_centric_secs);
    println!("#   hybrid:        {:.3}", est.hybrid_secs);
    println!("#   edge-centric:  {:.3}", est.edge_centric_secs);
    println!("#   recommended:   {}", est.best().label());
}
