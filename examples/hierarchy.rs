//! Multi-tier topologies — the paper's future-work generalisation
//! ("currently, it is limited to two layers: edge and cloud. ... we will
//! generalize the abstraction to arbitrary architectures and topologies").
//!
//! Builds a three-tier edge → fog → cloud continuum:
//!
//! * a `pilot-netsim` topology with an edge site, a regional fog site, and
//!   a cloud site, routed by minimum expected latency;
//! * stage 1: devices stream into a *fog* pipeline whose processing
//!   function pre-aggregates each message down to per-cluster summaries and
//!   forwards them into a second broker topic;
//! * stage 2: a *cloud* pipeline consumes the summaries and maintains the
//!   global k-means model.
//!
//! Run: `cargo run --release --example hierarchy`

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{Block, DataGenConfig};
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::{CloudFactory, Context, EdgeToCloudPipeline, ProcessOutcome, ProduceFactory};
use pilot_ml::ModelKind;
use pilot_netsim::{profiles, Site, Tier, Topology};
use std::sync::Arc;
use std::time::Duration;

const DEVICES: usize = 2;
const MESSAGES: usize = 8;
const POINTS: usize = 500;
/// Fog pre-aggregation: each message is reduced to this many summary points.
const SUMMARY_POINTS: usize = 25;

fn main() {
    // ---- The three-tier network ------------------------------------------
    let mut topo = Topology::new();
    let edge_site = topo.add_site(Site::new("factory-floor", Tier::Edge, "us-east"));
    let fog_site = topo.add_site(Site::new("regional-fog", Tier::Fog, "us-east"));
    let cloud_site = topo.add_site(Site::new("lrz", Tier::Cloud, "eu-de"));
    topo.connect(edge_site, fog_site, profiles::edge_uplink("edge->fog", 5));
    topo.connect(
        fog_site,
        cloud_site,
        profiles::transatlantic("fog->cloud", 6),
    );
    let route = topo.route(edge_site, cloud_site).unwrap();
    println!(
        "# route factory-floor -> lrz: {} hops ({})",
        route.len(),
        route
            .iter()
            .map(|l| l.name().to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );

    // ---- Pilots on every tier --------------------------------------------
    let svc = PilotComputeService::new();
    let p_edge = svc
        .submit_and_wait(
            PilotDescription::local(DEVICES, 8.0).with_site("factory-floor"),
            Duration::from_secs(10),
        )
        .unwrap();
    let p_fog = svc
        .submit_and_wait(
            PilotDescription::local(DEVICES.max(2), 16.0).with_site("regional-fog"),
            Duration::from_secs(10),
        )
        .unwrap();
    let p_cloud = svc
        .submit_and_wait(PilotDescription::lrz_large(), Duration::from_secs(10))
        .unwrap();

    // ---- Stage 2 first: the cloud pipeline consumes fog summaries --------
    // Summaries flow through an in-process queue bridging the two stages
    // (in the two-layer API, chaining pipelines is how deeper hierarchies
    // compose).
    let (tx, rx) = crossbeam::channel::unbounded::<Option<Block>>();
    let summaries_in: ProduceFactory = {
        let rx = rx.clone();
        Arc::new(move |_ctx: &Context, _device| {
            let rx = rx.clone();
            Box::new(move |_ctx: &Context| rx.recv().ok().flatten())
        })
    };
    let cloud_stage = EdgeToCloudPipeline::builder()
        .pilot_edge(p_fog.clone()) // the fog acts as stage-2's "edge"
        .pilot_cloud_processing(p_cloud)
        .produce_function(summaries_in)
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(1)
        .link_edge_to_broker(profiles::transatlantic("fog->cloud", 6).build())
        .start()
        .unwrap();

    // ---- Stage 1: devices -> fog, aggregating then forwarding ------------
    let forward: CloudFactory = Arc::new(move |_ctx: &Context| {
        let tx = tx.clone();
        let mut next_id = 0u64;
        Box::new(move |_ctx: &Context, block: &Block| {
            // Pre-aggregate: keep a systematic sample as the "summary"
            // (stands in for per-cluster statistics).
            let stride = (block.points / SUMMARY_POINTS).max(1);
            let d = block.features;
            let mut data = Vec::with_capacity(SUMMARY_POINTS * d);
            for i in (0..block.points).step_by(stride) {
                data.extend_from_slice(&block.data[i * d..(i + 1) * d]);
            }
            let points = data.len() / d;
            let summary = Block {
                msg_id: next_id,
                points,
                features: d,
                data,
                labels: Vec::new(),
            };
            next_id += 1;
            tx.send(Some(summary)).map_err(|e| e.to_string())?;
            Ok(ProcessOutcome::default())
        })
    });
    let fog_stage = EdgeToCloudPipeline::builder()
        .pilot_edge(p_edge)
        .pilot_cloud_processing(p_fog)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(POINTS),
            MESSAGES,
        ))
        .process_cloud_function(forward)
        .devices(DEVICES)
        .link_edge_to_broker(profiles::edge_uplink("edge->fog", 5).build())
        .start()
        .unwrap();

    let fog_summary = fog_stage.wait(Duration::from_secs(300)).unwrap();
    // All `tx` clones lived inside the fog stage's processors; when
    // `wait()` tears the fog pipeline down they are dropped, `rx.recv()`
    // starts failing, and stage 2's producer returns `None` — ending the
    // cloud stage's stream naturally.
    drop(rx);
    let cloud_summary = cloud_stage.wait(Duration::from_secs(300)).unwrap();

    println!(
        "\n# stage 1 (edge->fog): {} messages, {:.1} msgs/s, mean latency {:.1} ms",
        fog_summary.messages, fog_summary.throughput_msgs, fog_summary.latency_mean_ms
    );
    println!(
        "# stage 2 (fog->cloud): {} summaries, {:.1} msgs/s, mean latency {:.1} ms",
        cloud_summary.messages, cloud_summary.throughput_msgs, cloud_summary.latency_mean_ms
    );
    println!(
        "# data reduction at the fog: {POINTS} -> {SUMMARY_POINTS} points per message ({}x)",
        POINTS / SUMMARY_POINTS
    );
}
