//! Multi-tier topologies — the paper's future-work generalisation
//! ("currently, it is limited to two layers: edge and cloud. ... we will
//! generalize the abstraction to arbitrary architectures and topologies").
//!
//! This demo drives the **federation layer** (DESIGN.md §14): a real
//! three-tier continuum of edge *cells* → *regional* aggregators → one
//! *cloud* tier, rather than two chained two-tier pipelines.
//!
//! * 12 cells, each a pooled pilot hosting its own broker shard, with 3
//!   devices streaming skewed (non-iid) data;
//! * every cell's producer and consumer multiplexed onto **one** shared
//!   reactor and one shared compute pool — the whole continuum costs a
//!   handful of OS threads, not `cells × stages`;
//! * 3 regional parameter servers merging their cells' model updates with
//!   batched reads (`get_many_if_newer`), feeding a cloud server that
//!   folds the regional models into the global one, which fans back down
//!   to every region (`put_many`) — continuous hierarchical FedAvg.
//!
//! Run: `cargo run --release --example hierarchy`

use pilot_edge::federation::{self, FederationConfig, GLOBAL_KEY, REGION_KEY};
use pilot_netsim::{profiles, Site, Tier, Topology};
use std::time::Duration;

const CELLS: usize = 12;
const REGIONS: usize = 3;
const DEVICES: usize = 3;
const MESSAGES: usize = 16;
const POINTS: usize = 50;

fn main() {
    // ---- The three-tier network the federation models --------------------
    let mut topo = Topology::new();
    let edge_site = topo.add_site(Site::new("factory-floor", Tier::Edge, "us-east"));
    let fog_site = topo.add_site(Site::new("regional-fog", Tier::Fog, "us-east"));
    let cloud_site = topo.add_site(Site::new("lrz", Tier::Cloud, "eu-de"));
    topo.connect(edge_site, fog_site, profiles::edge_uplink("edge->fog", 5));
    topo.connect(
        fog_site,
        cloud_site,
        profiles::transatlantic("fog->cloud", 6),
    );
    let route = topo.route(edge_site, cloud_site).unwrap();
    println!(
        "# route factory-floor -> lrz: {} hops ({})",
        route.len(),
        route
            .iter()
            .map(|l| l.name().to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );

    // ---- The federation: cells -> regions -> cloud ------------------------
    let cfg = FederationConfig {
        cells: CELLS,
        regions: REGIONS,
        devices_per_cell: DEVICES,
        messages_per_device: MESSAGES,
        points: POINTS,
        skew: 2.0, // later cells see progressively more outliers
        reactor_threads: 4,
        telemetry_sample_ms: Some(5),
        ..FederationConfig::default()
    };
    println!(
        "# federation: {CELLS} cells x {DEVICES} devices x {MESSAGES} msgs \
         ({POINTS} points each) -> {REGIONS} regions -> 1 cloud"
    );
    let running = federation::start(cfg).expect("federation start");
    let region_servers = running.region_servers().to_vec();
    let summary = running
        .wait(Duration::from_secs(300))
        .expect("federation run");

    println!("\n# tier 1 — edge cells (shared reactor, per-cell brokers)");
    println!("messages processed    : {}", summary.processed);
    println!(
        "throughput            : {:.1} msgs/s ({:.1} us/msg)",
        summary.throughput(),
        summary.per_message_us()
    );
    println!(
        "reactor threads       : {} for {} cells ({} tasks)",
        summary.reactor_threads,
        summary.cells,
        2 * summary.cells + summary.regions + 1
    );

    println!("\n# tier 2 — regional aggregators (batched parameter plane)");
    println!("region merge rounds   : {}", summary.region_rounds);
    println!(
        "param-plane traffic   : {} gets / {} puts across {} servers",
        summary.params_gets,
        summary.params_puts,
        summary.regions + 1
    );
    for (r, server) in region_servers.iter().enumerate() {
        if let Some((model, _)) = server.get(REGION_KEY) {
            println!(
                "region {r} model       : {} samples, feature-0 mean {:+.4}",
                model[0] as u64, model[1]
            );
        }
    }

    println!("\n# tier 3 — cloud (global FedAvg)");
    println!("cloud merge rounds    : {}", summary.cloud_rounds);
    let (samples, model) = summary.global.expect("global model published");
    println!(
        "global model          : {} samples over {} features",
        samples as u64,
        model.len()
    );
    println!("feature-0 global mean : {:+.4}", model[0]);
    // Every region also holds a mirror of the global model (fanned back
    // down by its aggregator), so cells can read it without touching the
    // cloud server.
    let mirrored = region_servers
        .iter()
        .filter(|s| s.get(GLOBAL_KEY).is_some())
        .count();
    println!("global mirrored to    : {mirrored}/{REGIONS} regions");
}
