//! Quickstart: the smallest complete Pilot-Edge application.
//!
//! Mirrors the paper's three-step flow (Fig. 1):
//!   1. acquire resources as pilots,
//!   2. bind FaaS functions into an `EdgeToCloudPipeline` and run it,
//!   3. inspect the linked monitoring data.
//!
//! Run: `cargo run --release --example quickstart`

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{baseline_factory, datagen_produce_factory};
use pilot_edge::EdgeToCloudPipeline;
use std::time::Duration;

fn main() {
    // -- Step 1: acquire resources using the pilot abstraction ------------
    let svc = PilotComputeService::new();
    let pilot_edge = svc
        .submit_and_wait(
            PilotDescription::edge_device("raspi-0", "factory"),
            Duration::from_secs(10),
        )
        .expect("edge pilot");
    let pilot_cloud = svc
        .submit_and_wait(PilotDescription::lrz_medium(), Duration::from_secs(10))
        .expect("cloud pilot");
    println!(
        "pilots active: edge={:?} cloud={:?}",
        pilot_edge.state(),
        pilot_cloud.state()
    );

    // -- Step 2: define the application and run it -------------------------
    // produce_edge: 16 messages of 100 points × 32 features from the
    // Mini-App generator; process_cloud: the no-op baseline.
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(pilot_edge.clone())
        .pilot_cloud_processing(pilot_cloud.clone())
        .produce_function(datagen_produce_factory(DataGenConfig::paper(100), 16))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .run(Duration::from_secs(60))
        .expect("pipeline run");

    // -- Step 3: monitoring -------------------------------------------------
    println!("\nmessages        : {}", summary.messages);
    println!(
        "throughput      : {:.1} msgs/s, {:.2} MB/s",
        summary.throughput_msgs, summary.throughput_mb
    );
    println!("latency (mean)  : {:.2} ms", summary.latency_mean_ms);
    println!("latency (p99)   : {:.2} ms", summary.latency_p99_ms);
    println!(
        "bottleneck      : {}",
        summary.bottleneck.as_deref().unwrap_or("-")
    );
    println!("\nper-component breakdown:\n{}", summary.report.to_csv());

    println!(
        "edge pilot energy estimate: {:.1} J over {:.1} s",
        pilot_edge.energy().joules(),
        pilot_edge.uptime().as_secs_f64()
    );
    pilot_edge.release();
    pilot_cloud.release();
}
