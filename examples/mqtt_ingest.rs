//! MQTT ingestion — the paper's low-power brokering plugin in action.
//!
//! "Support for further brokering framework, e.g., MQTT for low-performance
//! and low-power environments, can easily be added" (Section II-B). This
//! example runs the classic IoT gateway pattern on top of that plugin:
//!
//! * a fleet of simulated battery-powered sensors publishes single readings
//!   to `plant/<line>/sensor/<id>` over MQTT (QoS 0 — cheap, lossy);
//! * a gateway task subscribes to `plant/#`, batches readings into blocks,
//!   and acts as the Pilot-Edge pipeline's `produce_edge` function;
//! * the cloud side runs the usual k-means outlier detection.
//!
//! Run: `cargo run --release --example mqtt_ingest`

use pilot_broker::{MqttBroker, QoS};
use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{Block, DataGenConfig, DataGenerator};
use pilot_edge::processors::paper_model_factory;
use pilot_edge::{Context, EdgeToCloudPipeline, ProduceFactory};
use pilot_ml::ModelKind;
use std::sync::Arc;
use std::time::Duration;

const SENSORS: usize = 8;
const READINGS_PER_SENSOR: usize = 400;
const FEATURES: usize = 32;
/// Readings per pipeline block assembled by the gateway.
const BATCH: usize = 100;

fn main() {
    let mqtt = MqttBroker::new();

    // --- Gateway subscription FIRST -------------------------------------
    // MQTT has no replay: anything published before a subscription exists
    // is delivered to no one. Real gateways subscribe before the fleet
    // powers up; so does this one.
    let subscription = Arc::new(
        mqtt.subscribe("plant/#", QoS::AtMostOnce, 4096)
            .expect("subscribe"),
    );

    // --- Sensor fleet: publish readings over MQTT ------------------------
    let mut sensor_threads = Vec::new();
    for sensor in 0..SENSORS {
        let mqtt = mqtt.clone();
        sensor_threads.push(std::thread::spawn(move || {
            let mut generator = DataGenerator::new(DataGenConfig {
                points: 1,
                features: FEATURES,
                clusters: 25,
                outlier_fraction: 0.05,
                cluster_std: 1.0,
                domain: 10.0,
                seed: 100 + sensor as u64,
            });
            let topic = format!("plant/line{}/sensor/{sensor}", sensor % 2);
            for _ in 0..READINGS_PER_SENSOR {
                let block = generator.next_block();
                // One reading = one point's features, packed little-endian.
                let mut payload = Vec::with_capacity(FEATURES * 8);
                for &v in &block.data {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
                let _ = mqtt.publish(&topic, payload, QoS::AtMostOnce, false, 0);
            }
        }));
    }

    // --- Gateway: MQTT subscriber as produce_edge ------------------------
    let gateway: ProduceFactory = {
        let sub = Arc::clone(&subscription);
        Arc::new(move |_ctx: &Context, _device| {
            let sub = Arc::clone(&sub);
            let mut next_id = 0u64;
            Box::new(move |_ctx: &Context| {
                let mut data = Vec::with_capacity(BATCH * FEATURES);
                let mut readings = 0;
                while readings < BATCH {
                    match sub.recv(Duration::from_millis(500)) {
                        Some(msg) => {
                            for chunk in msg.payload.chunks_exact(8) {
                                data.push(f64::from_le_bytes(chunk.try_into().unwrap()));
                            }
                            readings += 1;
                        }
                        None if readings == 0 => return None, // fleet done
                        None => break,                        // flush a partial batch
                    }
                }
                let block = Block {
                    msg_id: next_id,
                    points: readings,
                    features: FEATURES,
                    data,
                    labels: Vec::new(),
                };
                next_id += 1;
                Some(block)
            })
        })
    };

    // --- The usual pipeline on top --------------------------------------
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(1, 4.0), Duration::from_secs(10))
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::lrz_medium(), Duration::from_secs(10))
        .unwrap();
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(gateway)
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(1)
        .start()
        .unwrap();
    let ctx = running.context().clone();

    for t in sensor_threads {
        t.join().unwrap();
    }
    let summary = running.wait(Duration::from_secs(120)).unwrap();

    println!("# MQTT ingestion: {SENSORS} sensors x {READINGS_PER_SENSOR} readings, gateway batches of {BATCH}");
    println!("mqtt published     : {}", mqtt.published());
    println!("mqtt dropped (QoS0): {}", mqtt.dropped());
    println!("pipeline blocks    : {}", summary.messages);
    println!(
        "points processed   : {}",
        ctx.counter("points_processed").get()
    );
    println!("outliers detected  : {}", summary.outliers_detected);
    println!(
        "throughput         : {:.1} blocks/s ({:.2} MB/s)",
        summary.throughput_msgs, summary.throughput_mb
    );
}
