//! Streaming outlier detection — the paper's motivating ML workload.
//!
//! Part 1 scores all three evaluation models *offline* against the
//! generator's ground-truth labels (ROC-AUC / precision@k), verifying the
//! models actually detect the injected anomalies.
//!
//! Part 2 runs the k-means detector *in the pipeline*: model updated per
//! message, weights published through the parameter server, outliers
//! counted via the shared context — exactly Section III.2's protocol.
//!
//! Run: `cargo run --release --example outlier_detection`

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{DataGenConfig, DataGenerator};
use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
use pilot_edge::EdgeToCloudPipeline;
use pilot_ml::eval::{precision_at_k, roc_auc};
use pilot_ml::{
    AutoEncoder, AutoEncoderConfig, Dataset, IsolationForest, IsolationForestConfig, KMeans,
    KMeansConfig, ModelKind, OutlierModel,
};
use std::time::Duration;

fn main() {
    // ---- Part 1: model quality against ground truth ----------------------
    println!("# offline model quality (2,000 points, 5% injected outliers)");
    let mut generator = DataGenerator::new(DataGenConfig::paper(2000));
    // Warm-up batch to train on, scoring batch with labels.
    let train = generator.next_block();
    let test = generator.next_block();
    let train_ds = Dataset::new(&train.data, train.points, train.features);
    let test_ds = Dataset::new(&test.data, test.points, test.features);
    let k = test.outlier_count();

    let mut models: Vec<Box<dyn OutlierModel>> = vec![
        Box::new(KMeans::new(KMeansConfig::paper())),
        Box::new(IsolationForest::new(IsolationForestConfig::paper())),
        Box::new(AutoEncoder::new(AutoEncoderConfig::paper())),
    ];
    println!("model,roc_auc,precision_at_{k}");
    for model in &mut models {
        // Several passes over the training batch (the pipeline equivalent
        // is seeing several messages).
        for _ in 0..8 {
            model.partial_fit(&train_ds);
        }
        let scores = model.score(&test_ds);
        println!(
            "{},{:.3},{:.3}",
            model.kind().label(),
            roc_auc(&scores, &test.labels),
            precision_at_k(&scores, &test.labels, k),
        );
    }

    // ---- Part 2: streaming detection in the pipeline ---------------------
    println!("\n# streaming k-means detection (4 devices x 16 messages x 1000 points)");
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(PilotDescription::local(4, 16.0), Duration::from_secs(10))
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::lrz_large(), Duration::from_secs(10))
        .unwrap();
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(1000), 16))
        .process_cloud_function(paper_model_factory(ModelKind::KMeans, 32))
        .devices(4)
        .start()
        .unwrap();
    let ctx = running.context().clone();
    let summary = running.wait(Duration::from_secs(120)).unwrap();

    println!("messages processed : {}", summary.messages);
    println!(
        "points processed   : {}",
        ctx.counter("points_processed").get()
    );
    println!("outliers detected  : {}", summary.outliers_detected);
    println!(
        "throughput         : {:.1} msgs/s ({:.2} MB/s)",
        summary.throughput_msgs, summary.throughput_mb
    );
    // The shared model the consumers published (25 centroids × 32 features
    // + 25 counts).
    let (weights, version) = ctx.params.get(&ctx.model_key()).expect("shared model");
    println!(
        "shared model       : {} weights at version {version} (one update per message)",
        weights.len()
    );
}
