//! Federated learning over Pilot-Edge — the paper's named future-work
//! scenario ("we will explore novel edge-to-cloud scenarios, e.g.,
//! federated learning").
//!
//! Topology: an *edge-centric* deployment where raw data never leaves the
//! devices. Each edge device trains a **local** k-means model inside its
//! `process_edge` function and publishes `(weights, sample_count)` to the
//! parameter server; only a heavily downsampled summary crosses the WAN.
//! The cloud's `process_cloud` function acts as the FedAvg server: when
//! every client has reported for a round, it aggregates
//! (sample-weighted average) and publishes the new **global** model, which
//! the devices pull down (`get_if_newer`) and continue training from.
//!
//! A second phase then scales the same idea out **hierarchically** with
//! the federation layer (DESIGN.md §14): many cells run FedAvg rounds
//! against *regional* parameter servers, regions merge upward, and the
//! cloud folds the regional models into one global model that fans back
//! down — two aggregation hops instead of one, on shared thread pools.
//!
//! Run: `cargo run --release --example federated`

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{DataGenConfig, DataGenerator};
use pilot_edge::processors::datagen_produce_factory;
use pilot_edge::windows::{aggregate_points, AggKind};
use pilot_edge::{
    CloudFactory, Context, DeploymentMode, EdgeFactory, EdgeToCloudPipeline, ProcessOutcome,
};
use pilot_ml::federated::{fed_avg, ClientUpdate};
use pilot_ml::{Dataset, KMeans, KMeansConfig, OutlierModel};
use pilot_netsim::profiles;
use pilot_params::MergePolicy;
use std::sync::Arc;
use std::time::Duration;

const DEVICES: usize = 4;
const MESSAGES: usize = 12;
const POINTS: usize = 500;

fn kmeans_config() -> KMeansConfig {
    let mut cfg = KMeansConfig::paper();
    cfg.features = 32;
    cfg
}

/// process_edge: local training + update publication + summary forwarding.
fn federated_edge_factory() -> EdgeFactory {
    Arc::new(move |_ctx: &Context, device: usize| {
        let mut local = KMeans::new(kmeans_config());
        let mut last_global_version = 0;
        Box::new(move |ctx: &Context, block| {
            // Pull a newer global model if one was published.
            let global_key = format!("fed:global:{}", ctx.job_id);
            if let Some((global, version)) =
                ctx.params.get_if_newer(&global_key, last_global_version)
            {
                last_global_version = version;
                local.set_weights(&global);
            }
            // Local training on raw device data (which never leaves).
            let ds = Dataset::new(&block.data, block.points, block.features);
            local.partial_fit(&ds);
            // Publish this client's update for the current round.
            let update_key = format!("fed:update:{}:{}", ctx.job_id, device);
            ctx.params
                .update(&update_key, MergePolicy::Assign, &local.weights());
            ctx.counter("client_updates_published").incr();
            // Only a 20× downsampled summary crosses the network.
            Ok(aggregate_points(&block, 20, AggKind::Mean))
        })
    })
}

/// process_cloud: the FedAvg aggregation server.
fn federated_cloud_factory() -> CloudFactory {
    Arc::new(move |_ctx: &Context| {
        let mut seen_versions = [0u64; DEVICES];
        Box::new(move |ctx: &Context, _summary| {
            // Gather every client's freshest update.
            let mut updates = Vec::with_capacity(DEVICES);
            for (device, seen) in seen_versions.iter_mut().enumerate() {
                let key = format!("fed:update:{}:{device}", ctx.job_id);
                if let Some((weights, version)) = ctx.params.get(&key) {
                    if version > *seen {
                        *seen = version;
                    }
                    updates.push(ClientUpdate {
                        weights: weights.to_vec(),
                        samples: POINTS as u64,
                    });
                }
            }
            // A round completes once all clients have reported at least once.
            if updates.len() == DEVICES {
                if let Some(global) = fed_avg(&updates) {
                    let global_key = format!("fed:global:{}", ctx.job_id);
                    ctx.params.update(&global_key, MergePolicy::Assign, &global);
                    ctx.counter("federated_rounds").incr();
                }
            }
            Ok(ProcessOutcome::default())
        })
    })
}

fn main() {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(DEVICES, 4.0 * DEVICES as f64).with_site("devices"),
            Duration::from_secs(10),
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::lrz_large(), Duration::from_secs(10))
        .unwrap();

    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(POINTS),
            MESSAGES,
        ))
        .process_edge_function(federated_edge_factory())
        .process_cloud_function(federated_cloud_factory())
        .mode(DeploymentMode::EdgeCentric)
        .devices(DEVICES)
        .processors(1) // one FedAvg server
        .link_edge_to_broker(profiles::transatlantic("devices->cloud", 21).build())
        .start()
        .unwrap();
    let ctx = running.context().clone();
    let summary = running.wait(Duration::from_secs(300)).unwrap();

    let rounds = ctx.counter("federated_rounds").get();
    let updates = ctx.counter("client_updates_published").get();
    println!("# federated k-means over {DEVICES} devices x {MESSAGES} messages");
    println!("summaries shipped     : {}", summary.messages);
    println!("client updates        : {updates}");
    println!("aggregation rounds    : {rounds}");
    println!(
        "WAN bytes per message : {} (raw would be {})",
        pilot_datagen::serialized_size(POINTS / 20, 32),
        pilot_datagen::serialized_size(POINTS, 32),
    );

    // Evaluate the final global model on fresh, mixed data.
    let (global, version) = ctx
        .params
        .get(&format!("fed:global:{}", ctx.job_id))
        .expect("global model");
    let mut model = KMeans::new(kmeans_config());
    assert!(model.set_weights(&global));
    let mut generator = DataGenerator::new(DataGenConfig::paper(2000).with_seed(999));
    let test = generator.next_block();
    let ds = Dataset::new(&test.data, test.points, test.features);
    let scores = model.score(&ds);
    let auc = pilot_ml::eval::roc_auc(&scores, &test.labels);
    println!("global model version  : {version}");
    println!("global model ROC-AUC  : {auc:.3} (on unseen mixed data)");

    hierarchical_rounds();
}

/// Phase 2: the same FedAvg protocol run hierarchically — cells publish
/// to their region's parameter server, regions merge (batched) and push
/// to the cloud, the cloud publishes the global model, regions mirror it
/// back down. Continuous rounds at every tier, on one shared reactor.
fn hierarchical_rounds() {
    use pilot_edge::federation::{self, FederationConfig};

    const CELLS: usize = 8;
    const REGIONS: usize = 2;
    let cfg = FederationConfig {
        cells: CELLS,
        regions: REGIONS,
        devices_per_cell: 2,
        messages_per_device: 10,
        points: 100,
        skew: 1.0, // non-iid: later cells see more outliers
        reactor_threads: 4,
        ..FederationConfig::default()
    };
    let expected = cfg.expected_messages();
    let summary = federation::run(cfg, Duration::from_secs(300)).expect("federation run");
    assert_eq!(summary.processed, expected);

    println!("\n# hierarchical rounds: {CELLS} cells -> {REGIONS} regions -> cloud");
    println!("messages processed    : {}", summary.processed);
    println!(
        "aggregation rounds    : {} regional + {} cloud",
        summary.region_rounds, summary.cloud_rounds
    );
    println!(
        "param-plane traffic   : {} gets / {} puts (batched merges)",
        summary.params_gets, summary.params_puts
    );
    let (samples, global) = summary.global.expect("global model");
    println!(
        "global model          : sample-weighted mean of {} points across \
         every cell ({} features)",
        samples as u64,
        global.len()
    );
}
