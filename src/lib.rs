//! # pilot-edge-repro — umbrella crate
//!
//! Re-exports the whole Pilot-Edge reproduction behind one dependency, and
//! hosts the workspace-spanning integration tests (`tests/`) and runnable
//! examples (`examples/`).
//!
//! Start with [`pilot_edge::EdgeToCloudPipeline`] (the paper's Listing 2)
//! and `examples/quickstart.rs`.

pub use pilot_broker as broker;
pub use pilot_core as core;
pub use pilot_dataflow as dataflow;
pub use pilot_datagen as datagen;
pub use pilot_edge as edge;
pub use pilot_metrics as metrics;
pub use pilot_ml as ml;
pub use pilot_netsim as netsim;
pub use pilot_params as params;
