//! Binary wire format for blocks.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"PEB1"
//! 4       8     msg_id
//! 12      4     points
//! 16      4     features
//! 20      8     produced_at_us (producer timestamp; 0 if unset)
//! 28      n*d*8 features, row-major f64
//! ```
//!
//! With the paper's 32 features × 8 bytes, payload sizes land exactly in the
//! reported range: 25 points → 6,428 B (~7 KB incl. broker framing) and
//! 10,000 points → 2,560,028 B (~2.6 MB).

use crate::generator::Block;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 28;

const MAGIC: &[u8; 4] = b"PEB1";

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    TooShort { len: usize },
    /// Magic bytes did not match.
    BadMagic([u8; 4]),
    /// Header promised more data than the buffer holds.
    Truncated { expected: usize, actual: usize },
    /// points × features overflows usize.
    Overflow,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort { len } => write!(f, "buffer too short for header: {len} bytes"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            WireError::Truncated { expected, actual } => {
                write!(f, "truncated payload: expected {expected}, got {actual}")
            }
            WireError::Overflow => write!(f, "points*features overflows"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialized size of a block with `points × features` values.
pub const fn serialized_size(points: usize, features: usize) -> usize {
    HEADER_BYTES + points * features * 8
}

/// Encode a block (plus a producer timestamp in µs) into a contiguous buffer.
/// Ground-truth labels are *not* serialized — they are experiment metadata.
pub fn encode(block: &Block, produced_at_us: u64) -> Bytes {
    let mut scratch = BytesMut::new();
    encode_into(block, produced_at_us, &mut scratch)
}

/// [`encode`], but writing through a caller-owned scratch buffer — the
/// producer-side mirror of [`decode_into`]. The scratch is cleared,
/// `reserve`d (which reclaims its backing allocation once every previously
/// split-off payload has been dropped, e.g. after broker retention trims
/// the record), filled, and split off as the frozen payload. A producer
/// loop holding one long-lived scratch amortizes payload allocation
/// instead of paying `with_capacity` per message.
pub fn encode_into(block: &Block, produced_at_us: u64, scratch: &mut BytesMut) -> Bytes {
    scratch.clear();
    scratch.reserve(serialized_size(block.points, block.features));
    scratch.put_slice(MAGIC);
    scratch.put_u64_le(block.msg_id);
    scratch.put_u32_le(block.points as u32);
    scratch.put_u32_le(block.features as u32);
    scratch.put_u64_le(produced_at_us);
    for &v in &block.data {
        scratch.put_f64_le(v);
    }
    scratch.split().freeze()
}

/// Decode a buffer produced by [`encode`]. Returns the block (with empty
/// labels) and the producer timestamp.
pub fn decode(buf: &[u8]) -> Result<(Block, u64), WireError> {
    let mut block = Block {
        msg_id: 0,
        points: 0,
        features: 0,
        data: Vec::new(),
        labels: Vec::new(),
    };
    let produced_at_us = decode_into(buf, &mut block)?;
    Ok((block, produced_at_us))
}

/// Decode into a caller-owned scratch block, reusing its `data` allocation.
///
/// This is the hot-path variant: a consumer decoding the paper's 2.6 MB
/// messages (10,000 × 32 f64s) with [`decode`] allocates and frees a 2.5 MB
/// `Vec` per message; with one long-lived scratch block the steady state
/// allocates nothing. Labels are cleared (they are never serialized). On
/// error the scratch block is left unchanged.
pub fn decode_into(mut buf: &[u8], block: &mut Block) -> Result<u64, WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::TooShort { len: buf.len() });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let msg_id = buf.get_u64_le();
    let points = buf.get_u32_le() as usize;
    let features = buf.get_u32_le() as usize;
    let produced_at_us = buf.get_u64_le();
    let n_values = points.checked_mul(features).ok_or(WireError::Overflow)?;
    let expected = n_values.checked_mul(8).ok_or(WireError::Overflow)?;
    if buf.len() < expected {
        return Err(WireError::Truncated {
            expected,
            actual: buf.len(),
        });
    }
    block.data.clear();
    block.data.reserve(n_values);
    for _ in 0..n_values {
        block.data.push(buf.get_f64_le());
    }
    block.msg_id = msg_id;
    block.points = points;
    block.features = features;
    block.labels.clear();
    Ok(produced_at_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DataGenConfig;
    use crate::generator::DataGenerator;

    #[test]
    fn roundtrip_preserves_data() {
        let mut g = DataGenerator::new(DataGenConfig::paper(100));
        let b = g.next_block();
        let bytes = encode(&b, 123_456);
        let (decoded, ts) = decode(&bytes).unwrap();
        assert_eq!(decoded.msg_id, b.msg_id);
        assert_eq!(decoded.points, b.points);
        assert_eq!(decoded.features, b.features);
        assert_eq!(decoded.data, b.data);
        assert_eq!(ts, 123_456);
        assert!(decoded.labels.is_empty());
    }

    #[test]
    fn decode_into_reuses_allocation() {
        let mut g = DataGenerator::new(DataGenConfig::paper(100));
        let first = encode(&g.next_block(), 5);
        let second = encode(&g.next_block(), 6);
        let mut scratch = Block {
            msg_id: 0,
            points: 0,
            features: 0,
            data: Vec::new(),
            labels: Vec::new(),
        };
        assert_eq!(decode_into(&first, &mut scratch).unwrap(), 5);
        let cap = scratch.data.capacity();
        let ptr = scratch.data.as_ptr();
        assert_eq!(decode_into(&second, &mut scratch).unwrap(), 6);
        assert_eq!(scratch.data.capacity(), cap, "scratch was reallocated");
        assert_eq!(scratch.data.as_ptr(), ptr, "scratch was reallocated");
        let (expect, _) = decode(&second).unwrap();
        assert_eq!(scratch.msg_id, expect.msg_id);
        assert_eq!(scratch.points, expect.points);
        assert_eq!(scratch.data, expect.data);
    }

    #[test]
    fn decode_into_error_leaves_scratch_untouched() {
        let mut g = DataGenerator::new(DataGenConfig::paper(10));
        let good = encode(&g.next_block(), 1);
        let mut scratch = Block {
            msg_id: 0,
            points: 0,
            features: 0,
            data: Vec::new(),
            labels: Vec::new(),
        };
        decode_into(&good, &mut scratch).unwrap();
        let before = scratch.data.clone();
        let cut = &good[..good.len() - 8];
        assert!(decode_into(cut, &mut scratch).is_err());
        assert_eq!(scratch.data, before);
    }

    #[test]
    fn sizes_match_paper_range() {
        // 25 points × 32 features × 8 B = 6,400 B payload (~7 KB message).
        assert_eq!(serialized_size(25, 32), 28 + 6_400);
        // 10,000 points → 2.56 MB (~2.6 MB in the paper).
        assert_eq!(serialized_size(10_000, 32), 28 + 2_560_000);
    }

    #[test]
    fn encoded_len_matches_serialized_size() {
        let mut g = DataGenerator::new(DataGenConfig::paper(25));
        let b = g.next_block();
        assert_eq!(encode(&b, 0).len(), serialized_size(25, 32));
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(decode(&[0u8; 10]), Err(WireError::TooShort { len: 10 }));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut g = DataGenerator::new(DataGenConfig::paper(5));
        let mut bytes = encode(&g.next_block(), 0).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut g = DataGenerator::new(DataGenConfig::paper(5));
        let bytes = encode(&g.next_block(), 0);
        let cut = &bytes[..bytes.len() - 8];
        assert!(matches!(decode(cut), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn overflow_header_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PEB1");
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let r = decode(&buf);
        // Either Overflow (32-bit) or Truncated (64-bit usize) — never a panic.
        assert!(r.is_err());
    }

    #[test]
    fn zero_timestamp_roundtrips() {
        let mut g = DataGenerator::new(DataGenConfig::paper(1));
        let (_, ts) = decode(&encode(&g.next_block(), 0)).unwrap();
        assert_eq!(ts, 0);
    }
}
