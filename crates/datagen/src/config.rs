//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Configuration for a [`crate::DataGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGenConfig {
    /// Points per message ("message size" in the paper's terminology).
    pub points: usize,
    /// Features per point (the paper uses 32).
    pub features: usize,
    /// Number of Gaussian mixture components (the paper uses 25).
    pub clusters: usize,
    /// Fraction of points replaced by uniform outliers, in `[0, 1]`.
    pub outlier_fraction: f64,
    /// Standard deviation of each Gaussian component.
    pub cluster_std: f64,
    /// Half-width of the hypercube cluster centres are drawn from.
    pub domain: f64,
    /// RNG seed; identical configs generate identical streams.
    pub seed: u64,
}

impl DataGenConfig {
    /// The paper's workload for a given message size: 32 features,
    /// 25 clusters, 5% outliers.
    pub fn paper(points: usize) -> Self {
        Self {
            points,
            features: crate::PAPER_FEATURES,
            clusters: crate::PAPER_CLUSTERS,
            outlier_fraction: 0.05,
            cluster_std: 1.0,
            domain: 10.0,
            seed: 42,
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.points == 0 {
            return Err("points must be > 0".into());
        }
        if self.features == 0 {
            return Err("features must be > 0".into());
        }
        if self.clusters == 0 {
            return Err("clusters must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.outlier_fraction) {
            return Err(format!(
                "outlier_fraction must be in [0,1], got {}",
                self.outlier_fraction
            ));
        }
        if self.cluster_std < 0.0 {
            return Err("cluster_std must be >= 0".into());
        }
        if self.domain <= 0.0 {
            return Err("domain must be > 0".into());
        }
        Ok(())
    }
}

impl Default for DataGenConfig {
    fn default() -> Self {
        Self::paper(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_constants() {
        let c = DataGenConfig::paper(25);
        assert_eq!(c.points, 25);
        assert_eq!(c.features, 32);
        assert_eq!(c.clusters, 25);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_points_invalid() {
        let mut c = DataGenConfig::paper(10);
        c.points = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn outlier_fraction_bounds() {
        let mut c = DataGenConfig::paper(10);
        c.outlier_fraction = 1.5;
        assert!(c.validate().is_err());
        c.outlier_fraction = -0.1;
        assert!(c.validate().is_err());
        c.outlier_fraction = 1.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_seed_builder() {
        let c = DataGenConfig::paper(10).with_seed(7);
        assert_eq!(c.seed, 7);
    }
}
