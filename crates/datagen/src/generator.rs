//! The Gaussian-mixture block generator.

use crate::config::DataGenConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One generated message: `points × features` values in row-major order,
/// plus ground-truth outlier labels (out-of-band — not serialized onto the
/// wire; they exist so tests and quality metrics can score the models).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Sequence number assigned by the generator, used as the message id.
    pub msg_id: u64,
    /// Number of points.
    pub points: usize,
    /// Features per point.
    pub features: usize,
    /// Row-major feature matrix, `points * features` long.
    pub data: Vec<f64>,
    /// `labels[i]` is true iff point `i` was injected as an outlier.
    pub labels: Vec<bool>,
}

impl Block {
    /// Borrow point `i` as a feature slice.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.features..(i + 1) * self.features]
    }

    /// Number of injected outliers.
    pub fn outlier_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Streams [`Block`]s from a fixed Gaussian mixture.
///
/// Cluster centres are drawn once (uniformly from `[-domain, domain]^d`) at
/// construction; every block samples points around those centres, replacing
/// an `outlier_fraction` of them with uniform samples from the inflated
/// domain `[-3·domain, 3·domain]^d` (far outside the 3σ envelope of any
/// cluster for the default `cluster_std`).
/// # Example
///
/// ```
/// use pilot_datagen::{DataGenConfig, DataGenerator, encode_with, decode_any, Codec};
///
/// let mut generator = DataGenerator::new(DataGenConfig::paper(25));
/// let block = generator.next_block();
/// assert_eq!((block.points, block.features), (25, 32));
/// let wire = encode_with(Codec::F64, &block, 0);
/// let (decoded, _) = decode_any(&wire).unwrap();
/// assert_eq!(decoded.data, block.data);
/// ```
#[derive(Debug)]
pub struct DataGenerator {
    config: DataGenConfig,
    centres: Vec<f64>, // clusters × features, row-major
    rng: StdRng,
    next_msg_id: u64,
}

impl DataGenerator {
    /// Build a generator; panics on an invalid config (use
    /// [`DataGenConfig::validate`] to pre-check untrusted input).
    pub fn new(config: DataGenConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid DataGenConfig: {e}"));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centres = (0..config.clusters * config.features)
            .map(|_| rng.random_range(-config.domain..=config.domain))
            .collect();
        Self {
            config,
            centres,
            rng,
            next_msg_id: 0,
        }
    }

    /// The generator's config.
    pub fn config(&self) -> &DataGenConfig {
        &self.config
    }

    /// The mixture's cluster centres (row-major `clusters × features`).
    pub fn centres(&self) -> &[f64] {
        &self.centres
    }

    fn normal(&mut self) -> f64 {
        // Box–Muller; one sample per call keeps the stream deterministic and
        // simple (we are generating data, not chasing the last nanosecond).
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Generate the next block.
    pub fn next_block(&mut self) -> Block {
        let n = self.config.points;
        let d = self.config.features;
        let k = self.config.clusters;
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let is_outlier = self.rng.random::<f64>() < self.config.outlier_fraction;
            if is_outlier {
                let lo = -3.0 * self.config.domain;
                let hi = 3.0 * self.config.domain;
                for _ in 0..d {
                    data.push(self.rng.random_range(lo..=hi));
                }
            } else {
                let c = self.rng.random_range(0..k);
                let centre = &self.centres[c * d..(c + 1) * d];
                // Gaussian noise around the chosen centre.
                for &base in centre {
                    let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = self.rng.random();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    data.push(base + self.config.cluster_std * z);
                }
            }
            labels.push(is_outlier);
        }
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        Block {
            msg_id,
            points: n,
            features: d,
            data,
            labels,
        }
    }

    /// Generate `count` blocks.
    pub fn blocks(&mut self, count: usize) -> Vec<Block> {
        (0..count).map(|_| self.next_block()).collect()
    }

    /// Draw one standard-normal sample (exposed for tests).
    #[doc(hidden)]
    pub fn sample_normal(&mut self) -> f64 {
        self.normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(points: usize) -> DataGenerator {
        DataGenerator::new(DataGenConfig::paper(points))
    }

    #[test]
    fn block_geometry() {
        let mut g = gen(100);
        let b = g.next_block();
        assert_eq!(b.points, 100);
        assert_eq!(b.features, 32);
        assert_eq!(b.data.len(), 3200);
        assert_eq!(b.labels.len(), 100);
    }

    #[test]
    fn msg_ids_are_sequential() {
        let mut g = gen(10);
        assert_eq!(g.next_block().msg_id, 0);
        assert_eq!(g.next_block().msg_id, 1);
        assert_eq!(g.next_block().msg_id, 2);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = gen(50);
        let mut b = gen(50);
        for _ in 0..5 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = DataGenerator::new(DataGenConfig::paper(50).with_seed(1));
        let mut b = DataGenerator::new(DataGenConfig::paper(50).with_seed(2));
        assert_ne!(a.next_block().data, b.next_block().data);
    }

    #[test]
    fn outlier_fraction_approximately_respected() {
        let mut cfg = DataGenConfig::paper(10_000);
        cfg.outlier_fraction = 0.05;
        let mut g = DataGenerator::new(cfg);
        let b = g.next_block();
        let frac = b.outlier_count() as f64 / b.points as f64;
        assert!((frac - 0.05).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn zero_outlier_fraction_yields_none() {
        let mut cfg = DataGenConfig::paper(1000);
        cfg.outlier_fraction = 0.0;
        let mut g = DataGenerator::new(cfg);
        assert_eq!(g.next_block().outlier_count(), 0);
    }

    #[test]
    fn inliers_stay_near_some_centre() {
        let mut cfg = DataGenConfig::paper(500);
        cfg.outlier_fraction = 0.0;
        let mut g = DataGenerator::new(cfg);
        let centres: Vec<f64> = g.centres().to_vec();
        let b = g.next_block();
        let d = b.features;
        for i in 0..b.points {
            let p = b.point(i);
            // Distance to the closest centre should be well within ~6σ·√d.
            let min_dist = (0..25)
                .map(|c| {
                    let cc = &centres[c * d..(c + 1) * d];
                    p.iter()
                        .zip(cc)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(min_dist < 6.0 * (d as f64).sqrt(), "min_dist={min_dist}");
        }
    }

    #[test]
    fn outliers_are_far_from_every_centre() {
        let mut cfg = DataGenConfig::paper(2000);
        cfg.outlier_fraction = 0.5;
        let mut g = DataGenerator::new(cfg);
        let centres: Vec<f64> = g.centres().to_vec();
        let b = g.next_block();
        let d = b.features;
        // On average, outliers must sit much further from their nearest
        // centre than inliers do.
        let mean_dist = |want: bool| {
            let (mut sum, mut cnt) = (0.0, 0);
            for i in 0..b.points {
                if b.labels[i] != want {
                    continue;
                }
                let p = b.point(i);
                let min_dist = (0..25)
                    .map(|c| {
                        let cc = &centres[c * d..(c + 1) * d];
                        p.iter()
                            .zip(cc)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                            .sqrt()
                    })
                    .fold(f64::INFINITY, f64::min);
                sum += min_dist;
                cnt += 1;
            }
            sum / cnt as f64
        };
        assert!(mean_dist(true) > 2.0 * mean_dist(false));
    }

    #[test]
    fn point_accessor_matches_layout() {
        let mut g = gen(3);
        let b = g.next_block();
        assert_eq!(b.point(1), &b.data[32..64]);
    }

    #[test]
    #[should_panic(expected = "invalid DataGenConfig")]
    fn invalid_config_panics() {
        let mut cfg = DataGenConfig::paper(10);
        cfg.features = 0;
        DataGenerator::new(cfg);
    }

    #[test]
    fn blocks_returns_count() {
        let mut g = gen(5);
        assert_eq!(g.blocks(7).len(), 7);
    }
}
