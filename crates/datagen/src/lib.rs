//! # pilot-datagen — synthetic IoT data generation
//!
//! The Pilot-Edge paper generates its experimental data with the *Mini-App*
//! data generator of Luckow & Jha's StreamML work (paper ref. \[11\]):
//! messages of 25–10,000 points, each point with 32 features of 8 bytes,
//! giving serialized message sizes of ~7 KB to ~2.6 MB; 512 messages per run.
//! The data is a Gaussian mixture (the k-means workload uses 25 clusters,
//! matching the generator's 25 components) with injected outliers for the
//! outlier-detection models to find.
//!
//! This crate is the Rust equivalent:
//!
//! * [`DataGenConfig`] — message geometry (points × features), cluster count,
//!   outlier fraction, and an RNG seed for reproducibility.
//! * [`DataGenerator`] — streams [`Block`]s: row-major `f64` feature matrices
//!   with ground-truth outlier labels (labels travel out-of-band; they exist
//!   for model-quality tests, not for the pipeline hot path).
//! * [`wire`] — the binary wire format (fixed header + little-endian `f64`
//!   features) whose sizes reproduce the paper's 7 KB–2.6 MB range.
//! * [`RateLimiter`] — paces a producing loop at a target message rate.
//! * [`RatePattern`] / [`PatternedRate`] — time-varying arrival patterns
//!   (seasonal, burst, step) modelling the paper's workload dynamism.

pub mod codec;
pub mod config;
pub mod generator;
pub mod rate;
pub mod wire;
pub mod workload;

pub use codec::{decode_any, decode_any_into, encode_with, encode_with_into, Codec};
pub use config::DataGenConfig;
pub use generator::{Block, DataGenerator};
pub use rate::RateLimiter;
pub use wire::{
    decode, decode_into, encode, encode_into, serialized_size, WireError, HEADER_BYTES,
};
pub use workload::{PatternedRate, RatePattern};

/// The message sizes (points per message) swept by the paper's experiments:
/// "message sizes of 25 to 10,000 points with 32 features each".
pub const PAPER_MESSAGE_SIZES: [usize; 6] = [25, 100, 500, 1000, 5000, 10000];

/// Features per point in the paper's workload.
pub const PAPER_FEATURES: usize = 32;

/// Cluster count used by the paper's generator and its k-means model.
pub const PAPER_CLUSTERS: usize = 25;

/// Messages per experiment run in the paper.
pub const PAPER_MESSAGES_PER_RUN: usize = 512;
