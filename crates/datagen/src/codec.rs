//! Wire codecs: the plain `f64` format plus a lossy quantized format for
//! bandwidth-limited links.
//!
//! The paper repeatedly motivates shrinking WAN transfers: the edge stage
//! serves for "data pre-aggregation, outlier detection, and data
//! compression to ensure that the amount of data movement is minimal"
//! (Section II-D). [`Codec::Q16`] implements the compression half: features
//! are quantised to 16-bit fixed point against per-message min/max bounds —
//! a 4× reduction with relative error bounded by `(max−min)/65535`, ample
//! for outlier detection (anomalies are gross deviations by construction).
//!
//! Both codecs self-describe via magic bytes, so [`decode_any`] dispatches
//! transparently and producers can switch codecs at runtime.

use crate::generator::Block;
use crate::wire::{self, WireError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Available wire codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Codec {
    /// Lossless little-endian `f64` (the paper's 8 B/feature format).
    #[default]
    F64,
    /// Lossy 16-bit fixed-point quantisation (2 B/feature + 16 B bounds).
    Q16,
}

impl Codec {
    /// Serialized size of a `points × features` block under this codec.
    pub const fn serialized_size(self, points: usize, features: usize) -> usize {
        match self {
            Codec::F64 => wire::serialized_size(points, features),
            Codec::Q16 => wire::HEADER_BYTES + 16 + points * features * 2,
        }
    }

    /// Stable label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Codec::F64 => "f64",
            Codec::Q16 => "q16",
        }
    }
}

const MAGIC_Q16: &[u8; 4] = b"PEB2";

/// Encode under the chosen codec.
pub fn encode_with(codec: Codec, block: &Block, produced_at_us: u64) -> Bytes {
    let mut scratch = BytesMut::new();
    encode_with_into(codec, block, produced_at_us, &mut scratch)
}

/// [`encode_with`], but writing through a caller-owned scratch buffer (the
/// producer-side mirror of [`decode_any_into`]): the hot producer loop keeps
/// one scratch alive across messages so payload encoding stops allocating
/// once broker retention recycles earlier payloads.
pub fn encode_with_into(
    codec: Codec,
    block: &Block,
    produced_at_us: u64,
    scratch: &mut BytesMut,
) -> Bytes {
    match codec {
        Codec::F64 => wire::encode_into(block, produced_at_us, scratch),
        Codec::Q16 => encode_q16_into(block, produced_at_us, scratch),
    }
}

/// Encode with 16-bit fixed-point quantisation.
pub fn encode_q16(block: &Block, produced_at_us: u64) -> Bytes {
    let mut scratch = BytesMut::new();
    encode_q16_into(block, produced_at_us, &mut scratch)
}

/// [`encode_q16`] through a caller-owned scratch buffer (see
/// [`wire::encode_into`]).
pub fn encode_q16_into(block: &Block, produced_at_us: u64, scratch: &mut BytesMut) -> Bytes {
    scratch.clear();
    scratch.reserve(Codec::Q16.serialized_size(block.points, block.features));
    let buf = &mut *scratch;
    buf.put_slice(MAGIC_Q16);
    buf.put_u64_le(block.msg_id);
    buf.put_u32_le(block.points as u32);
    buf.put_u32_le(block.features as u32);
    buf.put_u64_le(produced_at_us);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &block.data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        // Empty block: store a degenerate range.
        lo = 0.0;
        hi = 0.0;
    }
    buf.put_f64_le(lo);
    buf.put_f64_le(hi);
    let scale = if hi > lo { 65_535.0 / (hi - lo) } else { 0.0 };
    for &v in &block.data {
        let q = ((v - lo) * scale).round().clamp(0.0, 65_535.0) as u16;
        buf.put_u16_le(q);
    }
    scratch.split().freeze()
}

/// Decode a Q16 buffer.
pub fn decode_q16(buf: &[u8]) -> Result<(Block, u64), WireError> {
    let mut block = Block {
        msg_id: 0,
        points: 0,
        features: 0,
        data: Vec::new(),
        labels: Vec::new(),
    };
    let produced_at_us = decode_q16_into(buf, &mut block)?;
    Ok((block, produced_at_us))
}

/// Decode a Q16 buffer into a caller-owned scratch block, reusing its
/// `data` allocation (see [`wire::decode_into`]). On error the scratch
/// block is left unchanged.
pub fn decode_q16_into(mut buf: &[u8], block: &mut Block) -> Result<u64, WireError> {
    if buf.len() < wire::HEADER_BYTES + 16 {
        return Err(WireError::TooShort { len: buf.len() });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC_Q16 {
        return Err(WireError::BadMagic(magic));
    }
    let msg_id = buf.get_u64_le();
    let points = buf.get_u32_le() as usize;
    let features = buf.get_u32_le() as usize;
    let produced_at_us = buf.get_u64_le();
    let lo = buf.get_f64_le();
    let hi = buf.get_f64_le();
    let n_values = points.checked_mul(features).ok_or(WireError::Overflow)?;
    let expected = n_values.checked_mul(2).ok_or(WireError::Overflow)?;
    if buf.len() < expected {
        return Err(WireError::Truncated {
            expected,
            actual: buf.len(),
        });
    }
    let step = if hi > lo { (hi - lo) / 65_535.0 } else { 0.0 };
    block.data.clear();
    block.data.reserve(n_values);
    for _ in 0..n_values {
        let q = buf.get_u16_le() as f64;
        block.data.push(lo + q * step);
    }
    block.msg_id = msg_id;
    block.points = points;
    block.features = features;
    block.labels.clear();
    Ok(produced_at_us)
}

/// Decode either codec by inspecting the magic bytes.
pub fn decode_any(buf: &[u8]) -> Result<(Block, u64), WireError> {
    if buf.len() >= 4 && &buf[..4] == MAGIC_Q16 {
        decode_q16(buf)
    } else {
        wire::decode(buf)
    }
}

/// [`decode_any`], but into a caller-owned scratch block. The per-message
/// consumer loop uses this so the paper's 2.6 MB messages stop costing a
/// fresh `Vec` each — the scratch reaches steady-state capacity after the
/// first message.
pub fn decode_any_into(buf: &[u8], block: &mut Block) -> Result<u64, WireError> {
    if buf.len() >= 4 && &buf[..4] == MAGIC_Q16 {
        decode_q16_into(buf, block)
    } else {
        wire::decode_into(buf, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DataGenConfig;
    use crate::generator::DataGenerator;

    fn block(points: usize) -> Block {
        DataGenerator::new(DataGenConfig::paper(points)).next_block()
    }

    #[test]
    fn q16_is_four_times_smaller() {
        let f64_size = Codec::F64.serialized_size(1000, 32);
        let q16_size = Codec::Q16.serialized_size(1000, 32);
        assert!(q16_size * 3 < f64_size, "{q16_size} vs {f64_size}");
        let b = block(1000);
        assert_eq!(encode_q16(&b, 0).len(), q16_size);
    }

    #[test]
    fn q16_roundtrip_error_bounded() {
        let b = block(500);
        let encoded = encode_q16(&b, 7);
        let (decoded, ts) = decode_q16(&encoded).unwrap();
        assert_eq!(ts, 7);
        assert_eq!(decoded.points, b.points);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &b.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let tol = (hi - lo) / 65_535.0 * 0.51;
        for (&orig, &dec) in b.data.iter().zip(&decoded.data) {
            assert!((orig - dec).abs() <= tol, "orig={orig} dec={dec} tol={tol}");
        }
    }

    #[test]
    fn decode_any_dispatches_on_magic() {
        let b = block(10);
        let plain = wire::encode(&b, 1);
        let quant = encode_q16(&b, 2);
        let (p, ts_p) = decode_any(&plain).unwrap();
        let (q, ts_q) = decode_any(&quant).unwrap();
        assert_eq!(ts_p, 1);
        assert_eq!(ts_q, 2);
        assert_eq!(p.data, b.data); // lossless
        assert_ne!(q.data, b.data); // lossy, but close (checked above)
        assert_eq!(q.points, b.points);
    }

    #[test]
    fn decode_any_into_matches_owned_decode() {
        let b = block(50);
        let mut scratch = Block {
            msg_id: 0,
            points: 0,
            features: 0,
            data: Vec::new(),
            labels: Vec::new(),
        };
        for encoded in [wire::encode(&b, 3), encode_q16(&b, 4)] {
            let ts = decode_any_into(&encoded, &mut scratch).unwrap();
            let (expect, expect_ts) = decode_any(&encoded).unwrap();
            assert_eq!(ts, expect_ts);
            assert_eq!(scratch.msg_id, expect.msg_id);
            assert_eq!(scratch.points, expect.points);
            assert_eq!(scratch.features, expect.features);
            assert_eq!(scratch.data, expect.data);
        }
        // The second decode reused the f64 buffer's capacity.
        assert!(scratch.data.capacity() >= 50 * 32);
    }

    #[test]
    fn encode_with_into_matches_encode_with() {
        let b = block(50);
        let mut scratch = BytesMut::new();
        for codec in [Codec::F64, Codec::Q16] {
            let via_scratch = encode_with_into(codec, &b, 9, &mut scratch);
            let owned = encode_with(codec, &b, 9);
            assert_eq!(via_scratch, owned);
            // The scratch stays reusable for the next message.
            assert_eq!(encode_with_into(codec, &b, 9, &mut scratch), owned);
        }
    }

    #[test]
    fn encode_into_reclaims_scratch_after_payload_drop() {
        // Once the split-off payload is dropped (broker retention trimming
        // the record), the next encode reuses the backing allocation
        // instead of allocating afresh.
        let b = block(100);
        let mut scratch = BytesMut::new();
        let first = wire::encode_into(&b, 1, &mut scratch);
        let first_ptr = first.as_ptr();
        drop(first);
        let second = wire::encode_into(&b, 2, &mut scratch);
        assert_eq!(second.as_ptr(), first_ptr, "allocation was not reclaimed");
    }

    #[test]
    fn constant_block_roundtrips_exactly() {
        let b = Block {
            msg_id: 1,
            points: 4,
            features: 2,
            data: vec![3.5; 8],
            labels: vec![false; 4],
        };
        let (decoded, _) = decode_q16(&encode_q16(&b, 0)).unwrap();
        assert_eq!(decoded.data, vec![3.5; 8]);
    }

    #[test]
    fn q16_truncation_detected() {
        let b = block(10);
        let encoded = encode_q16(&b, 0);
        let cut = &encoded[..encoded.len() - 3];
        assert!(matches!(decode_q16(cut), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn q16_rejects_f64_magic() {
        let b = block(5);
        let plain = wire::encode(&b, 0);
        assert!(matches!(decode_q16(&plain), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn codec_labels() {
        assert_eq!(Codec::F64.label(), "f64");
        assert_eq!(Codec::Q16.label(), "q16");
        assert_eq!(Codec::default(), Codec::F64);
    }

    #[test]
    fn outlier_ranking_survives_quantisation() {
        // Quantisation must not scramble which points look anomalous:
        // the most extreme point stays most extreme after a roundtrip.
        let mut b = block(200);
        // Plant an extreme point.
        for v in &mut b.data[0..32] {
            *v = 29.0;
        }
        let (decoded, _) = decode_q16(&encode_q16(&b, 0)).unwrap();
        let norm = |row: &[f64]| row.iter().map(|v| v * v).sum::<f64>();
        let max_orig = (0..200)
            .max_by(|&a, &b2| {
                norm(&b.data[a * 32..(a + 1) * 32])
                    .partial_cmp(&norm(&b.data[b2 * 32..(b2 + 1) * 32]))
                    .unwrap()
            })
            .unwrap();
        let max_dec = (0..200)
            .max_by(|&a, &b2| {
                norm(&decoded.data[a * 32..(a + 1) * 32])
                    .partial_cmp(&norm(&decoded.data[b2 * 32..(b2 + 1) * 32]))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(max_orig, 0);
        assert_eq!(max_dec, 0);
    }
}
