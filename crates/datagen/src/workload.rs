//! Arrival-rate patterns: the dynamism the paper designs for.
//!
//! "Pilot-Edge ... enables the effective handling of heterogeneous and
//! dynamic workloads arising in IoT environments (e.g., seasonal peak
//! loads, failures and other external events)" (Section I) and applications
//! must "respond to dynamism, e.g., external events, load peaks" (ibid.).
//! A [`RatePattern`] describes how a device's message rate evolves over the
//! run; [`PatternedRate`] turns it into a pacing loop compatible with
//! [`crate::RateLimiter`]'s usage.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How a device's message rate (messages/second) evolves over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatePattern {
    /// Fixed rate forever.
    Constant { rate: f64 },
    /// Seasonal/diurnal load: a sinusoid between `base` and `peak` with
    /// the given period. Models the paper's "seasonal peak loads" at
    /// laptop-scale periods.
    Seasonal {
        base: f64,
        peak: f64,
        period: Duration,
    },
    /// A burst: `base` rate, jumping to `burst` within `[start, start+len)`.
    /// Models a discrete external event (e.g. "the discovery of a
    /// significant data pattern").
    Burst {
        base: f64,
        burst: f64,
        start: Duration,
        len: Duration,
    },
    /// A step change at `at`: `before` → `after` (e.g. a sensor firmware
    /// update doubling the sampling rate).
    Step {
        before: f64,
        after: f64,
        at: Duration,
    },
}

impl RatePattern {
    /// The instantaneous rate at `elapsed` since the stream started.
    pub fn rate_at(&self, elapsed: Duration) -> f64 {
        match *self {
            RatePattern::Constant { rate } => rate,
            RatePattern::Seasonal { base, peak, period } => {
                let phase = if period.is_zero() {
                    0.0
                } else {
                    elapsed.as_secs_f64() / period.as_secs_f64()
                };
                let mid = (base + peak) / 2.0;
                let amp = (peak - base) / 2.0;
                mid + amp * (std::f64::consts::TAU * phase).sin()
            }
            RatePattern::Burst {
                base,
                burst,
                start,
                len,
            } => {
                if elapsed >= start && elapsed < start + len {
                    burst
                } else {
                    base
                }
            }
            RatePattern::Step { before, after, at } => {
                if elapsed < at {
                    before
                } else {
                    after
                }
            }
        }
    }

    /// Peak rate over the pattern's lifetime (for capacity planning).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            RatePattern::Constant { rate } => rate,
            RatePattern::Seasonal { base, peak, .. } => base.max(peak),
            RatePattern::Burst { base, burst, .. } => base.max(burst),
            RatePattern::Step { before, after, .. } => before.max(after),
        }
    }
}

/// Paces a producing loop according to a [`RatePattern`], integrating the
/// pattern so the *cumulative* message count tracks `∫rate·dt` (a burst
/// therefore emits its full volume even if individual iterations jitter).
#[derive(Debug)]
pub struct PatternedRate {
    pattern: RatePattern,
    start: Instant,
    emitted: u64,
}

impl PatternedRate {
    /// Start pacing now.
    pub fn new(pattern: RatePattern) -> Self {
        Self {
            pattern,
            start: Instant::now(),
            emitted: 0,
        }
    }

    /// Cumulative messages the pattern calls for by `elapsed`, approximated
    /// by 10 ms trapezoidal integration.
    fn due_by(&self, elapsed: Duration) -> f64 {
        const STEP: f64 = 0.01;
        let total = elapsed.as_secs_f64();
        let mut t = 0.0;
        let mut acc = 0.0;
        while t < total {
            let dt = STEP.min(total - t);
            let r0 = self.pattern.rate_at(Duration::from_secs_f64(t));
            let r1 = self.pattern.rate_at(Duration::from_secs_f64(t + dt));
            acc += (r0 + r1) / 2.0 * dt;
            t += dt;
        }
        acc
    }

    /// Block until the next message is due, then account for it.
    pub fn pace(&mut self) {
        loop {
            let due = self.due_by(self.start.elapsed());
            if due >= (self.emitted + 1) as f64 {
                self.emitted += 1;
                return;
            }
            // Sleep proportionally to the current rate (bounded for
            // responsiveness to bursts).
            let rate = self.pattern.rate_at(self.start.elapsed()).max(1e-3);
            let sleep = Duration::from_secs_f64((1.0 / rate).min(0.02));
            std::thread::sleep(sleep);
        }
    }

    /// Messages emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The pattern being followed.
    pub fn pattern(&self) -> &RatePattern {
        &self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_flat() {
        let p = RatePattern::Constant { rate: 50.0 };
        assert_eq!(p.rate_at(Duration::ZERO), 50.0);
        assert_eq!(p.rate_at(Duration::from_secs(100)), 50.0);
        assert_eq!(p.peak_rate(), 50.0);
    }

    #[test]
    fn seasonal_oscillates_between_base_and_peak() {
        let p = RatePattern::Seasonal {
            base: 10.0,
            peak: 110.0,
            period: Duration::from_secs(4),
        };
        // Quarter period: sin = 1 → peak.
        assert!((p.rate_at(Duration::from_secs(1)) - 110.0).abs() < 1e-9);
        // Three-quarter period: sin = −1 → base.
        assert!((p.rate_at(Duration::from_secs(3)) - 10.0).abs() < 1e-9);
        // Start: midpoint.
        assert!((p.rate_at(Duration::ZERO) - 60.0).abs() < 1e-9);
        assert_eq!(p.peak_rate(), 110.0);
    }

    #[test]
    fn burst_window() {
        let p = RatePattern::Burst {
            base: 5.0,
            burst: 500.0,
            start: Duration::from_secs(1),
            len: Duration::from_secs(2),
        };
        assert_eq!(p.rate_at(Duration::from_millis(500)), 5.0);
        assert_eq!(p.rate_at(Duration::from_millis(1500)), 500.0);
        assert_eq!(p.rate_at(Duration::from_millis(3500)), 5.0);
        assert_eq!(p.peak_rate(), 500.0);
    }

    #[test]
    fn step_change() {
        let p = RatePattern::Step {
            before: 10.0,
            after: 40.0,
            at: Duration::from_secs(2),
        };
        assert_eq!(p.rate_at(Duration::from_secs(1)), 10.0);
        assert_eq!(p.rate_at(Duration::from_secs(2)), 40.0);
    }

    #[test]
    fn patterned_pacing_tracks_integral() {
        // 200 msg/s constant for ~150 ms → ~30 messages.
        let mut pr = PatternedRate::new(RatePattern::Constant { rate: 200.0 });
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(150) {
            pr.pace();
        }
        let n = pr.emitted();
        assert!((25..=40).contains(&(n as usize)), "emitted {n}");
    }

    #[test]
    fn burst_emits_full_volume() {
        // base 20/s with a 100 ms burst at 400/s starting at 50 ms:
        // by 200 ms the integral is 20*0.2 + 380*0.1 ≈ 42.
        let mut pr = PatternedRate::new(RatePattern::Burst {
            base: 20.0,
            burst: 400.0,
            start: Duration::from_millis(50),
            len: Duration::from_millis(100),
        });
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(220) {
            pr.pace();
        }
        let n = pr.emitted();
        assert!((30..=55).contains(&(n as usize)), "emitted {n}");
    }
}
