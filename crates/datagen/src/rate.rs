//! Rate limiting for producing loops.
//!
//! The paper's edge data sources emit messages at a configurable rate; the
//! baseline experiments run "as fast as the pipeline drains" while dynamism
//! experiments use seasonal load patterns. [`RateLimiter`] supports both: a
//! target rate (messages/second) paced against wall-clock time, or
//! unlimited.

use std::time::{Duration, Instant};

/// Paces a loop at a target rate, absorbing jitter by tracking the ideal
/// schedule rather than sleeping a fixed interval (so a slow iteration is
/// followed by faster ones until the schedule catches up).
#[derive(Debug)]
pub struct RateLimiter {
    interval: Option<Duration>,
    start: Instant,
    emitted: u64,
}

impl RateLimiter {
    /// A limiter emitting `rate_per_sec` messages per second. A rate of 0 or
    /// a non-finite rate means unlimited.
    pub fn new(rate_per_sec: f64) -> Self {
        let interval = if rate_per_sec.is_finite() && rate_per_sec > 0.0 {
            Some(Duration::from_secs_f64(1.0 / rate_per_sec))
        } else {
            None
        };
        Self {
            interval,
            start: Instant::now(),
            emitted: 0,
        }
    }

    /// An unlimited limiter ([`RateLimiter::pace`] never sleeps).
    pub fn unlimited() -> Self {
        Self::new(0.0)
    }

    /// Block until the next emission slot, then account for it.
    pub fn pace(&mut self) {
        if let Some(interval) = self.interval {
            let due = self.start + interval * self.emitted as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        self.emitted += 1;
    }

    /// Messages emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Observed rate since construction (messages/second).
    pub fn observed_rate(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.emitted as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_sleeps() {
        let mut rl = RateLimiter::unlimited();
        let start = Instant::now();
        for _ in 0..10_000 {
            rl.pace();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(rl.emitted(), 10_000);
    }

    #[test]
    fn paces_to_target_rate() {
        let mut rl = RateLimiter::new(200.0); // 5 ms interval
        let start = Instant::now();
        for _ in 0..20 {
            rl.pace();
        }
        let secs = start.elapsed().as_secs_f64();
        // 20 messages at 200/s should take ~95 ms (first is immediate).
        assert!(secs >= 0.09, "secs={secs}");
        assert!(secs < 0.5, "secs={secs}");
    }

    #[test]
    fn catches_up_after_slow_iteration() {
        let mut rl = RateLimiter::new(100.0); // 10 ms interval
        rl.pace();
        std::thread::sleep(Duration::from_millis(50)); // fall behind
        let t = Instant::now();
        for _ in 0..4 {
            rl.pace(); // all 4 are already due → no sleeping
        }
        assert!(t.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn zero_and_nan_rates_are_unlimited() {
        assert!(RateLimiter::new(0.0).interval.is_none());
        assert!(RateLimiter::new(f64::NAN).interval.is_none());
        assert!(RateLimiter::new(f64::INFINITY).interval.is_none());
    }
}
