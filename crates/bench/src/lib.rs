//! # pilot-bench — the experiment harness
//!
//! One function, [`run_cell`], runs a full Pilot-Edge pipeline for one cell
//! of the paper's evaluation grid — (message size × partitions × model ×
//! geography × deployment) — and returns its [`RunSummary`]. The harness
//! binaries sweep the grids of Fig. 2 and Fig. 3 and print CSV; the
//! Criterion benches reuse the same cells at reduced message counts.
//!
//! Scaling note: the paper sends 512 messages per run on real
//! infrastructure; the simulated runs default to fewer messages
//! (64 local / 16 transatlantic) because the WAN link model *actually
//! sleeps* for transfer time. Override with `PILOT_BENCH_MESSAGES`.
//! Throughput and latency are rates/quantiles, so the reduced count changes
//! noise, not shape.

use pilot_core::{Pilot, PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_edge::processors::{
    datagen_produce_factory, downsample_edge_factory, paper_model_factory,
};
use pilot_edge::{DeploymentMode, EdgeToCloudPipeline, RunSummary, RunningPipeline};
use pilot_ml::ModelKind;
use pilot_netsim::profiles;
use std::time::Duration;

/// Where the edge data source sits relative to broker + cloud processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geo {
    /// Everything on the LRZ cloud (the paper's baseline setup):
    /// intra-cloud links everywhere.
    Local,
    /// Data source on Jetstream (US), broker + processing on LRZ (EU):
    /// the edge→broker hop crosses the Atlantic.
    Transatlantic,
}

impl Geo {
    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            Geo::Local => "local",
            Geo::Transatlantic => "transatlantic",
        }
    }
}

/// One experiment cell.
#[derive(Debug, Clone)]
pub struct CellOpts {
    /// Points per message (the paper sweeps 25–10,000).
    pub points: usize,
    /// Edge devices = partitions.
    pub devices: usize,
    /// Consumer tasks (None = one per partition, the paper's ratio).
    pub processors: Option<usize>,
    /// Which model runs in `process_cloud`.
    pub model: ModelKind,
    /// Messages each device sends.
    pub messages_per_device: usize,
    /// Link layout.
    pub geo: Geo,
    /// Deployment modality.
    pub mode: DeploymentMode,
    /// Hybrid-mode downsampling factor for `process_edge`.
    pub downsample: usize,
    /// RNG seed for the generator and links.
    pub seed: u64,
    /// Producer batch threshold in bytes (0 = serial per-message transport).
    pub batch_max_bytes: usize,
    /// Producer batch linger window.
    pub linger: Duration,
    /// Consumer prefetch queue depth (0 = no prefetch thread).
    pub prefetch_depth: usize,
    /// Multiplex all devices onto this many producer engine workers
    /// (None = one producer task per device, the seed behaviour). The
    /// edge pilot is provisioned with this many cores instead of one per
    /// device — how 1024-device cells run on small hosts.
    pub producer_threads: Option<usize>,
    /// Drive all consumer members from this many reactor threads
    /// (None = one thread-backed cloud task per member, the seed
    /// behaviour). With the reactor on, the cloud pilot is provisioned
    /// for the reactor pool rather than one core per member — how
    /// 64k-member cells (`processors = devices`, the paper's 1:1 ratio)
    /// run on small hosts. See DESIGN.md §12.
    pub reactor_threads: Option<usize>,
    /// Width of the intra-task compute pool shared by the cloud
    /// processors (None = one lane per cloud core, the default sizing).
    pub compute_threads: Option<usize>,
    /// Telemetry sampling interval in milliseconds (None = telemetry
    /// plane off, the default — zero instrumentation overhead).
    pub telemetry_sample_ms: Option<u64>,
    /// Root directory for the durable broker log (None = the seed's
    /// memory-only log, the default). With a directory set the topic
    /// persists through the storage engine under the group-commit fsync
    /// defaults (DESIGN.md §13).
    pub log_dir: Option<std::path::PathBuf>,
    /// Observability gateway config (None = no gateway, the default).
    /// See DESIGN.md §16; `gateway_load` drives this.
    pub gateway: Option<pilot_gateway::GatewayConfig>,
}

impl Default for CellOpts {
    fn default() -> Self {
        Self {
            points: 1000,
            devices: 4,
            processors: None,
            model: ModelKind::Baseline,
            messages_per_device: default_messages(Geo::Local),
            geo: Geo::Local,
            mode: DeploymentMode::CloudCentric,
            downsample: 4,
            seed: 42,
            batch_max_bytes: 0,
            linger: Duration::ZERO,
            prefetch_depth: 0,
            producer_threads: None,
            reactor_threads: None,
            compute_threads: None,
            telemetry_sample_ms: None,
            log_dir: None,
            gateway: None,
        }
    }
}

impl CellOpts {
    /// Turn on the pipelined transport: batch up to `batch_max_bytes`
    /// with a 2 ms linger on the producer side and prefetch two batches
    /// ahead on the consumer side.
    pub fn pipelined(mut self, batch_max_bytes: usize) -> Self {
        self.batch_max_bytes = batch_max_bytes;
        self.linger = Duration::from_millis(2);
        self.prefetch_depth = 2;
        self
    }
}

/// Default messages per device, honouring `PILOT_BENCH_MESSAGES`.
pub fn default_messages(geo: Geo) -> usize {
    if let Ok(v) = std::env::var("PILOT_BENCH_MESSAGES") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    match geo {
        Geo::Local => 64,
        Geo::Transatlantic => 16,
    }
}

/// Provision the pilots for a cell: an edge pilot with one core per
/// producer task (per device, or `producer_threads` when the cell
/// multiplexes), and the paper's "large" cloud envelope (10 cores / 44 GB)
/// or bigger if the cell needs more processors.
pub fn provision(svc: &PilotComputeService, opts: &CellOpts) -> (Pilot, Pilot) {
    let procs = opts.processors.unwrap_or(opts.devices);
    // With the reactor on, the cloud pilot hosts `reactor_threads`
    // polling threads — not one task per member — so its core count
    // follows the pool, however many members the cell runs.
    let cloud_tasks = opts.reactor_threads.unwrap_or(procs);
    let edge_cores = opts.producer_threads.unwrap_or(opts.devices);
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(edge_cores, 4.0 * edge_cores as f64).with_site(
                if opts.geo == Geo::Transatlantic {
                    "jetstream"
                } else {
                    "lrz"
                },
            ),
            Duration::from_secs(10),
        )
        .expect("edge pilot");
    let cloud = svc
        .submit_and_wait(
            PilotDescription::local(cloud_tasks.max(10), 44.0).with_site("lrz"),
            Duration::from_secs(10),
        )
        .expect("cloud pilot");
    (edge, cloud)
}

/// A cell whose pipeline has been started but not yet awaited — what the
/// live tools (`pilot_top`) observe mid-run. Holds the pilot service so
/// the pilots outlive the run.
pub struct StartedCell {
    _svc: PilotComputeService,
    /// The live pipeline handle: poll [`RunningPipeline::telemetry`] /
    /// [`RunningPipeline::report`] mid-run, then
    /// [`StartedCell::wait`] for the summary.
    pub pipeline: RunningPipeline,
}

impl StartedCell {
    /// Wait for the run to finish and return its summary.
    pub fn wait(self, timeout: Duration) -> RunSummary {
        self.pipeline.wait(timeout).expect("pipeline run")
    }
}

/// Provision and start one cell's pipeline without waiting for it.
pub fn start_cell(opts: &CellOpts) -> StartedCell {
    let svc = PilotComputeService::new();
    let (edge, cloud) = provision(&svc, opts);
    let (link_eb, link_bc) = match opts.geo {
        Geo::Local => (
            profiles::cloud_local("edge->broker", opts.seed).build(),
            profiles::cloud_local("broker->cloud", opts.seed + 1).build(),
        ),
        Geo::Transatlantic => (
            profiles::transatlantic("edge->broker(wan)", opts.seed).build(),
            profiles::cloud_local("broker->cloud", opts.seed + 1).build(),
        ),
    };
    let mut builder = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            DataGenConfig::paper(opts.points).with_seed(opts.seed),
            opts.messages_per_device,
        ))
        .process_cloud_function(paper_model_factory(opts.model, 32))
        .devices(opts.devices)
        .processors(opts.processors.unwrap_or(opts.devices))
        .mode(opts.mode)
        .link_edge_to_broker(link_eb)
        .link_broker_to_cloud(link_bc)
        .batch_max_bytes(opts.batch_max_bytes)
        .linger(opts.linger)
        .prefetch_depth(opts.prefetch_depth);
    if let Some(n) = opts.producer_threads {
        builder = builder.producer_threads(n);
    }
    if let Some(n) = opts.reactor_threads {
        builder = builder.reactor_threads(n);
    }
    if let Some(n) = opts.compute_threads {
        builder = builder.compute_threads(n);
    }
    if let Some(ms) = opts.telemetry_sample_ms {
        builder = builder.telemetry_sample_ms(ms);
    }
    if let Some(dir) = &opts.log_dir {
        builder = builder.log_dir(dir.clone());
    }
    if let Some(gw) = &opts.gateway {
        builder = builder.gateway(gw.clone());
    }
    if opts.mode.edge_processing() {
        builder = builder.process_edge_function(downsample_edge_factory(opts.downsample));
    }
    StartedCell {
        _svc: svc,
        pipeline: builder.start().expect("pipeline start"),
    }
}

/// Run one cell end-to-end and return its summary.
pub fn run_cell(opts: &CellOpts) -> RunSummary {
    start_cell(opts).wait(Duration::from_secs(3600))
}

/// The paper's message-size sweep, honouring `PILOT_BENCH_QUICK` (which
/// trims it to the endpoints for CI).
pub fn message_sizes() -> Vec<usize> {
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        vec![25, 1000]
    } else {
        pilot_datagen::PAPER_MESSAGE_SIZES.to_vec()
    }
}

/// CSV header for experiment rows.
pub fn csv_header() -> String {
    format!(
        "experiment,model,geo,partitions,points,msg_kb,{}",
        RunSummary::csv_header()
    )
}

/// One experiment CSV row.
pub fn csv_row(experiment: &str, opts: &CellOpts, s: &RunSummary) -> String {
    let msg_kb = pilot_datagen::serialized_size(opts.points, 32) as f64 / 1024.0;
    format!(
        "{},{},{},{},{},{:.1},{}",
        experiment,
        opts.model.label(),
        opts.geo.label(),
        opts.devices,
        opts.points,
        msg_kb,
        s.to_csv_row()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cell_runs() {
        let opts = CellOpts {
            points: 25,
            devices: 1,
            messages_per_device: 3,
            ..CellOpts::default()
        };
        let s = run_cell(&opts);
        assert_eq!(s.messages, 3);
        assert_eq!(s.errors, 0);
    }

    #[test]
    fn csv_row_matches_header() {
        let opts = CellOpts {
            points: 25,
            devices: 1,
            messages_per_device: 2,
            ..CellOpts::default()
        };
        let s = run_cell(&opts);
        let header = csv_header();
        let row = csv_row("fig2", &opts, &s);
        assert_eq!(header.split(',').count(), row.split(',').count());
    }

    #[test]
    fn geo_labels() {
        assert_eq!(Geo::Local.label(), "local");
        assert_eq!(Geo::Transatlantic.label(), "transatlantic");
    }
}
