//! Serial vs pipelined transport over the transatlantic profile
//! (DESIGN.md §8): the experiment behind `results_pipeline.csv`.
//!
//! For each paper message size the same cell runs twice — once with the
//! per-message blocking transport (the seed behaviour) and once with
//! producer batching + consumer prefetch — and prints both rows plus the
//! throughput ratio. Where the win comes from, and where it must stop:
//!
//! * **Small messages** (25–1,000 points): transit is microseconds but the
//!   serial producer pays ~75 ms of propagation per message, so the link
//!   idles almost all the time. Batching pays propagation once per batch
//!   and prefetch overlaps the broker→cloud hop with scoring — the
//!   pipelined variant wins by an order of magnitude.
//! * **Large messages** (10,000 points = 2.56 MB): at 60–100 Mbit/s the
//!   transit alone is ~256 ms/message, so the serial run already saturates
//!   the link's bandwidth (`results_fig3.csv` shows it within a few percent
//!   of the ~3.9 msg/s ceiling). No transport reordering can beat physics;
//!   the pipelined run merely holds that ceiling.
//!
//! Usage: `cargo run -p pilot-bench --release --bin pipeline_wan`
//! (honours `PILOT_BENCH_QUICK` / `PILOT_BENCH_MESSAGES`).

use pilot_bench::{csv_header, csv_row, default_messages, message_sizes, run_cell, CellOpts, Geo};
use pilot_ml::ModelKind;

fn main() {
    println!("# pipeline_wan — serial vs pipelined transport, transatlantic profile");
    println!("{}", csv_header());
    let mut ratios = Vec::new();
    for points in message_sizes() {
        let serial = CellOpts {
            points,
            devices: 4,
            processors: Some(2),
            model: ModelKind::Baseline,
            messages_per_device: default_messages(Geo::Transatlantic),
            geo: Geo::Transatlantic,
            ..CellOpts::default()
        };
        let pipelined = serial.clone().pipelined(256 * 1024);
        let s = run_cell(&serial);
        println!("{}", csv_row("pipeline_wan/serial", &serial, &s));
        let p = run_cell(&pipelined);
        println!("{}", csv_row("pipeline_wan/pipelined", &pipelined, &p));
        let ratio = if s.throughput_msgs > 0.0 {
            p.throughput_msgs / s.throughput_msgs
        } else {
            0.0
        };
        eprintln!("  {points} points: {ratio:.2}x throughput");
        ratios.push((points, ratio));
    }
    if let Some((points, best)) = ratios.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1)) {
        eprintln!("best speedup: {best:.2}x at {points} points/message");
    }
}
