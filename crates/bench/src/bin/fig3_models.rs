//! Regenerates **Fig. 3** of the paper: throughput and latency by model
//! type (baseline, k-means, isolation forest, auto-encoder), message size,
//! and geographic distribution — plus the Conclusion's headline scalars:
//!
//! * **C-1**: "k-means can achieve five times the throughput of isolation
//!   forests for large message sizes (10,000 points)";
//! * **C-2**: "auto-encoders proved unsuitable for the investigated
//!   resource configurations" (slowest at every size).
//!
//! Paper setup (Section III.2): cloud-centric deployment, processing on the
//! LRZ "large" VM (10 cores / 44 GB), four partitions for the geographic
//! experiment, model updated per message via the parameter service.
//!
//! Usage: `cargo run -p pilot-bench --release --bin fig3_models`
//! Env: `PILOT_BENCH_MESSAGES=<n>`, `PILOT_BENCH_QUICK=1`.

use pilot_bench::{csv_header, csv_row, default_messages, message_sizes, run_cell, CellOpts, Geo};
use pilot_ml::ModelKind;
use std::collections::HashMap;

fn main() {
    let sizes = message_sizes();
    // The geographic sweep is WAN-bound and slow; restrict it to the
    // models × sizes the paper plots, at endpoints unless full.
    let geo_sizes: Vec<usize> = if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        vec![*sizes.last().unwrap()]
    } else {
        vec![25, 1000, 10000]
    };

    println!("# Fig. 3 — throughput/latency by model, message size, geography");
    println!("{}", csv_header());
    let mut local_tp: HashMap<(ModelKind, usize), f64> = HashMap::new();

    for &model in &ModelKind::all() {
        for &points in &sizes {
            let opts = CellOpts {
                points,
                devices: 4,
                model,
                messages_per_device: default_messages(Geo::Local),
                ..CellOpts::default()
            };
            let summary = run_cell(&opts);
            local_tp.insert((model, points), summary.throughput_mb);
            println!("{}", csv_row("fig3-local", &opts, &summary));
        }
    }

    for &model in &ModelKind::all() {
        for &points in &geo_sizes {
            let opts = CellOpts {
                points,
                devices: 4,
                model,
                geo: Geo::Transatlantic,
                messages_per_device: default_messages(Geo::Transatlantic),
                ..CellOpts::default()
            };
            let summary = run_cell(&opts);
            println!("{}", csv_row("fig3-geo", &opts, &summary));
        }
    }

    // --- Conclusion scalars ---------------------------------------------
    let largest = *sizes.last().unwrap();
    let km = local_tp[&(ModelKind::KMeans, largest)];
    let iso = local_tp[&(ModelKind::IsolationForest, largest)];
    println!("\n# C-1: k-means vs isolation-forest throughput at {largest} points:");
    println!(
        "#   kmeans={km:.3} MB/s, isoforest={iso:.3} MB/s, ratio={:.2}x (paper: ~5x)",
        km / iso
    );
    println!("# C-2: throughput ranking at {largest} points (paper: auto-encoder last):");
    let mut ranked: Vec<(ModelKind, f64)> = ModelKind::all()
        .iter()
        .map(|&m| (m, local_tp[&(m, largest)]))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (m, tp) in &ranked {
        println!("#   {:<12} {tp:.3} MB/s", m.label());
    }
    let ae_last = ranked.last().map(|(m, _)| *m) == Some(ModelKind::AutoEncoder);
    println!("#   auto-encoder ranks last: {ae_last}");
}
