//! Dynamism experiment (EXPERIMENTS.md DY-1) — the paper's Section II-D
//! adaptation story as a measurable A/B run.
//!
//! One disturbance, two pipelines: at `shift` the per-device arrival rate
//! steps up 4× **and** the edge→broker link degrades (a cross-traffic
//! thread reserves ~half its capacity in bursty slabs). The controller-off
//! run rides it out on static knobs; the controller-on run closes the
//! telemetry→knob loop ([`ControllerConfig`]). Both runs sample consumer
//! lag on a 10 ms grid; the headline metric is the **time to recovery**
//! (TTR): from the shift until lag first returns to the bound and stays
//! there for a settle window.
//!
//! Output: `results_dynamism.csv` (one row per mode) plus the
//! controller-on action journal on stdout.
//!
//! Usage: `cargo run -p pilot-bench --release --bin dynamism`
//! (`PILOT_BENCH_QUICK=1` shrinks the workload for CI and skips the CSV
//! rewrite; the smoke assertions — controller-on recovers with a non-empty
//! journal, controller-off journals nothing — run in both modes.)

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{DataGenConfig, DataGenerator, PatternedRate, RatePattern};
use pilot_edge::faas::ProcessOutcome;
use pilot_edge::{
    Context, ControlBounds, ControlEvent, ControllerConfig, EdgeToCloudPipeline, ProduceFactory,
    RunSummary,
};
use pilot_netsim::profiles;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEVICES: usize = 2;
/// Lag bound shared by the TTR measurement and the controller config.
const LAG_BOUND: u64 = 12;
/// Lag must stay at/below the bound this long to count as recovered.
const SETTLE: Duration = Duration::from_millis(400);
/// Cross-traffic slab reserved on the edge→broker link every 20 ms —
/// ~10 ms of transit per slab on the cloud-local profile, i.e. roughly
/// half the link.
const CROSS_SLAB_BYTES: u64 = 8 * 1024 * 1024;

struct Params {
    messages: usize,
    points: usize,
    base_rate: f64,
    shift: Duration,
    process_ms: u64,
}

fn params(quick: bool) -> Params {
    if quick {
        Params {
            messages: 60,
            points: 200,
            base_rate: 15.0,
            shift: Duration::from_millis(400),
            process_ms: 12,
        }
    } else {
        Params {
            messages: 300,
            points: 600,
            base_rate: 15.0,
            shift: Duration::from_millis(1_500),
            process_ms: 12,
        }
    }
}

/// A produce function paced by a step pattern: `base_rate` msg/s/device,
/// jumping 4× at `shift` (a sensor fleet reacting to an external event).
fn shifted_produce(p: &Params) -> ProduceFactory {
    let (messages, points, base, shift) = (p.messages, p.points, p.base_rate, p.shift);
    Arc::new(move |_ctx: &Context, device: usize| {
        let mut generator =
            DataGenerator::new(DataGenConfig::paper(points).with_seed(7 + device as u64));
        let mut pacer = PatternedRate::new(RatePattern::Step {
            before: base,
            after: base * 4.0,
            at: shift,
        });
        let mut remaining = messages;
        Box::new(move |_ctx: &Context| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            pacer.pace();
            Some(generator.next_block())
        })
    })
}

struct Outcome {
    summary: RunSummary,
    peak_lag: u64,
    /// `None` = lag never returned to the bound inside the horizon.
    ttr: Option<Duration>,
    events: Vec<ControlEvent>,
}

/// TTR from a lag timeline: first post-shift instant at/below the bound
/// from which lag stays there for the settle window. `Duration::ZERO` when
/// the disturbance never pushed lag past the bound.
fn time_to_recover(samples: &[(Duration, u64)], shift: Duration) -> (u64, Option<Duration>) {
    let peak = samples
        .iter()
        .filter(|(t, _)| *t >= shift)
        .map(|&(_, l)| l)
        .max()
        .unwrap_or(0);
    let Some(first_over) = samples
        .iter()
        .position(|&(t, l)| t >= shift && l > LAG_BOUND)
    else {
        return (peak, Some(Duration::ZERO));
    };
    for i in first_over..samples.len() {
        let (t0, lag) = samples[i];
        if lag > LAG_BOUND {
            continue;
        }
        let settled = samples[i..]
            .iter()
            .take_while(|&&(t, _)| t < t0 + SETTLE)
            .all(|&(_, l)| l <= LAG_BOUND);
        if settled {
            return (peak, Some(t0 - shift));
        }
    }
    (peak, None)
}

fn run_mode(p: &Params, controller_on: bool) -> Outcome {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(DEVICES, 8.0),
            Duration::from_secs(10),
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(4, 44.0), Duration::from_secs(10))
        .unwrap();

    // Keep a clone of the edge→broker link: `Link` handles share state, so
    // the cross-traffic thread degrades the same simulated pipe the
    // producers send over.
    let wan = pilot_netsim::Link::new(profiles::cloud_local("edge->broker", 7));
    let wan_cross = wan.clone();

    let process_ms = p.process_ms;
    let slow: pilot_edge::CloudFactory = Arc::new(move |_ctx| {
        Box::new(move |_ctx: &Context, _block: &pilot_datagen::Block| {
            std::thread::sleep(Duration::from_millis(process_ms));
            Ok(ProcessOutcome::default())
        })
    });

    let mut builder = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(shifted_produce(p))
        .process_cloud_function(slow)
        .devices(DEVICES)
        .processors(1)
        .link_edge_to_broker(wan)
        .link_broker_to_cloud(pilot_netsim::Link::new(profiles::cloud_local(
            "broker->cloud",
            8,
        )));
    if controller_on {
        builder = builder
            .telemetry_sample_ms(10)
            .controller(ControllerConfig {
                tick: Duration::from_millis(25),
                hysteresis: 2,
                cooldown: Duration::from_millis(100),
                lag_bound: LAG_BOUND,
                lag_low: 2,
                bounds: ControlBounds {
                    max_processors: 4,
                    max_compute: 4,
                    ..ControlBounds::default()
                },
                use_attribution: true,
                ..ControllerConfig::default()
            });
    }

    let started = Instant::now();
    let running = builder.start().unwrap();

    // WAN degradation: from the shift until the run ends, burn ~half the
    // edge→broker link with cross-traffic reservations.
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let shift = p.shift;
    let cross = std::thread::spawn(move || {
        let t0 = Instant::now();
        while t0.elapsed() < shift {
            if stop2.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        while !stop2.load(Ordering::Relaxed) {
            let _ = wan_cross.reserve(CROSS_SLAB_BYTES);
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    // Sample lag on a 10 ms grid until the backlog is demonstrably gone
    // (600 ms of zero lag after the shift) or the horizon expires.
    let mut samples: Vec<(Duration, u64)> = Vec::new();
    let horizon = Duration::from_secs(60);
    let mut zero_since: Option<Instant> = None;
    loop {
        let now = Instant::now();
        let t = now.duration_since(started);
        if t > horizon {
            break;
        }
        let lag = running.lag();
        samples.push((t, lag));
        if t > shift {
            if lag == 0 {
                let since = *zero_since.get_or_insert(now);
                if now.duration_since(since) > Duration::from_millis(600) {
                    break;
                }
            } else {
                zero_since = None;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    stop.store(true, Ordering::Relaxed);
    let events = running.control_events();
    let summary = running.wait(Duration::from_secs(120)).unwrap();
    cross.join().unwrap();
    let (peak_lag, ttr) = time_to_recover(&samples, p.shift);
    Outcome {
        summary,
        peak_lag,
        ttr,
        events,
    }
}

fn csv_row(mode: &str, p: &Params, o: &Outcome) -> String {
    let ttr_ms = o
        .ttr
        .map(|d| format!("{:.1}", d.as_secs_f64() * 1e3))
        .unwrap_or_else(|| "inf".into());
    format!(
        "{mode},{},{},{},{},{},{:.1},{:.1},{},{},{}\n",
        DEVICES,
        p.messages,
        p.shift.as_millis(),
        o.summary.messages,
        o.summary.errors,
        o.summary.throughput_msgs,
        o.summary.latency_mean_ms,
        o.peak_lag,
        ttr_ms,
        o.events.len(),
    )
}

fn main() {
    let quick = std::env::var("PILOT_BENCH_QUICK").is_ok();
    let p = params(quick);
    println!(
        "# dynamism — 4x load shift + WAN degradation at t={:?}",
        p.shift
    );
    println!(
        "# {DEVICES} devices x {} msgs; {} -> {} msg/s/device; {} ms/msg processor, 1 consumer to start",
        p.messages,
        p.base_rate,
        p.base_rate * 4.0,
        p.process_ms
    );

    println!("\n# controller off (static knobs):");
    let off = run_mode(&p, false);
    println!("#   peak lag {} records, ttr {:?}", off.peak_lag, off.ttr);

    println!("\n# controller on (feedback loop closed):");
    let on = run_mode(&p, true);
    println!("#   peak lag {} records, ttr {:?}", on.peak_lag, on.ttr);
    println!("#   action journal (t_ms, lag, verdict, action, before -> after, bottleneck):");
    for e in &on.events {
        println!(
            "#   {:>7.1}, {:>4}, {:?}, {}, {} -> {}, {}",
            e.at.as_secs_f64() * 1e3,
            e.cause.lag,
            e.cause.verdict,
            e.action.label(),
            e.before,
            e.after,
            e.cause.bottleneck.as_deref().unwrap_or("-"),
        );
    }

    // Smoke contract (CI runs this in quick mode): the closed loop must
    // recover and journal its actions; the open loop must journal nothing.
    let expected = (DEVICES * p.messages) as u64;
    assert_eq!(
        off.summary.messages, expected,
        "controller-off lost messages"
    );
    assert_eq!(on.summary.messages, expected, "controller-on lost messages");
    assert_eq!(off.summary.errors + on.summary.errors, 0);
    assert!(
        off.events.is_empty(),
        "controller-off run must journal nothing, got {:?}",
        off.events
    );
    assert!(
        !on.events.is_empty(),
        "controller-on run journalled no actions"
    );
    let ttr_on = on.ttr.expect("controller-on run must recover");

    let mut csv = String::from(
        "controller,devices,messages_per_device,shift_ms,messages,errors,\
         throughput_msgs,latency_mean_ms,peak_lag,ttr_ms,actions\n",
    );
    csv.push_str(&csv_row("off", &p, &off));
    csv.push_str(&csv_row("on", &p, &on));
    println!("\n{csv}");
    if !quick {
        // The acceptance bar: closing the loop at least halves the TTR.
        let ttr_off = off.ttr.unwrap_or(Duration::from_secs(60));
        assert!(
            ttr_on.as_secs_f64() <= 0.5 * ttr_off.as_secs_f64(),
            "controller-on ttr {ttr_on:?} not <= 0.5x controller-off {ttr_off:?}"
        );
        std::fs::write("results_dynamism.csv", &csv).expect("write results_dynamism.csv");
        println!("# wrote results_dynamism.csv");
    }
}
