//! Dynamism demonstration — the paper's Section II-D adaptation story as a
//! measurable run: a bursty workload ("seasonal peak loads ... load
//! peaks"), the lag-driven autoscaler reacting to it, and the per-window
//! timeline showing both.
//!
//! Output: a time-bucketed CSV of cloud-processing throughput, the
//! autoscaler's scaling decisions, and the end-of-run summary.
//!
//! Usage: `cargo run -p pilot-bench --release --bin dynamism`

use pilot_core::{PilotComputeService, PilotDescription};
use pilot_datagen::{DataGenConfig, DataGenerator, PatternedRate, RatePattern};
use pilot_edge::processors::paper_model_factory;
use pilot_edge::{AutoScalerConfig, Context, EdgeToCloudPipeline, ProduceFactory};
use pilot_metrics::{Component, MetricsRegistry, Timeline};
use pilot_ml::ModelKind;
use std::sync::Arc;
use std::time::Duration;

const DEVICES: usize = 2;
const MESSAGES: usize = 120;
const POINTS: usize = 600;

/// A produce function paced by a burst pattern: 20 msg/s baseline, spiking
/// to 150 msg/s for one second.
fn bursty_produce() -> ProduceFactory {
    Arc::new(|_ctx: &Context, device: usize| {
        let mut generator =
            DataGenerator::new(DataGenConfig::paper(POINTS).with_seed(7 + device as u64));
        let mut pacer = PatternedRate::new(RatePattern::Burst {
            base: 15.0,
            burst: 120.0,
            start: Duration::from_millis(1_500),
            len: Duration::from_millis(1_000),
        });
        let mut remaining = MESSAGES;
        Box::new(move |_ctx: &Context| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            pacer.pace();
            Some(generator.next_block())
        })
    })
}

fn main() {
    let svc = PilotComputeService::new();
    let edge = svc
        .submit_and_wait(
            PilotDescription::local(DEVICES, 8.0),
            Duration::from_secs(10),
        )
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(4, 44.0), Duration::from_secs(10))
        .unwrap();

    let registry = MetricsRegistry::new();
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(bursty_produce())
        .process_cloud_function(paper_model_factory(ModelKind::AutoEncoder, 32))
        .devices(DEVICES)
        .processors(1)
        .metrics(registry.clone())
        .start()
        .unwrap();
    running.autoscale(AutoScalerConfig {
        min_processors: 1,
        max_processors: 4,
        scale_up_lag: 8,
        scale_down_lag: 1,
        interval: Duration::from_millis(50),
        hysteresis: 2,
    });
    // Snapshot scaling events mid-run (wait() consumes the pipeline).
    std::thread::sleep(Duration::from_millis(3_000));
    let events = running.scaling_events();
    let summary = running.wait(Duration::from_secs(120)).unwrap();

    println!("# dynamism — bursty workload + lag-driven autoscaling");
    println!(
        "# {DEVICES} devices x {MESSAGES} msgs x {POINTS} points (auto-encoder); burst 15->120 msg/s/device at t=1.5s"
    );

    println!("\n# producer arrivals per 250 ms window:");
    let produced = Timeline::from_spans(
        &registry.snapshot(),
        Some(&Component::EdgeProducer),
        250_000,
    );
    print!("{}", produced.to_csv());

    println!("\n# cloud-processing completions per 250 ms window:");
    let processed = Timeline::from_spans(
        &registry.snapshot(),
        Some(&Component::CloudProcessor),
        250_000,
    );
    print!("{}", processed.to_csv());

    println!("\n# autoscaler decisions (t_ms, lag, from -> to):");
    for e in &events {
        println!(
            "#   {:>7.1}, {:>4}, {} -> {}",
            e.at.as_secs_f64() * 1e3,
            e.lag,
            e.from,
            e.to
        );
    }
    println!(
        "\n# summary: {} messages, {:.1} msgs/s, mean latency {:.1} ms, errors {}, peak window rate {:.1} msgs/s",
        summary.messages,
        summary.throughput_msgs,
        summary.latency_mean_ms,
        summary.errors,
        processed.peak_rate(),
    );
}
