//! All-knobs smoke run (DESIGN.md §10): one cell with every runtime knob
//! engaged simultaneously — multiplexed producer engine, producer-side
//! batching with a linger window, consumer prefetch thread, and an
//! explicitly-sized compute pool. The staged runtime must compose all of
//! them: the run must conserve every message and report zero errors.
//!
//! This is the CI canary for knob interactions: each knob's own suite
//! exercises it in isolation, while this binary fails fast if two knobs
//! regress only in combination (e.g. a batcher flush racing the prefetch
//! thread's sentinel pause).
//!
//! Usage: `cargo run -p pilot-bench --release --bin all_knobs`
//! (honours `PILOT_BENCH_QUICK` / `PILOT_BENCH_MESSAGES`).

use pilot_bench::{csv_header, csv_row, run_cell, CellOpts, Geo};
use pilot_edge::DeploymentMode;
use std::time::{Duration, Instant};

const PRODUCER_THREADS: usize = 2;
const PROCESSORS: usize = 4;
const COMPUTE_THREADS: usize = 2;

fn devices() -> usize {
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        8
    } else {
        64
    }
}

fn main() {
    println!("# all_knobs — every runtime knob on at once");
    println!("{}", csv_header());
    let devices = devices();
    let opts = CellOpts {
        points: 100,
        devices,
        processors: Some(PROCESSORS),
        messages_per_device: pilot_bench::default_messages(Geo::Local).min(16),
        mode: DeploymentMode::Hybrid, // edge processing on, too
        producer_threads: Some(PRODUCER_THREADS),
        compute_threads: Some(COMPUTE_THREADS),
        batch_max_bytes: 16 * 1024,
        linger: Duration::from_millis(2),
        prefetch_depth: 2,
        ..CellOpts::default()
    };
    let t0 = Instant::now();
    let s = run_cell(&opts);
    let wall = t0.elapsed();
    println!("{}", csv_row("all_knobs", &opts, &s));
    let expected = devices * opts.messages_per_device;
    assert_eq!(
        s.messages as usize, expected,
        "messages lost with all knobs on ({} of {expected})",
        s.messages
    );
    assert_eq!(s.errors, 0, "errors with all knobs on");
    eprintln!(
        "all_knobs ok: {} messages in {:.1} ms ({} devices, \
         {PRODUCER_THREADS} producer workers, {PROCESSORS} processors, \
         {COMPUTE_THREADS}-lane pool, batching+linger+prefetch on)",
        s.messages,
        wall.as_secs_f64() * 1e3,
        devices,
    );
}
