//! Durable-log overhead sweep (DESIGN.md §13) — the experiment behind
//! `results_durability.csv`. Two sections share one table:
//!
//! **`append_ladder`** — raw broker appends per message size under the
//! four storage shapes:
//!
//! * **memory** — the seed's in-memory log (the zero-copy floor: an
//!   `Arc` bump and a `Vec` push, whatever the payload size).
//! * **durable_nofsync** — `SyncPolicy::OsOnly`: every record framed,
//!   CRC'd, and written to its segment file; the kernel decides when it
//!   reaches the platter. The pure frame+write cost.
//! * **group_commit** — the default policy: a shared flusher fsyncs each
//!   commit window; appends never wait for the disk.
//! * **fsync_each** — fsync inline on every append, the naive durable
//!   counterfactual. Orders of magnitude slower for small records — the
//!   cliff group commit exists to remove.
//!
//! Every durable cell ends with a full sync *inside* the clock, so a
//! row's cost includes making its records actually durable — group
//! commit's advantage is amortisation, not deferral.
//!
//! **`pipeline`** — the acceptance section: a full pipeline cell at the
//! paper's 256 KB message size (1000 points), memory-only vs the durable
//! log under group commit. The storage engine rides the producer's append
//! path, whose per-message cost is dominated by encode + simulated link
//! transfer — the buffered segment write and amortised fsync must keep
//! end-to-end per-message time within ~1.25× of the memory baseline
//! (`overhead_x` of the `pipeline_group_commit` row).
//!
//! Usage: `cargo run -p pilot-bench --release --bin log_durability`
//! (honours `PILOT_BENCH_QUICK` and `PILOT_BENCH_MESSAGES`;
//! `PILOT_BENCH_DURABILITY_BYTES` overrides the append-ladder byte
//! budget).

use pilot_bench::{default_messages, run_cell as run_pipeline_cell, CellOpts, Geo};
use pilot_broker::{Broker, DurabilityConfig, Record, RetentionPolicy, SyncPolicy};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The storage shapes under test, in baseline-first order.
const SHAPES: [&str; 4] = ["memory", "durable_nofsync", "group_commit", "fsync_each"];

/// `fsync_each` is orders of magnitude slower; cap its record count so a
/// full sweep stays in minutes while the cost-per-record stays honest.
const FSYNC_EACH_MAX_MESSAGES: usize = 256;

fn message_sizes() -> Vec<usize> {
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        vec![1_024, 65_536]
    } else {
        vec![1_024, 16_384, 262_144]
    }
}

/// Bytes appended per append-ladder cell (split into `bytes / size`
/// records).
fn cell_bytes() -> usize {
    if let Ok(v) = std::env::var("PILOT_BENCH_DURABILITY_BYTES") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        8 << 20
    } else {
        128 << 20
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pilot-log-durability-{}-{tag}", std::process::id()))
}

fn print_row(
    section: &str,
    policy: &str,
    value_bytes: usize,
    messages: usize,
    elapsed: Duration,
    baseline_per_msg_us: f64,
) -> f64 {
    let wall_ms = elapsed.as_secs_f64() * 1e3;
    let per_msg_us = elapsed.as_secs_f64() * 1e6 / messages as f64;
    let mib_per_s = (messages * value_bytes) as f64 / (1 << 20) as f64 / elapsed.as_secs_f64();
    let overhead = if baseline_per_msg_us > 0.0 {
        per_msg_us / baseline_per_msg_us
    } else {
        1.0
    };
    println!(
        "{section},{policy},{value_bytes},{messages},{wall_ms:.1},{per_msg_us:.2},\
         {mib_per_s:.1},{overhead:.2}"
    );
    per_msg_us
}

/// One append-ladder cell: `messages` raw broker appends of `size` bytes
/// under `shape`, ending with a full sync for the durable shapes.
fn run_append_cell(shape: &str, size: usize, messages: usize) -> Duration {
    let dir = scratch_dir(&format!("{shape}-{size}"));
    std::fs::remove_dir_all(&dir).ok();
    let broker = Broker::new();
    let policy = match shape {
        "memory" => None,
        "durable_nofsync" => Some(SyncPolicy::OsOnly),
        "group_commit" => Some(SyncPolicy::group_commit_default()),
        "fsync_each" => Some(SyncPolicy::EachAppend),
        other => unreachable!("unknown shape {other}"),
    };
    match policy {
        None => broker
            .create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap(),
        Some(p) => broker
            .create_topic_durable(
                "t",
                1,
                RetentionPolicy::unbounded(),
                &DurabilityConfig::new(&dir).with_policy(p),
            )
            .unwrap(),
    }
    let payload = bytes::Bytes::from(vec![0x5au8; size]);
    let topic = broker.topic("t").unwrap();
    let start = Instant::now();
    for i in 0..messages {
        topic
            .append(0, Record::new(payload.clone()).with_timestamp(i as u64))
            .unwrap();
    }
    // Full durability inside the clock: whatever is still dirty gets
    // fsynced before the cell ends (no-op for memory and fsync_each).
    topic.sync();
    let elapsed = start.elapsed();
    drop(topic);
    drop(broker);
    std::fs::remove_dir_all(&dir).ok();
    elapsed
}

/// One pipeline cell at the paper's 256 KB message size, with or without
/// the durable log. Returns (per-message wall time, bytes per message,
/// total messages).
fn run_pipeline(durable: bool) -> (Duration, usize, usize) {
    let dir = scratch_dir(if durable {
        "pipeline-durable"
    } else {
        "pipeline-memory"
    });
    std::fs::remove_dir_all(&dir).ok();
    let opts = CellOpts {
        points: 1000, // 256 KB serialized — the acceptance message size
        devices: 4,
        messages_per_device: default_messages(Geo::Local),
        log_dir: durable.then(|| dir.clone()),
        ..CellOpts::default()
    };
    let start = Instant::now();
    let summary = run_pipeline_cell(&opts);
    let elapsed = start.elapsed();
    assert_eq!(summary.errors, 0);
    let messages = summary.messages as usize;
    let bytes = pilot_datagen::serialized_size(opts.points, 32);
    std::fs::remove_dir_all(&dir).ok();
    (elapsed, bytes, messages)
}

fn main() {
    println!(
        "# log_durability — storage-shape sweep: raw append ladder (full sync \
         inside the clock) + end-to-end pipeline overhead at 256 KB messages; \
         overhead_x is per-message time vs that section's memory row"
    );
    println!("section,policy,value_bytes,messages,wall_ms,per_msg_us,mib_per_s,overhead_x");
    for size in message_sizes() {
        let messages = (cell_bytes() / size).clamp(64, 16_384);
        let mut baseline = 0.0f64;
        for shape in SHAPES {
            let n = if shape == "fsync_each" {
                messages.min(FSYNC_EACH_MAX_MESSAGES)
            } else {
                messages
            };
            let elapsed = run_append_cell(shape, size, n);
            let per_msg = print_row("append_ladder", shape, size, n, elapsed, baseline);
            if shape == "memory" {
                baseline = per_msg;
            }
        }
    }
    let (mem_elapsed, bytes, mem_messages) = run_pipeline(false);
    let baseline = print_row(
        "pipeline",
        "pipeline_memory",
        bytes,
        mem_messages,
        mem_elapsed,
        0.0,
    );
    let (dur_elapsed, bytes, dur_messages) = run_pipeline(true);
    print_row(
        "pipeline",
        "pipeline_group_commit",
        bytes,
        dur_messages,
        dur_elapsed,
        baseline,
    );
}
