//! Cell fan-in sweep (DESIGN.md §9, §12): one cell scaled from 1k to 64k
//! edge devices at a **fixed aggregate message count**, with the consumer
//! side in both shapes — the experiment behind `results_fan_in.csv`.
//!
//! Every run multiplexes its devices onto a small, constant producer
//! engine, so producer-side threads stay flat while the partition count
//! grows 64×. The consumer side runs each device count twice:
//!
//! * **tasks** — the thread-backed shape: a constant pool of 4 consumer
//!   members, each multiplexing thousands of partitions through the
//!   multi-partition fetch. Threads stay flat, but every batch transfer
//!   blocks its member for the link's propagation delay, so at most 4
//!   transfers are ever in flight.
//! * **reactor** — the event-driven core (`reactor_threads`): one member
//!   *per partition* (the paper's 1:1 ratio), all driven by a fixed pool
//!   of reactor threads. Members park on the broker's arrival registry
//!   and on transfer deadlines instead of blocking, so 64k members cost
//!   64k state machines — not 64k OS threads — and thousands of simulated
//!   transfers overlap.
//!
//! The acceptance curve is the reactor column: per-message overhead at
//! 64k devices must stay within 2× of the 1k-device anchor.
//!
//! Usage: `cargo run -p pilot-bench --release --bin fan_in`
//! (honours `PILOT_BENCH_QUICK`; `PILOT_BENCH_FAN_IN_TOTAL` overrides the
//! aggregate message count).

use pilot_bench::{run_cell, CellOpts};
use std::time::Instant;

/// Producer engine workers — constant across the sweep.
const PRODUCER_THREADS: usize = 8;
/// Consumer members in the thread-backed shape.
const TASK_PROCESSORS: usize = 4;

/// Reactor pool width: small in CI smoke runs, 8 for the full sweep.
fn reactor_threads() -> usize {
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        2
    } else {
        8
    }
}

fn device_sweep() -> Vec<usize> {
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        vec![1024, 4096]
    } else {
        vec![1024, 4096, 16384, 65536]
    }
}

/// Aggregate messages per run, split evenly across devices.
fn total_messages() -> usize {
    if let Ok(v) = std::env::var("PILOT_BENCH_FAN_IN_TOTAL") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        4096
    } else {
        65536
    }
}

/// One consumer shape at one device count.
struct Shape {
    label: &'static str,
    processors: Option<usize>,
    reactor_threads: Option<usize>,
}

fn main() {
    println!(
        "# fan_in — device fan-in sweep at fixed aggregate messages, \
         multiplexed producers, consumer tasks vs reactor"
    );
    println!(
        "devices,producer_threads,consumer,processors,reactor_threads,consumer_threads,\
         messages,points,wall_ms,overhead_us_per_msg,throughput_msgs_s,\
         latency_p50_ms,latency_p99_ms,errors"
    );
    let total = total_messages();
    let rt = reactor_threads();
    let mut reactor_rows: Vec<(usize, f64)> = Vec::new();
    for devices in device_sweep() {
        let shapes = [
            Shape {
                label: "tasks",
                processors: Some(TASK_PROCESSORS),
                reactor_threads: None,
            },
            Shape {
                label: "reactor",
                // One member per partition — the fan-in the reactor exists
                // to make affordable.
                processors: None,
                reactor_threads: Some(rt),
            },
        ];
        for shape in shapes {
            let messages_per_device = (total / devices).max(1);
            let opts = CellOpts {
                points: 25,
                devices,
                processors: shape.processors,
                messages_per_device,
                producer_threads: Some(PRODUCER_THREADS),
                reactor_threads: shape.reactor_threads,
                ..CellOpts::default()
            };
            let t0 = Instant::now();
            let s = run_cell(&opts);
            let wall = t0.elapsed();
            let messages = devices * messages_per_device;
            let overhead_us = wall.as_micros() as f64 / messages as f64;
            let consumer_threads = shape.reactor_threads.unwrap_or(TASK_PROCESSORS);
            println!(
                "{},{},{},{},{},{},{},{},{:.1},{:.2},{:.2},{:.2},{:.2},{}",
                devices,
                PRODUCER_THREADS,
                shape.label,
                shape.processors.unwrap_or(devices),
                shape.reactor_threads.unwrap_or(0),
                consumer_threads,
                messages,
                opts.points,
                wall.as_secs_f64() * 1e3,
                overhead_us,
                s.throughput_msgs,
                s.latency_p50_ms,
                s.latency_p99_ms,
                s.errors,
            );
            assert_eq!(s.messages as usize, messages, "messages lost at fan-in");
            assert_eq!(s.errors, 0, "errors at fan-in");
            if shape.reactor_threads.is_some() {
                reactor_rows.push((devices, overhead_us));
            }
        }
    }
    // The acceptance curve: reactor overhead at the largest fan-in vs the
    // smallest (1k-device) anchor must stay within 2×.
    if let (Some(&(ad, a)), Some(&(ld, l))) = (reactor_rows.first(), reactor_rows.last()) {
        let ratio = l / a;
        eprintln!(
            "reactor overhead {ld} devices / {ad} devices = {ratio:.2}x \
             ({l:.2} us vs {a:.2} us per message)"
        );
        if ld > ad {
            assert!(
                ratio <= 2.0,
                "reactor per-message overhead grew {ratio:.2}x from {ad} to {ld} devices \
                 (acceptance bound: 2x)"
            );
        }
    }
}
