//! Cell fan-in sweep (DESIGN.md §9): one cell scaled from 4 to 1024 edge
//! devices at a **fixed aggregate message count** — the experiment behind
//! `results_fan_in.csv`.
//!
//! Every run multiplexes its devices onto a small, constant producer
//! engine (4 workers) and a constant consumer pool (4 members), so the
//! thread count stays flat while the partition count grows 256×. What the
//! sweep measures is therefore pure fan-in overhead: per-device producer
//! state on the deadline queue, per-partition bookkeeping in the broker,
//! and the consumer-side multi-partition fetch. With near-flat per-message
//! overhead the `overhead_us_per_msg` column stays within ~2× between the
//! 16-device and 1024-device rows; thread-per-device producers and
//! per-partition poll timeouts would instead blow up both thread count and
//! wall time.
//!
//! Usage: `cargo run -p pilot-bench --release --bin fan_in`
//! (honours `PILOT_BENCH_QUICK`; `PILOT_BENCH_FAN_IN_TOTAL` overrides the
//! aggregate message count).

use pilot_bench::{run_cell, CellOpts};
use std::time::Instant;

/// Producer engine workers and consumer tasks — constant across the sweep.
const PRODUCER_THREADS: usize = 4;
const PROCESSORS: usize = 4;

fn device_sweep() -> Vec<usize> {
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        vec![4, 16]
    } else {
        vec![4, 16, 64, 256, 1024]
    }
}

/// Aggregate messages per run, split evenly across devices.
fn total_messages() -> usize {
    if let Ok(v) = std::env::var("PILOT_BENCH_FAN_IN_TOTAL") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var("PILOT_BENCH_QUICK").is_ok() {
        64
    } else {
        4096
    }
}

fn main() {
    println!("# fan_in — device fan-in sweep at fixed aggregate messages, multiplexed producers");
    println!(
        "devices,producer_threads,processors,total_threads,messages,points,wall_ms,\
         overhead_us_per_msg,throughput_msgs_s,latency_p50_ms,latency_p99_ms,errors"
    );
    let total = total_messages();
    let mut rows: Vec<(usize, f64)> = Vec::new();
    for devices in device_sweep() {
        let messages_per_device = (total / devices).max(1);
        let opts = CellOpts {
            points: 25,
            devices,
            processors: Some(PROCESSORS),
            messages_per_device,
            producer_threads: Some(PRODUCER_THREADS),
            ..CellOpts::default()
        };
        let t0 = Instant::now();
        let s = run_cell(&opts);
        let wall = t0.elapsed();
        let messages = devices * messages_per_device;
        let overhead_us = wall.as_micros() as f64 / messages as f64;
        println!(
            "{},{},{},{},{},{},{:.1},{:.2},{:.2},{:.2},{:.2},{}",
            devices,
            PRODUCER_THREADS,
            PROCESSORS,
            PRODUCER_THREADS + PROCESSORS,
            messages,
            opts.points,
            wall.as_secs_f64() * 1e3,
            overhead_us,
            s.throughput_msgs,
            s.latency_p50_ms,
            s.latency_p99_ms,
            s.errors,
        );
        assert_eq!(s.messages as usize, messages, "messages lost at fan-in");
        rows.push((devices, overhead_us));
    }
    // The acceptance curve: overhead at the largest fan-in vs the 16-device
    // anchor (falls back to the smallest row in quick mode).
    let anchor = rows
        .iter()
        .find(|(d, _)| *d == 16)
        .or_else(|| rows.first())
        .copied();
    if let (Some((ad, a)), Some(&(ld, l))) = (anchor, rows.last()) {
        eprintln!(
            "overhead {ld} devices / {ad} devices = {:.2}x ({l:.2} us vs {a:.2} us per message)",
            l / a
        );
    }
}
