//! Pilot-provisioning characterisation: time from `create_pilot` to Active
//! for every backend class (paper Fig. 1 step 1 / Section II-B's plugin
//! list). Prints a table of provisioning latencies, including the
//! serverless cold-vs-warm split and HPC queue wait.
//!
//! Boot delays are simulated at ~100× compression (see `pilot-core`
//! docs); the *ordering* — local < serverless-warm < ssh-edge <
//! serverless-cold < openstack < batch-HPC-queued — is the result.
//!
//! Usage: `cargo run -p pilot-bench --release --bin lifecycle`

use pilot_core::{
    BatchQueue, BatchQueueBackend, PilotComputeService, PilotDescription, ServerlessBackend,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn provision_ms(svc: &PilotComputeService, desc: PilotDescription) -> f64 {
    let t0 = Instant::now();
    let pilot = svc
        .submit_and_wait(desc, Duration::from_secs(30))
        .expect("provisioning");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    pilot.release();
    ms
}

fn main() {
    let svc = PilotComputeService::new();
    let queue = BatchQueue::new("normal", 1);
    svc.register_backend(Arc::new(BatchQueueBackend::new(queue.clone())));
    let serverless = Arc::new(ServerlessBackend::new(4));
    svc.register_backend(Arc::clone(&serverless) as _);

    println!("# pilot provisioning latency by backend class (simulated, ~100x compressed)");
    println!("backend,provision_ms");

    println!(
        "local,{:.1}",
        provision_ms(&svc, PilotDescription::local(2, 4.0))
    );

    let mut sl = PilotDescription::local(1, 2.0);
    sl.resource = "serverless://faas".into();
    let cold = provision_ms(&svc, sl.clone());
    println!("serverless-cold,{cold:.1}");
    let warm = provision_ms(&svc, sl);
    println!("serverless-warm,{warm:.1}");

    println!(
        "ssh-edge,{:.1}",
        provision_ms(&svc, PilotDescription::edge_device("raspi", "plant"))
    );
    println!(
        "openstack-medium,{:.1}",
        provision_ms(&svc, PilotDescription::lrz_medium())
    );
    println!(
        "openstack-large,{:.1}",
        provision_ms(&svc, PilotDescription::lrz_large())
    );

    // HPC with an empty queue, then with a held slot (visible queue wait).
    println!(
        "batch-hpc-idle,{:.1}",
        provision_ms(&svc, PilotDescription::hpc("normal", 8, 32.0))
    );
    let held = queue.acquire(Duration::from_secs(1)).unwrap();
    let t0 = Instant::now();
    let pilot = svc
        .create_pilot(PilotDescription::hpc("normal", 8, 32.0))
        .unwrap();
    std::thread::sleep(Duration::from_millis(120)); // sit in the queue
    drop(held);
    pilot.wait_active(Duration::from_secs(30)).unwrap();
    println!("batch-hpc-queued,{:.1}", t0.elapsed().as_secs_f64() * 1e3);
    pilot.release();

    println!(
        "\n# serverless cold starts observed: {}",
        serverless.cold_starts()
    );
}
