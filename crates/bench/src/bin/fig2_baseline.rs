//! Regenerates **Fig. 2** of the paper: baseline throughput and latency by
//! message size and partition count, plus the per-component breakdown that
//! exposes the broker-vs-processor bottleneck at four partitions.
//!
//! Paper setup (Section III.1): edge data source, broker, and processing on
//! the LRZ cloud; simulated edge devices of 1 core / 4 GB; one partition per
//! edge device; partition ratio 1:1 between broker and processing; message
//! sizes 25–10,000 points × 32 features × 8 B (7 KB–2.6 MB); 512 messages
//! per run (scaled down here — see pilot-bench docs).
//!
//! Usage: `cargo run -p pilot-bench --release --bin fig2_baseline`
//! Env: `PILOT_BENCH_MESSAGES=<n>`, `PILOT_BENCH_QUICK=1`.

use pilot_bench::{csv_header, csv_row, default_messages, message_sizes, run_cell, CellOpts, Geo};
use pilot_datagen::serialized_size;
use pilot_metrics::Component;
use pilot_ml::ModelKind;

fn main() {
    let partitions = [1usize, 2, 4];
    let sizes = message_sizes();
    println!("# Fig. 2 — baseline throughput/latency by message size and partitions");
    println!("# S-1 check: serialized message sizes");
    for &points in &sizes {
        println!(
            "#   {points} points x 32 features -> {:.1} KB",
            serialized_size(points, 32) as f64 / 1024.0
        );
    }
    println!("{}", csv_header());

    let mut four_partition_reports = Vec::new();
    for &parts in &partitions {
        for &points in &sizes {
            let opts = CellOpts {
                points,
                devices: parts,
                model: ModelKind::Baseline,
                messages_per_device: default_messages(Geo::Local),
                ..CellOpts::default()
            };
            let summary = run_cell(&opts);
            println!("{}", csv_row("fig2", &opts, &summary));
            if parts == 4 {
                four_partition_reports.push((points, summary));
            }
        }
    }

    // The paper's Fig. 2 observation: "for four partitions, it is apparent
    // that the Kafka broker can process more data than the consuming
    // processing tasks in the cloud."
    println!("\n# Per-component mean service time (ms) at 4 partitions:");
    println!("# points,broker_ms,cloud_processor_ms,bottleneck");
    for (points, s) in &four_partition_reports {
        println!(
            "# {points},{:.3},{:.3},{}",
            s.component_mean_ms(&Component::Broker),
            s.component_mean_ms(&Component::CloudProcessor),
            s.bottleneck.as_deref().unwrap_or("-"),
        );
    }
}
