//! Federation scale-out sweep (DESIGN.md §14): 1 → 1024 edge cells at a
//! **fixed aggregate message count**, every cell on one shared reactor
//! and one shared compute pool, with hierarchical FedAvg running
//! continuously over the sharded parameter plane — the experiment behind
//! `results_federation.csv`.
//!
//! What the sweep isolates is pure *federation* overhead: total work is
//! constant (same messages, same points), only the number of cells it is
//! spread across changes. Each added cell brings its own broker, its own
//! pooled pilot, a producer + consumer reactor task, and a share of the
//! region/cloud merge traffic — but **no OS threads**. The acceptance
//! bounds:
//!
//! * per-message overhead at 1024 cells ≤ 2× the 16-cell anchor, and
//! * the 1024-cell run adds ≤ 64 OS threads over the pre-run baseline
//!   (checked on Linux via `/proc/self/status`).
//!
//! Usage: `cargo run -p pilot-bench --release --bin federation`
//! (honours `PILOT_BENCH_QUICK`; `PILOT_BENCH_FED_TOTAL` overrides the
//! aggregate message count; `PILOT_BENCH_FED_CELLS` caps the sweep).

use pilot_edge::federation::{self, FederationConfig};
use std::time::Duration;

/// Devices (= broker partitions) per cell, constant across the sweep.
const DEVICES_PER_CELL: usize = 4;
/// Points per message (the paper's workload).
const POINTS: usize = 25;

fn quick() -> bool {
    std::env::var("PILOT_BENCH_QUICK").is_ok()
}

fn reactor_threads() -> usize {
    if quick() {
        2
    } else {
        8
    }
}

/// Aggregate messages per run, split evenly across cells × devices.
fn total_messages() -> usize {
    if let Ok(v) = std::env::var("PILOT_BENCH_FED_TOTAL") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if quick() {
        2048
    } else {
        16384
    }
}

fn cell_sweep() -> Vec<usize> {
    let cap = std::env::var("PILOT_BENCH_FED_CELLS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick() { 64 } else { 1024 });
    [1usize, 4, 16, 64, 256, 1024]
        .into_iter()
        .filter(|c| *c <= cap)
        .collect()
}

#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| std::io::Error::other("no Threads: line"))
        })
        .unwrap_or(0)
}

#[cfg(not(target_os = "linux"))]
fn os_thread_count() -> usize {
    0
}

fn main() {
    let total = total_messages();
    let rt = reactor_threads();
    println!(
        "# federation — 1..1024-cell scale-out at fixed aggregate messages \
         ({total} msgs x {POINTS} points), shared reactor ({rt} threads), \
         shared sequential compute pool, hierarchical FedAvg"
    );
    println!(
        "cells,regions,devices_per_cell,messages_per_device,messages,points,\
         reactor_threads,wall_ms,overhead_us_per_msg,throughput_msgs_s,\
         cloud_rounds,region_rounds,params_gets,params_puts,threads_added"
    );
    let mut anchor_16: Option<f64> = None;
    let mut at_1024: Option<f64> = None;
    for cells in cell_sweep() {
        let messages_per_device = (total / (cells * DEVICES_PER_CELL)).max(1);
        let cfg = FederationConfig {
            cells,
            regions: cells.min(8),
            devices_per_cell: DEVICES_PER_CELL,
            messages_per_device,
            points: POINTS,
            skew: 1.0,
            reactor_threads: rt,
            merge_interval: Duration::from_micros(500),
            telemetry_sample_ms: Some(10),
            ..FederationConfig::default()
        };
        let regions = cfg.regions;
        let expected = cfg.expected_messages();
        let before = os_thread_count();
        let running = federation::start(cfg).expect("federation start");
        let during = os_thread_count();
        let summary = running
            .wait(Duration::from_secs(600))
            .expect("federation run");
        assert_eq!(
            summary.processed, expected,
            "messages lost at {cells} cells"
        );
        assert!(summary.global.is_some(), "no global model at {cells} cells");
        let threads_added = during.saturating_sub(before);
        let overhead_us = summary.per_message_us();
        println!(
            "{},{},{},{},{},{},{},{:.1},{:.2},{:.2},{},{},{},{},{}",
            cells,
            regions,
            DEVICES_PER_CELL,
            messages_per_device,
            summary.processed,
            POINTS,
            rt,
            summary.wall.as_secs_f64() * 1e3,
            overhead_us,
            summary.throughput(),
            summary.cloud_rounds,
            summary.region_rounds,
            summary.params_gets,
            summary.params_puts,
            threads_added,
        );
        if cells == 16 {
            anchor_16 = Some(overhead_us);
        }
        if cells == 1024 {
            at_1024 = Some(overhead_us);
            assert!(
                threads_added <= 64,
                "1024 cells added {threads_added} OS threads (budget 64)"
            );
        }
    }
    // Acceptance curve: 1024-cell per-message overhead vs the 16-cell
    // anchor must stay within 2×.
    if let (Some(anchor), Some(large)) = (anchor_16, at_1024) {
        let ratio = large / anchor;
        eprintln!(
            "federation overhead 1024 cells / 16 cells = {ratio:.2}x \
             ({large:.2} us vs {anchor:.2} us per message)"
        );
        assert!(
            ratio <= 2.0,
            "per-message overhead grew {ratio:.2}x from 16 to 1024 cells \
             (acceptance bound: 2x)"
        );
    }
}
