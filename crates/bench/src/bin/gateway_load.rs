//! `gateway_load` — GW-1: the observability front door under load
//! (DESIGN.md §16, EXPERIMENTS.md "Gateway throughput and latency").
//!
//! Starts one experiment cell with the gateway and the telemetry plane on,
//! then sweeps concurrent HTTP clients hammering a 50/50 mix of
//! `GET /metrics` (Prometheus scrape) and `POST /produce` (record
//! ingestion) over keep-alive connections, while one SSE subscriber holds
//! `/telemetry/stream` for the whole sweep. Reports per-configuration
//! request latency percentiles as CSV on stdout.
//!
//! ```text
//! cargo run -p pilot-bench --release --bin gateway_load > results_gateway.csv
//!
//! Env:
//!   PILOT_BENCH_QUICK           run the self-asserting endpoint smoke
//!                               instead of the sweep (CI mode; exits 1 on
//!                               any wrong status, invalid payload, or a
//!                               worker killed by a hostile request)
//!   PILOT_GATEWAY_REQUESTS=N    requests per client in the sweep
//!                               (default 8000 → 120k total)
//! ```

use pilot_bench::{start_cell, CellOpts, Geo, StartedCell};
use pilot_broker::RetentionPolicy;
use pilot_gateway::{GatewayConfig, HttpClient};
use pilot_metrics::{validate_json, validate_prometheus, validate_trace_json};
use pilot_ml::ModelKind;
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Client counts swept in full mode.
const CLIENT_SWEEP: &[usize] = &[1, 2, 4, 8];
/// Topic `POST /produce` ingests into (separate from the pipeline's own
/// topic, so load records never race the sentinel protocol).
const INGEST_TOPIC: &str = "ingest";

fn start_gateway_cell() -> StartedCell {
    let quick = std::env::var("PILOT_BENCH_QUICK").is_ok();
    let opts = CellOpts {
        points: 100,
        devices: 2,
        model: ModelKind::Baseline,
        geo: Geo::Local,
        messages_per_device: if quick { 8 } else { 16 },
        telemetry_sample_ms: Some(5),
        gateway: Some(GatewayConfig {
            // Every concurrent client pins a worker (keep-alive), plus the
            // SSE subscriber and headroom for the hostile-request probes.
            workers: CLIENT_SWEEP.iter().copied().max().unwrap_or(1) + 4,
            ..GatewayConfig::default()
        }),
        ..CellOpts::default()
    };
    let cell = start_cell(&opts);
    cell.pipeline
        .broker()
        .create_topic(
            INGEST_TOPIC,
            CLIENT_SWEEP.iter().copied().max().unwrap_or(1),
            RetentionPolicy::unbounded(),
        )
        .expect("create ingest topic");
    cell
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One sweep configuration: `clients` threads, each issuing
/// `requests_per_client` alternating scrape/ingest requests on its own
/// keep-alive connection. Returns every request's latency in µs.
fn run_config(addr: SocketAddr, clients: usize, requests_per_client: usize) -> Vec<u64> {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let produce_path = format!("/produce?topic={INGEST_TOPIC}&partition={c}");
                let mut lat = Vec::with_capacity(requests_per_client);
                for i in 0..requests_per_client {
                    let t0 = Instant::now();
                    let response = if i % 2 == 0 {
                        client.get("/metrics")
                    } else {
                        client.post(&produce_path, format!("load-{c}-{i}").as_bytes())
                    }
                    .expect("request");
                    assert_eq!(response.status, 200, "body: {}", response.text());
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect()
}

/// Full mode: the GW-1 sweep. ≥100k total requests, latency percentiles
/// per client count, one SSE subscription held throughout.
fn run_sweep(cell: &StartedCell, addr: SocketAddr) {
    let requests_per_client: usize = std::env::var("PILOT_GATEWAY_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8000);

    // One subscriber holds the stream for the whole sweep; its event count
    // lands in the trailer comment.
    let subscriber = HttpClient::connect(addr).expect("sse connect");
    let (status, mut stream) = subscriber
        .open_stream("GET", "/telemetry/stream")
        .expect("sse open");
    assert_eq!(status, 200);
    let sse = std::thread::spawn(move || {
        let mut frames = 0u64;
        while let Ok(Some(ev)) = stream.next_event(Duration::from_secs(5)) {
            if ev.event.as_deref() == Some("frame") {
                frames += 1;
            }
        }
        frames
    });

    println!("# gateway_load — GW-1: observability gateway under concurrent scrape+ingest");
    println!("# mix: 50% GET /metrics, 50% POST /produce, keep-alive, 1 SSE subscriber held");
    println!("clients,requests,elapsed_ms,reqs_per_s,p50_us,p99_us,max_us");
    let mut total_requests = 0u64;
    for &clients in CLIENT_SWEEP {
        let t0 = Instant::now();
        let mut lat = run_config(addr, clients, requests_per_client);
        let elapsed = t0.elapsed();
        lat.sort_unstable();
        let n = lat.len() as u64;
        total_requests += n;
        println!(
            "{clients},{n},{:.1},{:.0},{},{},{}",
            elapsed.as_secs_f64() * 1e3,
            n as f64 / elapsed.as_secs_f64(),
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
            lat.last().copied().unwrap_or(0),
        );
        eprintln!(
            "gateway_load: {clients} clients done ({n} requests in {:.1} ms)",
            elapsed.as_secs_f64() * 1e3
        );
    }
    // The gateway's own accounting should have seen every request (the SSE
    // subscription and the sweep's; never fewer than the sweep alone).
    let gw_requests = cell
        .pipeline
        .context()
        .metrics
        .gauge_value("gateway.requests")
        .unwrap_or(0);
    assert!(
        gw_requests >= total_requests as i64,
        "gateway counted {gw_requests} requests, sweep sent {total_requests}"
    );
    let sse_frames = {
        // Shutting the pipeline down ends the stream; the subscriber
        // thread then reports how many frames it saw live.
        cell.pipeline.abort();
        sse.join().expect("sse thread")
    };
    println!(
        "# total_requests={total_requests} gateway_counted={gw_requests} sse_frames={sse_frames}"
    );
    assert!(
        total_requests >= 100_000,
        "GW-1 requires >= 100k total requests, sent {total_requests}"
    );
}

/// Quick mode: the self-asserting endpoint smoke CI runs. Every endpoint
/// is exercised against a live cell and its payload validated; hostile
/// requests (malformed head, oversized body, empty record) must produce
/// clean errors without killing the worker that served them.
fn run_smoke(cell: &StartedCell, addr: SocketAddr) {
    let mut client = HttpClient::connect(addr).expect("connect");

    let metrics = client.get("/metrics").expect("/metrics");
    assert_eq!(metrics.status, 200);
    validate_prometheus(&metrics.text()).expect("/metrics is valid Prometheus text");

    let frames = client.get("/telemetry/frames").expect("/telemetry/frames");
    assert_eq!(frames.status, 200);
    validate_json(&frames.text()).expect("/telemetry/frames is valid JSON");

    // /top needs at least one sampled frame; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let top = loop {
        let r = client.get("/top").expect("/top");
        if r.status == 200 || Instant::now() > deadline {
            break r;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(top.status, 200, "body: {}", top.text());
    validate_json(&top.text()).expect("/top is valid JSON");
    assert!(top.text().contains("\"rows\""), "body: {}", top.text());

    let trace = client.get("/trace").expect("/trace");
    assert_eq!(trace.status, 200);
    validate_trace_json(&trace.text()).expect("/trace is a valid Chrome trace");

    // External tune: applied, bounds-checked, journalled with its cause.
    let tuned = client.post("/control/tune?fetch_max=8", b"").expect("tune");
    assert_eq!(tuned.status, 200, "body: {}", tuned.text());
    assert!(tuned.text().contains("set_fetch_max"));
    let rejected = client
        .post("/control/tune?fetch_max=100000", b"")
        .expect("tune out of bounds");
    assert_eq!(rejected.status, 400, "body: {}", rejected.text());
    let journal = client.get("/control/journal").expect("journal");
    assert_eq!(journal.status, 200);
    validate_json(&journal.text()).expect("/control/journal is valid JSON");
    assert!(
        journal.text().contains("\"external\""),
        "journal: {}",
        journal.text()
    );

    // Ingestion round-trip: the posted record must be fetchable.
    let produced = client
        .post(
            &format!("/produce?topic={INGEST_TOPIC}&partition=0"),
            b"smoke-payload",
        )
        .expect("produce");
    assert_eq!(produced.status, 200, "body: {}", produced.text());
    let records = cell
        .pipeline
        .broker()
        .fetch(INGEST_TOPIC, 0, 0, 16, Duration::ZERO)
        .expect("fetch back");
    assert!(
        records.iter().any(|r| r.value.as_ref() == b"smoke-payload"),
        "posted record not found in {INGEST_TOPIC}"
    );
    let empty = client
        .post(&format!("/produce?topic={INGEST_TOPIC}&partition=0"), b"")
        .expect("empty produce");
    assert_eq!(empty.status, 400, "empty payload must be rejected");
    let bad_topic = client.post("/produce?topic=nope", b"x").expect("bad topic");
    assert_eq!(bad_topic.status, 404);

    // SSE: at least two frames, strictly monotonic timestamps.
    let (status, mut stream) = HttpClient::connect(addr)
        .expect("sse connect")
        .open_stream("GET", "/telemetry/stream")
        .expect("sse open");
    assert_eq!(status, 200);
    let mut last_t = 0u64;
    let mut seen = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen < 2 && Instant::now() < deadline {
        match stream.next_event(Duration::from_secs(2)).expect("sse read") {
            Some(ev) if ev.event.as_deref() == Some("frame") => {
                let t = ev
                    .data
                    .split("\"t_us\":")
                    .nth(1)
                    .and_then(|s| s.split(',').next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("frame carries t_us");
                assert!(t > last_t, "frame timestamps must be monotonic");
                last_t = t;
                seen += 1;
            }
            Some(_) => {}
            None => {}
        }
    }
    assert!(seen >= 2, "expected >= 2 SSE frames, saw {seen}");

    // Hostile requests: clean errors, and the worker that served them
    // keeps serving.
    assert_eq!(client.get("/nope").expect("404 path").status, 404);
    let too_big = vec![b'x'; 300 * 1024];
    let huge = client
        .post(&format!("/produce?topic={INGEST_TOPIC}"), &too_big)
        .expect("oversized");
    assert_eq!(huge.status, 413);
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"NOT A REQUEST\r\n\r\n").expect("raw write");
    let mut reply = String::new();
    let _ = raw.read_to_string(&mut reply);
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply:?}");
    drop(raw);
    let after = client.get("/metrics").expect("worker survived");
    assert_eq!(after.status, 200);

    println!("# gateway_load quick smoke: all endpoints OK");
}

fn main() {
    let quick = std::env::var("PILOT_BENCH_QUICK").is_ok();
    let cell = start_gateway_cell();
    let addr = cell.pipeline.gateway_addr().expect("gateway is on");
    eprintln!("gateway_load: gateway at http://{addr}/");
    if quick {
        run_smoke(&cell, addr);
    } else {
        run_sweep(&cell, addr);
    }
    drop(cell);
}
