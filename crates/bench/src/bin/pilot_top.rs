//! `pilot_top` — a live per-stage view of a running pipeline, driven by
//! the telemetry plane (DESIGN.md §11).
//!
//! Starts one experiment cell with `telemetry_sample_ms` on, prints a
//! `top`-style table of the stage gauges while the run is in flight, and
//! finishes with the online bottleneck attribution (critical-path share
//! per component) plus an optional Chrome `trace_event` export.
//!
//! ```text
//! pilot_top [wan|compute|federation]
//!
//!   wan        transatlantic edge→broker link, baseline model — the
//!              network link dominates (default)
//!   compute    local links, isolation-forest model on large messages —
//!              the cloud processors dominate
//!   federation 64 edge cells -> 4 regions -> cloud on one shared
//!              reactor: per-tier lag, merge rounds, and parameter-plane
//!              traffic (DESIGN.md §14)
//!
//! Env:
//!   PILOT_TOP_TRACE=<path>  write a Perfetto-loadable Chrome trace and
//!                           validate it (exit 1 on malformed JSON or an
//!                           empty event list)
//!   PILOT_BENCH_QUICK       shrink the cell for CI smoke runs
//!   PILOT_BENCH_MESSAGES=N  override messages per device
//! ```

use pilot_bench::{start_cell, CellOpts, Geo};
use pilot_edge::federation::FEDERATION_GAUGES;
use pilot_metrics::{attribute, validate_trace_json, TopView, PIPELINE_GAUGES};
use pilot_ml::ModelKind;
use std::time::{Duration, Instant};

fn scenario(name: &str) -> CellOpts {
    let quick = std::env::var("PILOT_BENCH_QUICK").is_ok();
    match name {
        "compute" => CellOpts {
            points: if quick { 1000 } else { 10_000 },
            devices: 2,
            model: ModelKind::IsolationForest,
            geo: Geo::Local,
            messages_per_device: pilot_bench::default_messages(Geo::Local),
            telemetry_sample_ms: Some(5),
            ..CellOpts::default()
        },
        _ => CellOpts {
            points: if quick { 100 } else { 1000 },
            devices: 2,
            model: ModelKind::Baseline,
            geo: Geo::Transatlantic,
            messages_per_device: pilot_bench::default_messages(Geo::Transatlantic),
            telemetry_sample_ms: Some(5),
            ..CellOpts::default()
        },
    }
}

/// The federation scenario: a live per-tier view of a 64-cell continuum
/// (cells → regions → cloud) on one shared reactor.
fn run_federation_scenario() {
    use pilot_edge::federation::{self, FederationConfig};
    let quick = std::env::var("PILOT_BENCH_QUICK").is_ok();
    let messages = std::env::var("PILOT_BENCH_MESSAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 8 } else { 64 });
    let cfg = FederationConfig {
        cells: 64,
        regions: 4,
        devices_per_cell: 2,
        messages_per_device: messages,
        points: if quick { 25 } else { 100 },
        skew: 1.0,
        reactor_threads: 4,
        telemetry_sample_ms: Some(5),
        ..FederationConfig::default()
    };
    let expected = cfg.expected_messages();
    eprintln!(
        "pilot_top: scenario 'federation' — {} cells × {} devices × {} msgs \
         -> {} regions -> cloud",
        cfg.cells, cfg.devices_per_cell, cfg.messages_per_device, cfg.regions
    );
    let running = federation::start(cfg).expect("federation start");

    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let processed = running.processed();
        if let Some(frame) = running.sampler().and_then(|s| s.latest()) {
            let view = TopView::from_frame(&frame, FEDERATION_GAUGES, processed, Some(expected));
            print!("{}", view.to_text());
        }
        if processed >= expected || Instant::now() > deadline {
            break;
        }
    }
    let frames = running.sampler().map(|s| s.frames()).unwrap_or_default();
    let summary = running
        .wait(Duration::from_secs(600))
        .expect("federation run");
    assert!(
        !frames.is_empty(),
        "telemetry plane was on but produced no frames"
    );
    println!(
        "run complete: {} msgs in {:.1} ms ({:.1} msgs/s, {:.2} us/msg), \
         {} regional + {} cloud rounds, {} gets / {} puts",
        summary.processed,
        summary.wall.as_secs_f64() * 1e3,
        summary.throughput(),
        summary.per_message_us(),
        summary.region_rounds,
        summary.cloud_rounds,
        summary.params_gets,
        summary.params_puts,
    );
}

fn main() {
    let scenario_name = std::env::args().nth(1).unwrap_or_else(|| "wan".into());
    if scenario_name == "federation" {
        run_federation_scenario();
        return;
    }
    let opts = scenario(&scenario_name);
    let expected = (opts.devices * opts.messages_per_device) as u64;
    eprintln!(
        "pilot_top: scenario '{scenario_name}' — {} devices × {} msgs, {} points, {} geo",
        opts.devices,
        opts.messages_per_device,
        opts.points,
        opts.geo.label()
    );

    let cell = start_cell(&opts);
    let job_id = cell.pipeline.job_id();
    let registry = cell.pipeline.context().metrics.clone();

    // Live loop: one table per tick until every message is processed.
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let processed = cell.pipeline.report().total_messages();
        if let Some(frame) = cell.pipeline.telemetry().last() {
            let view = TopView::from_frame(frame, PIPELINE_GAUGES, processed, Some(expected));
            print!("{}", view.to_text());
        }
        if processed >= expected || Instant::now() > deadline {
            break;
        }
    }

    // Grab the frames before `wait` consumes the handle, then finish.
    let frames = cell.pipeline.telemetry();
    let summary = cell.wait(Duration::from_secs(600));
    assert!(
        !frames.is_empty(),
        "telemetry plane was on but produced no frames"
    );
    println!("run complete: {}", summary.to_csv_row());

    // Offline half of the telemetry plane: fold the span stream and the
    // gauge frames into the per-window bottleneck attribution.
    let spans: Vec<_> = registry
        .snapshot()
        .into_iter()
        .filter(|s| s.job_id == job_id)
        .collect();
    let attribution = attribute(&spans, &frames, 100_000);
    println!(
        "critical-path attribution ({} windows):",
        attribution.windows.len()
    );
    print!("{}", attribution.to_table());
    if let Some(c) = attribution.dominant() {
        println!("bottleneck: {}", c.label());
    }

    if let Ok(path) = std::env::var("PILOT_TOP_TRACE") {
        let json = pilot_metrics::chrome_trace_json(&spans, &frames);
        std::fs::write(&path, &json).expect("write trace");
        match validate_trace_json(&json) {
            Ok(events) if events > 0 => {
                println!("chrome trace: {events} events -> {path}");
            }
            Ok(_) => {
                eprintln!("chrome trace at {path} has no events");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("chrome trace at {path} is malformed: {e}");
                std::process::exit(1);
            }
        }
    }
}
