//! `pilot_top` — a live per-stage view of a running pipeline, driven by
//! the telemetry plane (DESIGN.md §11).
//!
//! Starts one experiment cell with `telemetry_sample_ms` on, prints a
//! `top`-style table of the stage gauges while the run is in flight, and
//! finishes with the online bottleneck attribution (critical-path share
//! per component) plus an optional Chrome `trace_event` export.
//!
//! ```text
//! pilot_top [wan|compute]
//!
//!   wan      transatlantic edge→broker link, baseline model — the
//!            network link dominates (default)
//!   compute  local links, isolation-forest model on large messages —
//!            the cloud processors dominate
//!
//! Env:
//!   PILOT_TOP_TRACE=<path>  write a Perfetto-loadable Chrome trace and
//!                           validate it (exit 1 on malformed JSON or an
//!                           empty event list)
//!   PILOT_BENCH_QUICK       shrink the cell for CI smoke runs
//!   PILOT_BENCH_MESSAGES=N  override messages per device
//! ```

use pilot_bench::{start_cell, CellOpts, Geo};
use pilot_metrics::{attribute, validate_trace_json, TelemetryFrame};
use pilot_ml::ModelKind;
use std::time::{Duration, Instant};

/// Gauges shown in the live table, in display order.
const LIVE_GAUGES: &[&str] = &[
    "producer.deadline_queue_depth",
    "producer.inflight_batch_bytes",
    "consumer.prefetch_occupancy",
    "broker.lag.total",
    "net.edge_broker.pending_us",
    "net.broker_cloud.pending_us",
    "cloud.compute_pool_occupancy",
];

fn scenario(name: &str) -> CellOpts {
    let quick = std::env::var("PILOT_BENCH_QUICK").is_ok();
    match name {
        "compute" => CellOpts {
            points: if quick { 1000 } else { 10_000 },
            devices: 2,
            model: ModelKind::IsolationForest,
            geo: Geo::Local,
            messages_per_device: pilot_bench::default_messages(Geo::Local),
            telemetry_sample_ms: Some(5),
            ..CellOpts::default()
        },
        _ => CellOpts {
            points: if quick { 100 } else { 1000 },
            devices: 2,
            model: ModelKind::Baseline,
            geo: Geo::Transatlantic,
            messages_per_device: pilot_bench::default_messages(Geo::Transatlantic),
            telemetry_sample_ms: Some(5),
            ..CellOpts::default()
        },
    }
}

fn print_frame(frame: &TelemetryFrame, processed: u64, expected: u64) {
    println!("t={:>9}µs  processed {processed}/{expected}", frame.t_us);
    for name in LIVE_GAUGES {
        if let Some(v) = frame.value(name) {
            println!("  {name:<34} {v:>12}");
        }
    }
    println!();
}

fn main() {
    let scenario_name = std::env::args().nth(1).unwrap_or_else(|| "wan".into());
    let opts = scenario(&scenario_name);
    let expected = (opts.devices * opts.messages_per_device) as u64;
    eprintln!(
        "pilot_top: scenario '{scenario_name}' — {} devices × {} msgs, {} points, {} geo",
        opts.devices,
        opts.messages_per_device,
        opts.points,
        opts.geo.label()
    );

    let cell = start_cell(&opts);
    let job_id = cell.pipeline.job_id();
    let registry = cell.pipeline.context().metrics.clone();

    // Live loop: one table per tick until every message is processed.
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let processed = cell.pipeline.report().total_messages();
        if let Some(frame) = cell.pipeline.telemetry().last() {
            print_frame(frame, processed, expected);
        }
        if processed >= expected || Instant::now() > deadline {
            break;
        }
    }

    // Grab the frames before `wait` consumes the handle, then finish.
    let frames = cell.pipeline.telemetry();
    let summary = cell.wait(Duration::from_secs(600));
    assert!(
        !frames.is_empty(),
        "telemetry plane was on but produced no frames"
    );
    println!("run complete: {}", summary.to_csv_row());

    // Offline half of the telemetry plane: fold the span stream and the
    // gauge frames into the per-window bottleneck attribution.
    let spans: Vec<_> = registry
        .snapshot()
        .into_iter()
        .filter(|s| s.job_id == job_id)
        .collect();
    let attribution = attribute(&spans, &frames, 100_000);
    println!(
        "critical-path attribution ({} windows):",
        attribution.windows.len()
    );
    print!("{}", attribution.to_table());
    if let Some(c) = attribution.dominant() {
        println!("bottleneck: {}", c.label());
    }

    if let Ok(path) = std::env::var("PILOT_TOP_TRACE") {
        let json = pilot_metrics::chrome_trace_json(&spans, &frames);
        std::fs::write(&path, &json).expect("write trace");
        match validate_trace_json(&json) {
            Ok(events) if events > 0 => {
                println!("chrome trace: {events} events -> {path}");
            }
            Ok(_) => {
                eprintln!("chrome trace at {path} has no events");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("chrome trace at {path} is malformed: {e}");
                std::process::exit(1);
            }
        }
    }
}
