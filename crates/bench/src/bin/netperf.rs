//! Regenerates **S-3**, the paper's iPerf-style link characterisation:
//! "The latency between both locations varied between 140 and 160 msec;
//! bandwidth fluctuated between 60 to 100 MBits/sec (iPerf measurement)."
//!
//! Probes every link profile with latency pings and a bulk transfer, then
//! prints observed one-way latency and goodput. The transatlantic profile
//! must land at 70–80 ms one-way (= 140–160 ms RTT) and 60–100 Mbit/s.
//!
//! Usage: `cargo run -p pilot-bench --release --bin netperf`

use pilot_netsim::profiles;

fn main() {
    println!("# netperf — link-model self-measurement (iPerf analogue)");
    println!("link,one_way_ms_min,one_way_ms_max,rtt_ms_mean,goodput_mbit");
    let specs = [
        profiles::cloud_local("cloud-local", 7),
        profiles::transatlantic("transatlantic", 7),
        profiles::edge_uplink("edge-uplink", 7),
    ];
    for spec in specs {
        let name = spec.name.clone();
        let link = spec.build();
        // Latency: 20 zero-byte probes.
        let probes: Vec<f64> = (0..20)
            .map(|_| link.probe_latency().as_secs_f64() * 1e3)
            .collect();
        let min = probes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = probes.iter().cloned().fold(0.0f64, f64::max);
        let mean = probes.iter().sum::<f64>() / probes.len() as f64;
        // Goodput: one 4 MB bulk transfer, latency excluded.
        let bytes = 4_000_000u64;
        let receipt = link.transfer(bytes);
        let goodput = bytes as f64 * 8.0 / receipt.transit.as_secs_f64() / 1e6;
        println!("{name},{min:.1},{max:.1},{:.1},{goodput:.1}", 2.0 * mean);
    }
}
