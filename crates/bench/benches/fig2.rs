//! Criterion bench for the Fig. 2 grid (baseline pipeline) at reduced
//! message counts. Each iteration provisions pilots and streams a full
//! pipeline, so samples are few but end-to-end faithful.
//!
//! Run: `cargo bench -p pilot-bench --bench fig2`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_bench::{run_cell, CellOpts, Geo};
use pilot_datagen::serialized_size;
use pilot_ml::ModelKind;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_baseline");
    group.sample_size(10);
    let messages = 4usize;
    for &devices in &[1usize, 4] {
        for &points in &[25usize, 1000] {
            let total_bytes = (serialized_size(points, 32) * messages * devices) as u64;
            group.throughput(Throughput::Bytes(total_bytes));
            group.bench_with_input(
                BenchmarkId::new(format!("p{devices}"), points),
                &(devices, points),
                |b, &(devices, points)| {
                    b.iter(|| {
                        run_cell(&CellOpts {
                            points,
                            devices,
                            model: ModelKind::Baseline,
                            messages_per_device: messages,
                            geo: Geo::Local,
                            ..CellOpts::default()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
