//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `partitions`  — partition/device count beyond the paper's 4: where does
//!   broker-vs-processor crossover move? (extends Fig. 2's x-axis)
//! * `batching`    — producer batch size vs broker append throughput.
//! * `placement`   — cloud-centric vs hybrid (edge downsampling before the
//!   WAN) on the transatlantic profile, quantifying the paper's "would
//!   benefit from a hybrid deployment" remark.
//! * `params`      — parameter-server merge-policy cost at the
//!   auto-encoder's 11,552-weight payload.
//! * `codec`       — F64 vs Q16 wire codec over the transatlantic profile
//!   (the paper's "data compression ... to ensure that the amount of data
//!   movement is minimal").
//!
//! Run: `cargo bench -p pilot-bench --bench ablations`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_bench::{run_cell, CellOpts, Geo};
use pilot_broker::{Broker, Producer, ProducerConfig, Record, RetentionPolicy};
use pilot_edge::DeploymentMode;
use pilot_ml::ModelKind;
use pilot_params::{MergePolicy, ParameterServer};
use std::time::Duration;

fn bench_partitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partitions");
    group.sample_size(10);
    for &devices in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    run_cell(&CellOpts {
                        points: 500,
                        devices,
                        model: ModelKind::Baseline,
                        messages_per_device: 4,
                        geo: Geo::Local,
                        ..CellOpts::default()
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batching");
    const RECORDS: usize = 2000;
    const PAYLOAD: usize = 1024;
    group.throughput(Throughput::Bytes((RECORDS * PAYLOAD) as u64));
    for &batch in &[1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let broker = Broker::new();
                broker
                    .create_topic("t", 1, RetentionPolicy::unbounded())
                    .unwrap();
                let mut producer = Producer::new(
                    broker,
                    "t",
                    ProducerConfig {
                        batch_records: batch,
                        batch_bytes: usize::MAX,
                        linger: Duration::from_secs(60),
                        partitioner: pilot_broker::Partitioner::RoundRobin,
                    },
                )
                .unwrap();
                for _ in 0..RECORDS {
                    producer
                        .send_to(0, Record::new(vec![7u8; PAYLOAD]))
                        .unwrap();
                }
                producer.flush().unwrap();
                producer.sent()
            })
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_placement");
    group.sample_size(10);
    let cells = [
        ("cloud-centric", DeploymentMode::CloudCentric),
        ("hybrid-downsample4", DeploymentMode::Hybrid),
    ];
    for (label, mode) in cells {
        group.bench_function(label, |b| {
            b.iter(|| {
                run_cell(&CellOpts {
                    points: 1000,
                    devices: 1,
                    model: ModelKind::KMeans,
                    messages_per_device: 2,
                    geo: Geo::Transatlantic,
                    mode,
                    downsample: 4,
                    ..CellOpts::default()
                })
            })
        });
    }
    group.finish();
}

fn bench_params(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_params");
    const WEIGHTS: usize = 11_552; // the paper's auto-encoder size
    group.throughput(Throughput::Bytes((WEIGHTS * 8) as u64));
    let policies = [
        ("assign", MergePolicy::Assign),
        ("average", MergePolicy::Average),
        ("ema", MergePolicy::Ema { alpha: 0.1 }),
        ("sum", MergePolicy::Sum),
    ];
    for (label, policy) in policies {
        group.bench_function(label, |b| {
            let ps = ParameterServer::new();
            let weights = vec![0.5f64; WEIGHTS];
            ps.put("model", weights.clone());
            b.iter(|| ps.update("model", policy, &weights))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_codec");
    group.sample_size(10);
    for codec in [pilot_datagen::Codec::F64, pilot_datagen::Codec::Q16] {
        group.bench_function(codec.label(), |b| {
            b.iter(|| {
                let mut opts = CellOpts {
                    points: 2_000,
                    devices: 1,
                    model: ModelKind::Baseline,
                    messages_per_device: 2,
                    geo: Geo::Transatlantic,
                    ..CellOpts::default()
                };
                let _ = &mut opts;
                run_cell_with_codec(&opts, codec)
            })
        });
    }
    group.finish();
}

/// run_cell with a codec override (kept here: only the ablation needs it).
fn run_cell_with_codec(opts: &CellOpts, codec: pilot_datagen::Codec) -> pilot_edge::RunSummary {
    use pilot_edge::processors::{datagen_produce_factory, paper_model_factory};
    use pilot_netsim::profiles;
    let svc = pilot_core::PilotComputeService::new();
    let (edge, cloud) = pilot_bench::provision(&svc, opts);
    pilot_edge::EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(
            pilot_datagen::DataGenConfig::paper(opts.points).with_seed(opts.seed),
            opts.messages_per_device,
        ))
        .process_cloud_function(paper_model_factory(opts.model, 32))
        .devices(opts.devices)
        .codec(codec)
        .link_edge_to_broker(profiles::transatlantic("wan", opts.seed).build())
        .run(Duration::from_secs(600))
        .unwrap()
}

fn bench_pipeline_wan(c: &mut Criterion) {
    // End-to-end serial vs pipelined transport on the transatlantic
    // profile (DESIGN.md §8). Small paper messages (25 points) make
    // propagation — not bandwidth — the serial bottleneck, which is
    // exactly what producer batching + consumer prefetch reclaim; at
    // 10,000 points the link's transit capacity is the ceiling and the
    // two variants converge (see EXPERIMENTS.md).
    let mut group = c.benchmark_group("pipeline_wan");
    group.sample_size(10);
    let serial = CellOpts {
        points: 25,
        devices: 4,
        processors: Some(2),
        model: ModelKind::Baseline,
        messages_per_device: 8,
        geo: Geo::Transatlantic,
        ..CellOpts::default()
    };
    let pipelined = serial.clone().pipelined(256 * 1024);
    group.bench_function("serial", |b| b.iter(|| run_cell(&serial)));
    group.bench_function("pipelined", |b| b.iter(|| run_cell(&pipelined)));
    group.finish();
}

criterion_group!(
    benches,
    bench_partitions,
    bench_batching,
    bench_placement,
    bench_params,
    bench_codec,
    bench_pipeline_wan
);
criterion_main!(benches);
