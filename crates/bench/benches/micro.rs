//! Substrate micro-benchmarks: the per-operation costs that compose into
//! the pipeline-level numbers of Fig. 2/3.
//!
//! * `broker_append` / `broker_fetch` — commit-log service time per record
//!   size (the Fig. 2 broker component).
//! * `model_per_message` — partial_fit + score cost of each evaluation
//!   model on a paper-sized message (the Fig. 3 model ordering, isolated
//!   from transport).
//! * `codec` — f64 vs Q16 encode/decode per block.
//! * `histogram_record` — the monitoring fabric's hot-path cost.
//!
//! Run: `cargo bench -p pilot-bench --bench micro`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_broker::{Broker, Record, RetentionPolicy};
use pilot_dataflow::ComputePool;
use pilot_datagen::{codec, DataGenConfig, DataGenerator};
use pilot_ml::{
    AutoEncoderConfig, Dataset, IsolationForestConfig, KMeansConfig, ModelKind, OutlierModel,
};
use pilot_netsim::profiles;
use std::sync::Arc;
use std::time::Duration;

fn bench_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_append");
    for &size in &[6_400usize, 256_000, 2_560_000] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let broker = Broker::new();
            broker
                .create_topic("t", 1, RetentionPolicy::by_records(4096))
                .unwrap();
            let payload = bytes::Bytes::from(vec![7u8; size]);
            b.iter(|| broker.append("t", 0, Record::new(payload.clone())).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("broker_fetch");
    for &size in &[6_400usize, 256_000] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let broker = Broker::new();
            broker
                .create_topic("t", 1, RetentionPolicy::unbounded())
                .unwrap();
            for _ in 0..64 {
                broker.append("t", 0, Record::new(vec![7u8; size])).unwrap();
            }
            let mut offset = 0u64;
            b.iter(|| {
                let recs = broker
                    .fetch("t", 0, offset % 64, 1, Duration::ZERO)
                    .unwrap();
                offset += 1;
                recs
            });
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_per_message");
    group.sample_size(10);
    const POINTS: usize = 1000;
    let mut generator = DataGenerator::new(DataGenConfig::paper(POINTS));
    let block = generator.next_block();
    let bytes = (POINTS * 32 * 8) as u64;
    group.throughput(Throughput::Bytes(bytes));

    for kind in [
        ModelKind::KMeans,
        ModelKind::IsolationForest,
        ModelKind::AutoEncoder,
    ] {
        // `seq` is the paper's single-threaded per-message cost; `pool4`
        // fans the same invocation out across a 4-wide intra-task compute
        // pool. Scores are bit-identical between the two (the pool's
        // determinism contract), so the delta is pure speedup.
        for (variant, threads) in [("seq", 1usize), ("pool4", 4)] {
            group.bench_function(BenchmarkId::new(kind.label(), variant), |b| {
                // The paper's per-message protocol: update + score.
                let mut model: Box<dyn OutlierModel> = match kind {
                    ModelKind::KMeans => Box::new(pilot_ml::KMeans::new(KMeansConfig::paper())),
                    ModelKind::IsolationForest => Box::new(pilot_ml::IsolationForest::new(
                        IsolationForestConfig::paper(),
                    )),
                    ModelKind::AutoEncoder => {
                        Box::new(pilot_ml::AutoEncoder::new(AutoEncoderConfig::paper()))
                    }
                    ModelKind::Baseline => unreachable!(),
                };
                model.set_compute_pool(Arc::new(ComputePool::new(threads)));
                let ds = Dataset::new(&block.data, block.points, block.features);
                b.iter(|| {
                    model.partial_fit(&ds);
                    model.score(&ds)
                });
            });
        }
    }
    group.finish();
}

fn bench_compute_pool(c: &mut Criterion) {
    // The fixed cost of publishing one scoped job (empty closure): what the
    // per-message hot path pays for the *option* of fanning out. Persistent
    // workers keep this at one lock + condvar broadcast — no thread spawn.
    let mut group = c.benchmark_group("compute_pool");
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("scope_overhead", threads),
            &threads,
            |b, &threads| {
                let pool = ComputePool::new(threads);
                b.iter(|| pool.run(threads, |_| {}));
            },
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    const POINTS: usize = 1000;
    let mut generator = DataGenerator::new(DataGenConfig::paper(POINTS));
    let block = generator.next_block();
    group.throughput(Throughput::Bytes((POINTS * 32 * 8) as u64));
    group.bench_function("encode_f64", |b| {
        b.iter(|| codec::encode_with(codec::Codec::F64, &block, 0))
    });
    group.bench_function("encode_q16", |b| {
        b.iter(|| codec::encode_with(codec::Codec::Q16, &block, 0))
    });
    let f64_wire = codec::encode_with(codec::Codec::F64, &block, 0);
    let q16_wire = codec::encode_with(codec::Codec::Q16, &block, 0);
    group.bench_function("decode_f64", |b| b.iter(|| codec::decode_any(&f64_wire)));
    group.bench_function("decode_q16", |b| b.iter(|| codec::decode_any(&q16_wire)));
    group.finish();
}

fn bench_link_transfer(c: &mut Criterion) {
    // Propagation delay is charged per `transfer` call; a batch reservation
    // charges it once for the whole batch (transit still scales with the
    // summed bytes). The LAN profile keeps the real sleeps benchmarkable —
    // the per-message/batched ratio only widens on the WAN profiles, where
    // propagation is ~75 ms instead of sub-millisecond.
    let mut group = c.benchmark_group("link_transfer");
    group.sample_size(10);
    const MSGS: usize = 16;
    const BYTES: u64 = 6_400;
    group.throughput(Throughput::Bytes(MSGS as u64 * BYTES));
    group.bench_function("per_message", |b| {
        let link = profiles::lan("lan", 1).build();
        b.iter(|| {
            for _ in 0..MSGS {
                link.transfer(BYTES);
            }
        });
    });
    group.bench_function("batched", |b| {
        let link = profiles::lan("lan", 1).build();
        let sizes = [BYTES; MSGS];
        b.iter(|| link.reserve_batch(&sizes).wait());
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.bench_function("histogram_record", |b| {
        let mut h = pilot_metrics::Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000;
            h.record(v);
        });
    });
    group.finish();
}

fn bench_span_record(c: &mut Criterion) {
    // The monitoring fabric at fan-in scale: recording must stay O(1) and
    // contention-free (thread-pinned shards), reporting must stream spans
    // by reference (a clone of a ~1M-span store would dwarf the runs it
    // measures), and the hot counters must be bumpable without a name
    // lookup per message.
    let mut group = c.benchmark_group("span_record");
    group.bench_function("record", |b| {
        let registry = pilot_metrics::MetricsRegistry::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            registry.record(1, i, pilot_metrics::Component::Broker, i, i + 10, 1024);
        });
    });
    group.sample_size(10);
    group.bench_function("report_100k_spans", |b| {
        let registry = pilot_metrics::MetricsRegistry::new();
        for i in 0..100_000u64 {
            registry.record(1, i, pilot_metrics::Component::Broker, i, i + 10, 1024);
        }
        b.iter(|| registry.report());
    });
    group.bench_function("counter_lookup_per_event", |b| {
        let registry = pilot_metrics::MetricsRegistry::new();
        b.iter(|| registry.counter("messages_processed").incr());
    });
    group.bench_function("counter_cached_handle", |b| {
        let registry = pilot_metrics::MetricsRegistry::new();
        let handle = registry.counter("messages_processed");
        b.iter(|| handle.incr());
    });
    // The telemetry-plane ladder: what one stage-gauge update costs the
    // hot path. `gauge_off_option_check` is the telemetry-off shape (the
    // `Option` null check every stage pays when `telemetry_sample_ms` is
    // unset); `gauge_on_update` adds the relaxed atomic add behind a
    // cached handle; `gauge_lookup_per_event` shows why the stages cache
    // handles instead of resolving names per message.
    group.bench_function("gauge_off_option_check", |b| {
        let gauge: Option<Arc<pilot_metrics::Gauge>> = None;
        b.iter(|| {
            if let Some(g) = &gauge {
                g.incr();
            }
        });
    });
    group.bench_function("gauge_on_update", |b| {
        let registry = pilot_metrics::MetricsRegistry::new();
        let gauge = registry.gauge("producer.deadline_queue_depth");
        b.iter(|| gauge.incr());
    });
    group.bench_function("gauge_lookup_per_event", |b| {
        let registry = pilot_metrics::MetricsRegistry::new();
        b.iter(|| registry.gauge("producer.deadline_queue_depth").incr());
    });
    group.finish();
}

fn bench_offset_commit(c: &mut Criterion) {
    // The consumer-group commit path: the seed hashed (and on miss cloned)
    // the group and topic Strings per commit; interned ids make the key
    // Copy, and the batched variant takes the store lock once per poll
    // round instead of once per partition.
    let mut group = c.benchmark_group("offset_commit");
    const PARTS: usize = 64;
    let setup = || {
        let broker = Broker::new();
        broker
            .create_topic("fan-in-topic", PARTS, RetentionPolicy::unbounded())
            .unwrap();
        broker
    };
    group.bench_function("string_keys_per_partition", |b| {
        let broker = setup();
        let mut off = 0u64;
        b.iter(|| {
            off += 1;
            for p in 0..PARTS {
                broker.commit_offset("cloud-processors", "fan-in-topic", p, off);
            }
        });
    });
    group.bench_function("interned_per_partition", |b| {
        let broker = setup();
        let group_id = broker.group_id("cloud-processors");
        let topic_id = broker.topic_id("fan-in-topic");
        let mut off = 0u64;
        b.iter(|| {
            off += 1;
            for p in 0..PARTS {
                broker.commit_offset_by_id(group_id, topic_id, p, off);
            }
        });
    });
    group.bench_function("interned_batched", |b| {
        let broker = setup();
        let group_id = broker.group_id("cloud-processors");
        let topic_id = broker.topic_id("fan-in-topic");
        let mut off = 0u64;
        b.iter(|| {
            off += 1;
            broker.commit_offsets(group_id, topic_id, (0..PARTS).map(|p| (p, off)));
        });
    });
    group.finish();
}

/// The durable-log append ladder: the same 64 KiB append under each
/// storage shape, from the seed's memory-only log to fsync-per-append.
/// `group_commit` should sit within a small factor of `memory` (the
/// flusher thread absorbs the fsyncs); `fsync_each` shows the cliff the
/// group commit removes. Retention is bounded so the on-disk log recycles
/// segment files instead of filling the scratch disk.
fn bench_log_append(c: &mut Criterion) {
    use pilot_broker::{DurabilityConfig, SyncPolicy};
    const SIZE: usize = 65_536;
    let mut group = c.benchmark_group("log_append");
    group.throughput(Throughput::Bytes(SIZE as u64));
    let shapes: [(&str, Option<SyncPolicy>); 4] = [
        ("memory", None),
        ("durable_nofsync", Some(SyncPolicy::OsOnly)),
        ("group_commit", Some(SyncPolicy::group_commit_default())),
        ("fsync_each", Some(SyncPolicy::EachAppend)),
    ];
    for (label, policy) in shapes {
        group.bench_function(label, |b| {
            let dir = std::env::temp_dir()
                .join(format!("pilot-micro-log-{}-{label}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let broker = Broker::new();
            match policy {
                None => broker
                    .create_topic("t", 1, RetentionPolicy::by_records(4096))
                    .unwrap(),
                Some(p) => broker
                    .create_topic_durable(
                        "t",
                        1,
                        RetentionPolicy::by_records(4096),
                        &DurabilityConfig::new(&dir).with_policy(p),
                    )
                    .unwrap(),
            }
            let payload = bytes::Bytes::from(vec![7u8; SIZE]);
            b.iter(|| broker.append("t", 0, Record::new(payload.clone())).unwrap());
            drop(broker);
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

/// The parameter-plane ladder behind the federation merge loop: reading
/// 64 cell keys per merge round, per-key vs batched. `get_many` and
/// `get_many_if_newer` group keys by shard and take each shard lock once
/// per batch — one lock round per *shard*, not per *cell* — which is what
/// keeps a 1024-cell parameter plane off the lock-acquisition cliff.
/// `put_many` is the regions' fan-down write-back path.
fn bench_params_ops(c: &mut Criterion) {
    use pilot_params::ParameterServer;
    const KEYS: usize = 64;
    const DIM: usize = 33; // [samples, 32-feature model]
    let keys: Vec<String> = (0..KEYS).map(|k| format!("cell:{k}")).collect();
    let seeded = || {
        let server = ParameterServer::new();
        for key in &keys {
            server.put(key, vec![1.0; DIM]);
        }
        server
    };
    let mut group = c.benchmark_group("params_ops");
    group.bench_function("get_per_key", |b| {
        let server = seeded();
        b.iter(|| keys.iter().map(|k| server.get(k)).collect::<Vec<_>>());
    });
    group.bench_function("get_many_batched", |b| {
        let server = seeded();
        b.iter(|| server.get_many(&keys));
    });
    group.bench_function("get_if_newer_per_key", |b| {
        let server = seeded();
        b.iter(|| {
            keys.iter()
                .map(|k| server.get_if_newer(k, 0))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("get_many_if_newer_batched", |b| {
        let server = seeded();
        let reqs: Vec<(String, u64)> = keys.iter().map(|k| (k.clone(), 0u64)).collect();
        b.iter(|| server.get_many_if_newer(&reqs));
    });
    group.bench_function("put_per_key", |b| {
        let server = seeded();
        b.iter(|| {
            for key in &keys {
                server.put(key, vec![1.0; DIM]);
            }
        });
    });
    group.bench_function("put_many_batched", |b| {
        let server = seeded();
        b.iter(|| {
            server.put_many(
                keys.iter()
                    .map(|k| (k.clone(), vec![1.0; DIM]))
                    .collect::<Vec<_>>(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_broker,
    bench_log_append,
    bench_models,
    bench_compute_pool,
    bench_codec,
    bench_link_transfer,
    bench_metrics,
    bench_span_record,
    bench_offset_commit,
    bench_params_ops
);
criterion_main!(benches);
