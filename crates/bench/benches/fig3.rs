//! Criterion bench for the Fig. 3 grid: per-model pipeline cost at a fixed
//! message size, local links. The model ordering (baseline < k-means <
//! isolation forest < auto-encoder per-message cost) is the figure's core
//! result and shows directly in these timings.
//!
//! Run: `cargo bench -p pilot-bench --bench fig3`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_bench::{run_cell, CellOpts, Geo};
use pilot_datagen::serialized_size;
use pilot_ml::ModelKind;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_models");
    group.sample_size(10);
    let messages = 3usize;
    let devices = 2usize;
    let points = 1000usize;
    for model in ModelKind::all() {
        let total_bytes = (serialized_size(points, 32) * messages * devices) as u64;
        group.throughput(Throughput::Bytes(total_bytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &model,
            |b, &model| {
                b.iter(|| {
                    run_cell(&CellOpts {
                        points,
                        devices,
                        model,
                        messages_per_device: messages,
                        geo: Geo::Local,
                        ..CellOpts::default()
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
