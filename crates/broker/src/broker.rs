//! The broker: topic registry + consumer-group offset store.

use crate::error::BrokerError;
use crate::log::ReadError;
use crate::record::{Offset, Record};
use crate::retention::RetentionPolicy;
use crate::topic::Topic;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A shareable in-process broker. Clone handles freely (`Arc` inside).
///
/// In the paper's architecture the broker runs inside its own pilot (e.g. a
/// dedicated LRZ VM, allocated in "step 1"); here the broker is an object
/// that the `pilot-core` broker-plugin hosts on a simulated pilot, with
/// `pilot-netsim` links charging the transport to and from it.
/// # Example
///
/// ```
/// use pilot_broker::{Broker, Record, RetentionPolicy};
/// use std::time::Duration;
///
/// let broker = Broker::new();
/// broker.create_topic("sensors", 2, RetentionPolicy::default()).unwrap();
/// broker.append("sensors", 0, Record::new(&b"reading"[..])).unwrap();
/// let records = broker.fetch("sensors", 0, 0, 10, Duration::ZERO).unwrap();
/// assert_eq!(records[0].value.as_ref(), b"reading");
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

/// An interned topic name: a stable, `Copy` key for the hot-path offset
/// store. Ids survive topic deletion and re-creation (like the names they
/// intern), so committed offsets behave exactly as with string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(u32);

/// An interned consumer-group name (see [`TopicId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(u32);

/// The offset store's key: three machine words, hashed without touching a
/// heap allocation — the per-message commit path stops rehashing two owned
/// `String`s per lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OffsetKey {
    group: GroupId,
    topic: TopicId,
    partition: u32,
}

/// Intern `name` into `map`, assigning the next dense id on first sight.
/// Entries are never removed, so `len()` is a valid id source.
fn intern(map: &RwLock<HashMap<String, u32>>, name: &str) -> u32 {
    if let Some(&id) = map.read().get(name) {
        return id;
    }
    let mut w = map.write();
    let next = w.len() as u32;
    *w.entry(name.to_string()).or_insert(next)
}

struct Inner {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    /// Interned topic names. Insert-only: ids stay valid across topic
    /// deletion, preserving the string-keyed offset semantics.
    topic_ids: RwLock<HashMap<String, u32>>,
    /// Interned consumer-group names. Insert-only.
    group_ids: RwLock<HashMap<String, u32>>,
    /// (group, topic, partition) → committed offset, keyed by interned ids.
    offsets: RwLock<HashMap<OffsetKey, Offset>>,
}

impl Broker {
    /// Create an empty broker.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                topics: RwLock::new(HashMap::new()),
                topic_ids: RwLock::new(HashMap::new()),
                group_ids: RwLock::new(HashMap::new()),
                offsets: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Intern a topic name into a stable [`TopicId`]. Cheap after the first
    /// call for a given name; consumers cache the id and commit offsets
    /// without re-hashing strings.
    pub fn topic_id(&self, name: &str) -> TopicId {
        TopicId(intern(&self.inner.topic_ids, name))
    }

    /// Intern a consumer-group name into a stable [`GroupId`].
    pub fn group_id(&self, name: &str) -> GroupId {
        GroupId(intern(&self.inner.group_ids, name))
    }

    /// Create a topic. Errors if it already exists with a different
    /// partition count; re-creating with the same count is a no-op
    /// (mirroring the framework's "automatically created Kafka topic").
    /// An existing *durable* topic of the same name is a
    /// [`BrokerError::DurabilityMismatch`], not a silent no-op — the caller
    /// asked for memory-only semantics it would not get.
    pub fn create_topic(
        &self,
        name: &str,
        partitions: usize,
        retention: RetentionPolicy,
    ) -> Result<(), BrokerError> {
        let mut topics = self.inner.topics.write();
        if let Some(existing) = topics.get(name) {
            if existing.partition_count() != partitions {
                return Err(BrokerError::TopicExists {
                    topic: name.to_string(),
                    partitions: existing.partition_count(),
                });
            }
            if existing.is_durable() {
                return Err(BrokerError::DurabilityMismatch {
                    topic: name.to_string(),
                    existing_durable: true,
                });
            }
            return Ok(());
        }
        topics.insert(
            name.to_string(),
            Arc::new(Topic::new(name, partitions, retention)),
        );
        Ok(())
    }

    /// Create a *durable* topic: partitions persist to
    /// `cfg.dir/p{n}/` through the storage engine (see
    /// [`Topic::new_durable`]). Re-creation semantics match
    /// [`Broker::create_topic`] — an existing *durable* topic with the same
    /// partition count is left as-is (its open log keeps running; it is
    /// **not** re-recovered), while an existing memory-only topic is a
    /// [`BrokerError::DurabilityMismatch`]: returning `Ok` would let the
    /// caller believe its appends persist when nothing reaches disk.
    /// Reopening after a restart recovers the on-disk log, truncating any
    /// torn tail.
    pub fn create_topic_durable(
        &self,
        name: &str,
        partitions: usize,
        retention: RetentionPolicy,
        cfg: &crate::storage::DurabilityConfig,
    ) -> Result<(), BrokerError> {
        let mut topics = self.inner.topics.write();
        if let Some(existing) = topics.get(name) {
            if existing.partition_count() != partitions {
                return Err(BrokerError::TopicExists {
                    topic: name.to_string(),
                    partitions: existing.partition_count(),
                });
            }
            if !existing.is_durable() {
                return Err(BrokerError::DurabilityMismatch {
                    topic: name.to_string(),
                    existing_durable: false,
                });
            }
            return Ok(());
        }
        let topic = Topic::new_durable(name, partitions, retention, cfg)
            .map_err(|e| BrokerError::Storage(format!("open durable topic '{name}': {e}")))?;
        topics.insert(name.to_string(), Arc::new(topic));
        Ok(())
    }

    /// Aggregate storage-engine stats across every topic (the
    /// `broker.log.*` telemetry gauges sample this). Cheap for memory-only
    /// brokers: per-topic segment counts plus a handful of atomic loads.
    pub fn log_stats(&self) -> crate::storage::LogStats {
        let topics: Vec<Arc<Topic>> = self.inner.topics.read().values().cloned().collect();
        let mut out = crate::storage::LogStats::default();
        for t in topics {
            out.merge(&t.log_stats());
        }
        out
    }

    /// Force an fsync cycle on every durable topic (clean-shutdown hook).
    /// Returns total bytes retired.
    pub fn sync_all(&self) -> u64 {
        let topics: Vec<Arc<Topic>> = self.inner.topics.read().values().cloned().collect();
        topics.iter().map(|t| t.sync()).sum()
    }

    /// Look up a topic handle.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>, BrokerError> {
        self.inner
            .topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    /// Topic names currently registered.
    pub fn topic_names(&self) -> Vec<String> {
        self.inner.topics.read().keys().cloned().collect()
    }

    /// Append a record to `topic`/`partition`.
    pub fn append(
        &self,
        topic: &str,
        partition: usize,
        record: Record,
    ) -> Result<Offset, BrokerError> {
        let t = self.topic(topic)?;
        t.append(partition, record)
            .ok_or_else(|| BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })
    }

    /// Fetch up to `max` records at `offset`, blocking up to `timeout` for
    /// data to arrive.
    pub fn fetch(
        &self,
        topic: &str,
        partition: usize,
        offset: Offset,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<Record>, BrokerError> {
        let t = self.topic(topic)?;
        match t.read_wait(partition, offset, max, timeout) {
            None => Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            }),
            Some(Ok(recs)) => Ok(recs),
            Some(Err(ReadError::Trimmed(log_start))) => Err(BrokerError::OffsetOutOfRange {
                requested: offset,
                log_start,
                high_watermark: t.high_watermark(partition).unwrap_or(log_start),
            }),
            Some(Err(ReadError::Storage(msg))) => Err(BrokerError::Storage(msg)),
        }
    }

    /// High watermark of a partition.
    pub fn high_watermark(&self, topic: &str, partition: usize) -> Result<Offset, BrokerError> {
        let t = self.topic(topic)?;
        t.high_watermark(partition)
            .ok_or_else(|| BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })
    }

    /// Delete a topic (consumers with open handles keep theirs; new
    /// lookups fail). Returns true if the topic existed.
    pub fn delete_topic(&self, name: &str) -> bool {
        self.inner.topics.write().remove(name).is_some()
    }

    /// First offset at/after `ts_us` in a partition (Kafka's
    /// `offsetsForTimes`) — lets consumers start from "messages newer than
    /// T" instead of an offset.
    pub fn offset_for_timestamp(
        &self,
        topic: &str,
        partition: usize,
        ts_us: u64,
    ) -> Result<Offset, BrokerError> {
        let t = self.topic(topic)?;
        t.offset_for_timestamp(partition, ts_us)
            .ok_or_else(|| BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })
    }

    /// Commit a consumer-group offset (the *next* offset to read).
    ///
    /// Interns the group and topic names (a read-lock hash of `&str`, no
    /// allocation after first use) — the per-message hot path no longer
    /// clones two `String`s per commit. Hot loops should intern once via
    /// [`Broker::group_id`]/[`Broker::topic_id`] and use
    /// [`Broker::commit_offset_by_id`] or [`Broker::commit_offsets`].
    pub fn commit_offset(&self, group: &str, topic: &str, partition: usize, offset: Offset) {
        let key = OffsetKey {
            group: self.group_id(group),
            topic: self.topic_id(topic),
            partition: partition as u32,
        };
        self.inner.offsets.write().insert(key, offset);
    }

    /// Commit an offset under pre-interned ids: three-word key, one write
    /// lock, zero allocation.
    pub fn commit_offset_by_id(
        &self,
        group: GroupId,
        topic: TopicId,
        partition: usize,
        offset: Offset,
    ) {
        let key = OffsetKey {
            group,
            topic,
            partition: partition as u32,
        };
        self.inner.offsets.write().insert(key, offset);
    }

    /// Batched commit: all of a member's partition offsets land under one
    /// write lock — a member owning 128 partitions pays one lock instead
    /// of 128.
    pub fn commit_offsets(
        &self,
        group: GroupId,
        topic: TopicId,
        entries: impl IntoIterator<Item = (usize, Offset)>,
    ) {
        let mut offsets = self.inner.offsets.write();
        for (partition, offset) in entries {
            offsets.insert(
                OffsetKey {
                    group,
                    topic,
                    partition: partition as u32,
                },
                offset,
            );
        }
    }

    /// Last committed offset for a group (None if never committed).
    pub fn committed(&self, group: &str, topic: &str, partition: usize) -> Option<Offset> {
        let group = GroupId(*self.inner.group_ids.read().get(group)?);
        let topic = TopicId(*self.inner.topic_ids.read().get(topic)?);
        self.committed_by_id(group, topic, partition)
    }

    /// Last committed offset under pre-interned ids.
    pub fn committed_by_id(
        &self,
        group: GroupId,
        topic: TopicId,
        partition: usize,
    ) -> Option<Offset> {
        self.inner
            .offsets
            .read()
            .get(&OffsetKey {
                group,
                topic,
                partition: partition as u32,
            })
            .copied()
    }

    /// Consumer-group lag: high watermark − committed, per partition.
    pub fn lag(&self, group: &str, topic: &str) -> Result<Vec<u64>, BrokerError> {
        Ok(self
            .partition_lags(group, topic)?
            .into_iter()
            .map(|p| p.lag())
            .collect())
    }

    /// Per-partition consumer position detail: committed offset vs. head
    /// offset (high watermark) for every partition of `topic` under
    /// `group`. This is the accessor the telemetry sampler's lag probe
    /// uses — unlike [`Self::lag`] it keeps both sides of the subtraction,
    /// so a dashboard can distinguish "idle, fully caught up" from "idle,
    /// nothing produced yet".
    pub fn partition_lags(
        &self,
        group: &str,
        topic: &str,
    ) -> Result<Vec<PartitionLag>, BrokerError> {
        let t = self.topic(topic)?;
        Ok((0..t.partition_count())
            .map(|partition| PartitionLag {
                partition,
                committed: self.committed(group, topic, partition).unwrap_or(0),
                head: t.high_watermark(partition).unwrap_or(0),
            })
            .collect())
    }
}

/// One partition's consumer position: committed vs. head offset (see
/// [`Broker::partition_lags`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionLag {
    /// Partition index within the topic.
    pub partition: usize,
    /// Last committed offset of the consumer group (0 if none).
    pub committed: u64,
    /// Head offset (high watermark) of the partition.
    pub head: u64,
}

impl PartitionLag {
    /// Records appended but not yet committed by the group.
    pub fn lag(&self) -> u64 {
        self.head.saturating_sub(self.committed)
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: &str) -> Record {
        Record::new(bytes::Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn create_and_append_fetch() {
        let b = Broker::new();
        b.create_topic("t", 2, RetentionPolicy::unbounded())
            .unwrap();
        assert_eq!(b.append("t", 0, rec("hello")).unwrap(), 0);
        assert_eq!(b.append("t", 0, rec("world")).unwrap(), 1);
        let recs = b.fetch("t", 0, 0, 10, Duration::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].value.as_ref(), b"world");
    }

    #[test]
    fn recreate_same_partitions_ok() {
        let b = Broker::new();
        b.create_topic("t", 4, RetentionPolicy::unbounded())
            .unwrap();
        assert!(b.create_topic("t", 4, RetentionPolicy::unbounded()).is_ok());
        assert_eq!(
            b.create_topic("t", 8, RetentionPolicy::unbounded()),
            Err(BrokerError::TopicExists {
                topic: "t".into(),
                partitions: 4
            })
        );
    }

    #[test]
    fn unknown_topic_errors() {
        let b = Broker::new();
        assert_eq!(
            b.append("nope", 0, rec("x")),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
        assert!(matches!(
            b.fetch("nope", 0, 0, 1, Duration::ZERO),
            Err(BrokerError::UnknownTopic(_))
        ));
    }

    #[test]
    fn unknown_partition_errors() {
        let b = Broker::new();
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        assert!(matches!(
            b.append("t", 3, rec("x")),
            Err(BrokerError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn offset_commit_roundtrip() {
        let b = Broker::new();
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        assert_eq!(b.committed("g", "t", 0), None);
        b.commit_offset("g", "t", 0, 42);
        assert_eq!(b.committed("g", "t", 0), Some(42));
        // Groups are independent.
        assert_eq!(b.committed("other", "t", 0), None);
    }

    #[test]
    fn lag_reflects_unconsumed() {
        let b = Broker::new();
        b.create_topic("t", 2, RetentionPolicy::unbounded())
            .unwrap();
        for _ in 0..5 {
            b.append("t", 0, rec("x")).unwrap();
        }
        b.append("t", 1, rec("x")).unwrap();
        b.commit_offset("g", "t", 0, 3);
        assert_eq!(b.lag("g", "t").unwrap(), vec![2, 1]);
    }

    #[test]
    fn partition_lags_expose_both_sides() {
        let b = Broker::new();
        b.create_topic("t", 2, RetentionPolicy::unbounded())
            .unwrap();
        for _ in 0..5 {
            b.append("t", 0, rec("x")).unwrap();
        }
        b.commit_offset("g", "t", 0, 3);
        let lags = b.partition_lags("g", "t").unwrap();
        assert_eq!(
            lags[0],
            PartitionLag {
                partition: 0,
                committed: 3,
                head: 5
            }
        );
        assert_eq!(lags[0].lag(), 2);
        // "Idle, nothing produced" is distinguishable from "caught up":
        // both lag 0, but committed/head differ.
        assert_eq!(
            lags[1],
            PartitionLag {
                partition: 1,
                committed: 0,
                head: 0
            }
        );
        assert!(b.partition_lags("g", "missing").is_err());
    }

    #[test]
    fn clones_share_state() {
        let a = Broker::new();
        let b = a.clone();
        a.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        assert!(b.topic("t").is_ok());
    }

    #[test]
    fn delete_topic_removes_lookup() {
        let b = Broker::new();
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        assert!(b.delete_topic("t"));
        assert!(!b.delete_topic("t"));
        assert!(b.topic("t").is_err());
    }

    #[test]
    fn recreate_with_different_durability_errors() {
        let dir = std::env::temp_dir().join(format!(
            "pilot-broker-durability-mismatch-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = crate::storage::DurabilityConfig::new(&dir);
        let b = Broker::new();
        b.create_topic("mem", 1, RetentionPolicy::unbounded())
            .unwrap();
        // Memory-only exists: a durable create must not claim persistence.
        assert_eq!(
            b.create_topic_durable("mem", 1, RetentionPolicy::unbounded(), &cfg),
            Err(BrokerError::DurabilityMismatch {
                topic: "mem".into(),
                existing_durable: false
            })
        );
        b.create_topic_durable("dur", 1, RetentionPolicy::unbounded(), &cfg)
            .unwrap();
        // Durable exists: idempotent durable re-create is fine …
        assert!(b
            .create_topic_durable("dur", 1, RetentionPolicy::unbounded(), &cfg)
            .is_ok());
        // … but a memory-only create of the same name is a mismatch.
        assert_eq!(
            b.create_topic("dur", 1, RetentionPolicy::unbounded()),
            Err(BrokerError::DurabilityMismatch {
                topic: "dur".into(),
                existing_durable: true
            })
        );
        // Partition-count mismatch still reports TopicExists first.
        assert!(matches!(
            b.create_topic_durable("mem", 2, RetentionPolicy::unbounded(), &cfg),
            Err(BrokerError::TopicExists { .. })
        ));
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offset_for_timestamp_via_broker() {
        let b = Broker::new();
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        for ts in [100u64, 200, 300] {
            b.append("t", 0, Record::new(vec![1u8]).with_timestamp(ts))
                .unwrap();
        }
        assert_eq!(b.offset_for_timestamp("t", 0, 150).unwrap(), 1);
        assert_eq!(b.offset_for_timestamp("t", 0, 301).unwrap(), 3);
        assert!(b.offset_for_timestamp("t", 9, 0).is_err());
    }

    #[test]
    fn interned_ids_are_stable_and_interoperate_with_strings() {
        let b = Broker::new();
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        let g = b.group_id("g");
        let t = b.topic_id("t");
        assert_eq!(b.group_id("g"), g);
        assert_eq!(b.topic_id("t"), t);
        assert_ne!(b.topic_id("other"), t);
        // Commit by id, read by string (and vice versa).
        b.commit_offset_by_id(g, t, 0, 7);
        assert_eq!(b.committed("g", "t", 0), Some(7));
        b.commit_offset("g", "t", 0, 9);
        assert_eq!(b.committed_by_id(g, t, 0), Some(9));
    }

    #[test]
    fn batched_commit_covers_all_partitions() {
        let b = Broker::new();
        b.create_topic("t", 4, RetentionPolicy::unbounded())
            .unwrap();
        let g = b.group_id("g");
        let t = b.topic_id("t");
        b.commit_offsets(g, t, (0..4).map(|p| (p, p as u64 * 10)));
        for p in 0..4 {
            assert_eq!(b.committed("g", "t", p), Some(p as u64 * 10));
        }
    }

    #[test]
    fn offsets_survive_topic_recreation() {
        // Ids intern names, not topic instances: delete + recreate keeps
        // the committed offsets, exactly as the string-keyed store did.
        let b = Broker::new();
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        b.commit_offset("g", "t", 0, 5);
        b.delete_topic("t");
        b.create_topic("t", 1, RetentionPolicy::unbounded())
            .unwrap();
        assert_eq!(b.committed("g", "t", 0), Some(5));
    }

    #[test]
    fn fetch_out_of_range_after_retention() {
        let b = Broker::new();
        b.create_topic(
            "t",
            1,
            RetentionPolicy::by_records(crate::log::SEGMENT_RECORDS as u64),
        )
        .unwrap();
        for _ in 0..(crate::log::SEGMENT_RECORDS * 2 + 1) {
            b.append("t", 0, rec("x")).unwrap();
        }
        let err = b.fetch("t", 0, 0, 1, Duration::ZERO).unwrap_err();
        assert!(matches!(err, BrokerError::OffsetOutOfRange { .. }));
    }
}
