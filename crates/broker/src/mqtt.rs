//! An MQTT-style pub/sub broker for low-power edge environments.
//!
//! The paper: "Brokering concerns are also encapsulated using a plugin
//! mechanism. Support for further brokering framework, e.g., MQTT for
//! low-performance and low-power environments, can easily be added"
//! (Section II-B). This module adds that second brokering plugin: a
//! topic-tree publish/subscribe broker with MQTT's semantics where they
//! differ from Kafka's —
//!
//! * hierarchical topic names (`plant/line1/temp`) with `+` (single-level)
//!   and `#` (multi-level) subscription wildcards;
//! * push delivery into bounded per-subscriber queues instead of pull from
//!   a replayable log (no offsets, no history except *retained* messages);
//! * QoS 0 (fire-and-forget: a full subscriber queue drops the message) and
//!   QoS 1 (at-least-once: publish blocks until every QoS-1 subscriber has
//!   queue space);
//! * per-topic retained messages delivered immediately on subscribe.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// MQTT quality-of-service levels (QoS 2 is not modelled; the paper's
/// workloads never need exactly-once transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QoS {
    /// Fire and forget: delivery may drop at a full subscriber queue.
    AtMostOnce,
    /// At least once: the publisher blocks until the message is queued at
    /// every matching QoS-1 subscriber.
    AtLeastOnce,
}

/// A published message.
#[derive(Debug, Clone, PartialEq)]
pub struct MqttMessage {
    /// Full topic the message was published to.
    pub topic: String,
    pub payload: Bytes,
    /// Publisher-assigned timestamp (µs).
    pub timestamp_us: u64,
}

/// Validate a topic *name* (for publishing): non-empty levels, no wildcards.
pub fn valid_topic_name(topic: &str) -> bool {
    !topic.is_empty()
        && !topic.contains(['+', '#'])
        && topic.split('/').all(|level| !level.is_empty())
}

/// Validate a topic *filter* (for subscribing): wildcards allowed, `#` only
/// at the end and alone in its level, `+` alone in its level.
pub fn valid_topic_filter(filter: &str) -> bool {
    if filter.is_empty() {
        return false;
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        if level.is_empty() {
            return false;
        }
        if level.contains('#') && (*level != "#" || i != levels.len() - 1) {
            return false;
        }
        if level.contains('+') && *level != "+" {
            return false;
        }
    }
    true
}

/// MQTT topic matching: does `filter` (with wildcards) match `topic`?
pub fn topic_matches(filter: &str, topic: &str) -> bool {
    let mut f = filter.split('/');
    let mut t = topic.split('/');
    loop {
        match (f.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => continue,
            (Some(fl), Some(tl)) if fl == tl => continue,
            (None, None) => return true,
            _ => return false,
        }
    }
}

struct SubscriberQueue {
    queue: VecDeque<MqttMessage>,
    capacity: usize,
    closed: bool,
    /// Receivers currently blocked in [`Subscription::recv`]. Publishers
    /// notify only when this is non-zero — no waiter, no syscall.
    msg_waiters: usize,
    /// QoS-1 publishers currently blocked on a full queue; receivers
    /// notify only when this is non-zero.
    space_waiters: usize,
    /// Wakes that found the queue still empty (should stay ~0: wakes are
    /// only issued to counted waiters after a push).
    spurious_wakes: u64,
}

/// (queue, message-available condvar, space-available condvar)
type SharedQueue = Arc<(Mutex<SubscriberQueue>, Condvar, Condvar)>;

struct SubEntry {
    filter: String,
    qos: QoS,
    queue: SharedQueue,
    // condvar 0: message available; condvar 1: space available
}

#[derive(Default)]
struct MqttState {
    subs: HashMap<u64, SubEntry>,
    retained: HashMap<String, MqttMessage>,
    next_sub_id: u64,
}

/// Counters live outside the state mutex: the QoS-0 drop path increments
/// `dropped` while holding a subscriber-queue lock, and taking the state
/// lock there would invert the `state → queue` order used by subscribe and
/// unsubscribe (an ABBA deadlock).
#[derive(Default)]
struct Inner {
    state: Mutex<MqttState>,
    published: AtomicU64,
    dropped: AtomicU64,
    /// Condvar notifications actually issued by publish/recv (close-time
    /// broadcasts excluded). With waiter-gated wakes this tracks *useful*
    /// wakeups: publishing into an undrained mailbox issues none.
    notified: AtomicU64,
}

/// The broker. Clone handles freely.
#[derive(Clone, Default)]
pub struct MqttBroker {
    inner: Arc<Inner>,
}

/// A subscription handle: a bounded mailbox of matching messages.
pub struct Subscription {
    broker: MqttBroker,
    id: u64,
    queue: SharedQueue,
}

impl MqttBroker {
    /// Create an empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a message. Returns the number of subscribers it was
    /// delivered to, or an error for an invalid topic name.
    ///
    /// `retain` stores the message as the topic's retained message,
    /// delivered to future subscribers on subscribe.
    pub fn publish(
        &self,
        topic: &str,
        payload: impl Into<Bytes>,
        qos: QoS,
        retain: bool,
        timestamp_us: u64,
    ) -> Result<usize, String> {
        if !valid_topic_name(topic) {
            return Err(format!("invalid topic name '{topic}'"));
        }
        let msg = MqttMessage {
            topic: topic.to_string(),
            payload: payload.into(),
            timestamp_us,
        };
        // Snapshot matching subscribers under the broker lock, then deliver
        // without holding it (QoS 1 delivery can block).
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        let targets: Vec<(QoS, SharedQueue)> = {
            let mut st = self.inner.state.lock();
            if retain {
                st.retained.insert(topic.to_string(), msg.clone());
            }
            st.subs
                .values()
                .filter(|s| topic_matches(&s.filter, topic))
                .map(|s| (s.qos, Arc::clone(&s.queue)))
                .collect()
        };
        let mut delivered = 0;
        for (sub_qos, q) in targets {
            let (lock, msg_avail, space_avail) = &*q;
            let mut guard = lock.lock();
            // Effective QoS is the min of publish and subscribe QoS
            // (MQTT's "granted QoS").
            let effective = if qos == QoS::AtLeastOnce && sub_qos == QoS::AtLeastOnce {
                QoS::AtLeastOnce
            } else {
                QoS::AtMostOnce
            };
            // Wake exactly one counted waiter, and only *after* releasing
            // the queue lock: the woken receiver takes the lock immediately,
            // so notifying while still holding it would bounce it straight
            // back to sleep on the mutex ("hurry up and wait"). No waiter →
            // no notification at all — at cell fan-in scale most publishes
            // land in an undrained mailbox, and skipping the futex syscall
            // there is the point.
            match effective {
                QoS::AtMostOnce => {
                    if guard.queue.len() < guard.capacity {
                        guard.queue.push_back(msg.clone());
                        let wake = guard.msg_waiters > 0;
                        drop(guard);
                        if wake {
                            self.inner.notified.fetch_add(1, Ordering::Relaxed);
                            msg_avail.notify_one();
                        }
                        delivered += 1;
                    } else {
                        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                QoS::AtLeastOnce => {
                    while guard.queue.len() >= guard.capacity && !guard.closed {
                        guard.space_waiters += 1;
                        space_avail.wait(&mut guard);
                        guard.space_waiters -= 1;
                    }
                    if !guard.closed {
                        guard.queue.push_back(msg.clone());
                        let wake = guard.msg_waiters > 0;
                        drop(guard);
                        if wake {
                            self.inner.notified.fetch_add(1, Ordering::Relaxed);
                            msg_avail.notify_one();
                        }
                        delivered += 1;
                    }
                }
            }
        }
        Ok(delivered)
    }

    /// Subscribe to a topic filter with a bounded mailbox of `capacity`
    /// messages. Retained messages matching the filter are delivered
    /// immediately.
    pub fn subscribe(
        &self,
        filter: &str,
        qos: QoS,
        capacity: usize,
    ) -> Result<Subscription, String> {
        if !valid_topic_filter(filter) {
            return Err(format!("invalid topic filter '{filter}'"));
        }
        let capacity = capacity.max(1);
        let queue = Arc::new((
            Mutex::new(SubscriberQueue {
                queue: VecDeque::new(),
                capacity,
                closed: false,
                msg_waiters: 0,
                space_waiters: 0,
                spurious_wakes: 0,
            }),
            Condvar::new(),
            Condvar::new(),
        ));
        let id = {
            let mut st = self.inner.state.lock();
            let id = st.next_sub_id;
            st.next_sub_id += 1;
            // Retained delivery (up to capacity).
            {
                let mut q = queue.0.lock();
                for msg in st.retained.values() {
                    if topic_matches(filter, &msg.topic) && q.queue.len() < q.capacity {
                        q.queue.push_back(msg.clone());
                    }
                }
            }
            st.subs.insert(
                id,
                SubEntry {
                    filter: filter.to_string(),
                    qos,
                    queue: Arc::clone(&queue),
                },
            );
            id
        };
        Ok(Subscription {
            broker: self.clone(),
            id,
            queue,
        })
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.inner.published.load(Ordering::Relaxed)
    }

    /// QoS-0 messages dropped at full subscriber queues.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Condvar notifications issued by publish/recv so far (close-time
    /// broadcasts excluded). Wakes are gated on counted waiters, so this
    /// measures wakeups that had someone to wake — the regression guard for
    /// the "one futex syscall per publish, waiter or not" overhead.
    pub fn notifications(&self) -> u64 {
        self.inner.notified.load(Ordering::Relaxed)
    }

    /// Active subscription count.
    pub fn subscriber_count(&self) -> usize {
        self.inner.state.lock().subs.len()
    }

    /// The retained message for a topic, if any.
    pub fn retained(&self, topic: &str) -> Option<MqttMessage> {
        self.inner.state.lock().retained.get(topic).cloned()
    }
}

impl std::fmt::Debug for MqttBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MqttBroker")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

impl Subscription {
    /// Receive the next message, blocking up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<MqttMessage> {
        let (lock, msg_avail, space_avail) = &*self.queue;
        let mut guard = lock.lock();
        loop {
            if let Some(msg) = guard.queue.pop_front() {
                // Wake one blocked QoS-1 publisher, outside the lock, only
                // if one is actually waiting (see the publish-side comment).
                let wake = guard.space_waiters > 0;
                drop(guard);
                if wake {
                    self.broker.inner.notified.fetch_add(1, Ordering::Relaxed);
                    space_avail.notify_one();
                }
                return Some(msg);
            }
            if guard.closed {
                return None;
            }
            guard.msg_waiters += 1;
            let timed_out = msg_avail.wait_for(&mut guard, timeout).timed_out();
            guard.msg_waiters -= 1;
            if timed_out {
                return None;
            }
            if guard.queue.is_empty() && !guard.closed {
                guard.spurious_wakes += 1;
            }
        }
    }

    /// Try to receive without blocking.
    pub fn try_recv(&self) -> Option<MqttMessage> {
        self.recv(Duration::ZERO)
    }

    /// Messages currently buffered.
    pub fn backlog(&self) -> usize {
        self.queue.0.lock().queue.len()
    }

    /// Wakes this subscription received that found nothing to read. Wakes
    /// are only issued to counted waiters right after a push, so anything
    /// beyond OS-level condvar noise here is a broker bug.
    pub fn spurious_wakes(&self) -> u64 {
        self.queue.0.lock().spurious_wakes
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Unsubscribe and release any QoS-1 publisher blocked on our queue.
        self.broker.inner.state.lock().subs.remove(&self.id);
        let (lock, msg_avail, space_avail) = &*self.queue;
        let mut guard = lock.lock();
        guard.closed = true;
        msg_avail.notify_all();
        space_avail.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_name_validation() {
        assert!(valid_topic_name("plant/line1/temp"));
        assert!(!valid_topic_name(""));
        assert!(!valid_topic_name("plant//temp"));
        assert!(!valid_topic_name("plant/+/temp"));
        assert!(!valid_topic_name("plant/#"));
    }

    #[test]
    fn topic_filter_validation() {
        assert!(valid_topic_filter("plant/+/temp"));
        assert!(valid_topic_filter("plant/#"));
        assert!(valid_topic_filter("#"));
        assert!(!valid_topic_filter("plant/#/temp"));
        assert!(!valid_topic_filter("plant/te#mp"));
        assert!(!valid_topic_filter("plant/te+mp"));
        assert!(!valid_topic_filter(""));
    }

    #[test]
    fn matching_rules() {
        assert!(topic_matches("a/b/c", "a/b/c"));
        assert!(!topic_matches("a/b/c", "a/b"));
        assert!(topic_matches("a/+/c", "a/b/c"));
        assert!(!topic_matches("a/+/c", "a/b/d"));
        assert!(topic_matches("a/#", "a/b/c/d"));
        assert!(topic_matches("a/#", "a"));
        assert!(topic_matches("#", "anything/at/all"));
        assert!(!topic_matches("a/+", "a/b/c"));
    }

    #[test]
    fn publish_subscribe_roundtrip() {
        let b = MqttBroker::new();
        let sub = b.subscribe("plant/+/temp", QoS::AtMostOnce, 8).unwrap();
        let n = b
            .publish("plant/line1/temp", &b"21.5"[..], QoS::AtMostOnce, false, 0)
            .unwrap();
        assert_eq!(n, 1);
        let msg = sub.recv(Duration::from_millis(100)).unwrap();
        assert_eq!(msg.topic, "plant/line1/temp");
        assert_eq!(msg.payload.as_ref(), b"21.5");
    }

    #[test]
    fn non_matching_topic_not_delivered() {
        let b = MqttBroker::new();
        let sub = b.subscribe("plant/line1/temp", QoS::AtMostOnce, 8).unwrap();
        b.publish("plant/line2/temp", &b"x"[..], QoS::AtMostOnce, false, 0)
            .unwrap();
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn qos0_drops_at_full_queue() {
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtMostOnce, 2).unwrap();
        for i in 0..5 {
            b.publish("t", vec![i], QoS::AtMostOnce, false, 0).unwrap();
        }
        assert_eq!(sub.backlog(), 2);
        assert_eq!(b.dropped(), 3);
    }

    #[test]
    fn qos1_blocks_until_space() {
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtLeastOnce, 1).unwrap();
        b.publish("t", &b"1"[..], QoS::AtLeastOnce, false, 0)
            .unwrap();
        // Second publish must block until the subscriber drains.
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            b2.publish("t", &b"2"[..], QoS::AtLeastOnce, false, 0)
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "publish should be blocked");
        assert_eq!(
            sub.recv(Duration::from_millis(100))
                .unwrap()
                .payload
                .as_ref(),
            b"1"
        );
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(
            sub.recv(Duration::from_millis(100))
                .unwrap()
                .payload
                .as_ref(),
            b"2"
        );
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn effective_qos_is_min() {
        // QoS-1 publish to a QoS-0 subscriber behaves as QoS 0 (drops).
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtMostOnce, 1).unwrap();
        b.publish("t", &b"1"[..], QoS::AtLeastOnce, false, 0)
            .unwrap();
        b.publish("t", &b"2"[..], QoS::AtLeastOnce, false, 0)
            .unwrap();
        assert_eq!(sub.backlog(), 1);
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn retained_message_delivered_on_subscribe() {
        let b = MqttBroker::new();
        b.publish("cfg/rate", &b"100"[..], QoS::AtMostOnce, true, 7)
            .unwrap();
        let sub = b.subscribe("cfg/#", QoS::AtMostOnce, 4).unwrap();
        let msg = sub.recv(Duration::from_millis(50)).unwrap();
        assert_eq!(msg.payload.as_ref(), b"100");
        assert_eq!(msg.timestamp_us, 7);
        assert_eq!(b.retained("cfg/rate").unwrap().payload.as_ref(), b"100");
    }

    #[test]
    fn retained_message_is_replaced() {
        let b = MqttBroker::new();
        b.publish("cfg", &b"old"[..], QoS::AtMostOnce, true, 0)
            .unwrap();
        b.publish("cfg", &b"new"[..], QoS::AtMostOnce, true, 0)
            .unwrap();
        assert_eq!(b.retained("cfg").unwrap().payload.as_ref(), b"new");
    }

    #[test]
    fn unsubscribe_on_drop_releases_blocked_publisher() {
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtLeastOnce, 1).unwrap();
        b.publish("t", &b"1"[..], QoS::AtLeastOnce, false, 0)
            .unwrap();
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            b2.publish("t", &b"2"[..], QoS::AtLeastOnce, false, 0)
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(sub); // closes the queue, releasing the publisher
        assert_eq!(h.join().unwrap(), 0, "closed queue counts as undelivered");
        assert_eq!(b.subscriber_count(), 0);
    }

    #[test]
    fn fanout_to_multiple_subscribers() {
        let b = MqttBroker::new();
        let s1 = b.subscribe("a/#", QoS::AtMostOnce, 4).unwrap();
        let s2 = b.subscribe("a/+", QoS::AtMostOnce, 4).unwrap();
        let s3 = b.subscribe("b/#", QoS::AtMostOnce, 4).unwrap();
        let n = b
            .publish("a/x", &b"m"[..], QoS::AtMostOnce, false, 0)
            .unwrap();
        assert_eq!(n, 2);
        assert!(s1.try_recv().is_some());
        assert!(s2.try_recv().is_some());
        assert!(s3.try_recv().is_none());
    }

    #[test]
    fn invalid_publish_and_subscribe_rejected() {
        let b = MqttBroker::new();
        assert!(b
            .publish("a/+", &b"x"[..], QoS::AtMostOnce, false, 0)
            .is_err());
        assert!(b.subscribe("a/#/b", QoS::AtMostOnce, 1).is_err());
    }

    #[test]
    fn qos0_drop_while_unsubscribing_never_deadlocks() {
        // Regression: the QoS-0 drop path once took the broker state lock
        // while holding a subscriber-queue lock; Subscription::drop takes
        // them in the opposite order — an ABBA deadlock under this exact
        // interleaving. Hammer it.
        for _ in 0..50 {
            let b = MqttBroker::new();
            let sub = b.subscribe("t", QoS::AtMostOnce, 1).unwrap();
            // Fill the queue so publishes hit the drop path.
            b.publish("t", &b"fill"[..], QoS::AtMostOnce, false, 0)
                .unwrap();
            let b2 = b.clone();
            let publisher = std::thread::spawn(move || {
                for _ in 0..200 {
                    let _ = b2.publish("t", &b"x"[..], QoS::AtMostOnce, false, 0);
                }
            });
            std::thread::sleep(Duration::from_micros(100));
            drop(sub);
            publisher.join().unwrap();
        }
    }

    #[test]
    fn publish_without_blocked_receiver_issues_no_wakeups() {
        // Regression: publish used to fire a condvar notification per
        // message whether or not anyone was waiting — one wasted futex
        // syscall per append, multiplied by the whole cell at fan-in scale.
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtMostOnce, 16).unwrap();
        for i in 0..10u8 {
            b.publish("t", vec![i], QoS::AtMostOnce, false, 0).unwrap();
        }
        assert_eq!(b.notifications(), 0, "nobody was waiting");
        // Draining without a blocked publisher is just as silent.
        while sub.try_recv().is_some() {}
        assert_eq!(b.notifications(), 0);
        // A receiver that *is* parked gets exactly one wake for one publish.
        let b2 = b.clone();
        let h = std::thread::spawn(move || sub.recv(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(40));
        b2.publish("t", &b"wake"[..], QoS::AtMostOnce, false, 0)
            .unwrap();
        assert!(h.join().unwrap().is_some());
        assert_eq!(b.notifications(), 1);
    }

    #[test]
    fn steady_flow_has_no_spurious_wakeups() {
        // Every wake recv observes must come with a message to read: the
        // waiter-gated wake protocol never notifies an empty queue.
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtLeastOnce, 4).unwrap();
        let b2 = b.clone();
        const N: usize = 400;
        let publisher = std::thread::spawn(move || {
            for i in 0..N {
                b2.publish("t", vec![i as u8], QoS::AtLeastOnce, false, 0)
                    .unwrap();
            }
        });
        let mut got = 0;
        while got < N {
            if sub.recv(Duration::from_secs(5)).is_some() {
                got += 1;
            }
        }
        publisher.join().unwrap();
        assert_eq!(got, N);
        assert!(
            sub.spurious_wakes() <= 2,
            "{} wakes found an empty queue — wakes are being broadcast, \
             not targeted",
            sub.spurious_wakes()
        );
    }

    #[test]
    fn recv_timeout_returns_none() {
        let b = MqttBroker::new();
        let sub = b.subscribe("t", QoS::AtMostOnce, 1).unwrap();
        assert!(sub.recv(Duration::from_millis(20)).is_none());
    }
}
