//! On-disk record framing for segment files.
//!
//! A segment file is a bare concatenation of frames — no file header, no
//! footer; the file *name* carries the segment's base offset
//! (`{base:020}.seg`, zero-padded so lexicographic order is offset order).
//! Each frame is:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────────────────────┐
//! │ len: u32le │ crc: u32le │ body (len bytes, CRC32C = crc)       │
//! └────────────┴────────────┴──────────────────────────────────────────┘
//!   body := offset:u64le · timestamp_us:u64le · key_len:u32le ·
//!           value_len:u32le · key bytes · value bytes
//! ```
//!
//! `key_len == u32::MAX` encodes "no key" (distinct from an empty key).
//! The stored offset is redundant with `base + index` — recovery checks the
//! two agree, so a frame landing at the wrong position (lost intermediate
//! write) is caught even when its CRC is intact.
//!
//! Decoding is zero-copy onto the fetch path: a cold read slurps the byte
//! range covering the wanted frames into one [`Bytes`] buffer and each
//! record's key/value are `slice`s of it — refcount bumps, no per-record
//! copies, exactly like records served from the in-memory tail.

use super::crc32c;
use crate::record::{Offset, Record};
use bytes::Bytes;

/// Frame header bytes preceding the body (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;
/// Fixed body bytes preceding key/value (`offset` + `timestamp` + lengths).
pub const BODY_FIXED: usize = 24;
/// Upper bound on a frame body — anything larger is treated as corruption
/// (a torn length field would otherwise ask recovery to allocate garbage).
pub const MAX_BODY: u32 = 1 << 30;
/// Sentinel `key_len` meaning "record has no key".
pub const NO_KEY: u32 = u32::MAX;

/// File name of the segment whose first record is `base`.
pub fn segment_file_name(base: Offset) -> String {
    format!("{base:020}.seg")
}

/// Parse a segment file name back to its base offset.
pub fn parse_segment_base(name: &str) -> Option<Offset> {
    name.strip_suffix(".seg")?.parse().ok()
}

/// Encoded size of `record`'s frame.
pub fn frame_size(record: &Record) -> usize {
    FRAME_HEADER + BODY_FIXED + record.key.as_ref().map_or(0, |k| k.len()) + record.value.len()
}

/// True when a frame body of `body_len` bytes can be decoded back.
/// Decode/recovery treat anything larger than [`MAX_BODY`] as corruption,
/// so writing such a frame would make reopen truncate the log at it —
/// silently dropping it and every later record the durable watermark
/// covered (and past 4 GiB the u32 length field would wrap).
pub const fn body_fits(body_len: usize) -> bool {
    body_len as u64 <= MAX_BODY as u64
}

/// Append `record`'s frame to `buf`. Returns the frame's size in bytes.
///
/// # Panics
/// If the body exceeds [`MAX_BODY`]: an unrecoverable frame must never
/// reach a segment file (see [`body_fits`]).
pub fn encode_frame(buf: &mut Vec<u8>, record: &Record) -> usize {
    let key_len = record.key.as_ref().map_or(0, |k| k.len());
    let body_len = BODY_FIXED + key_len + record.value.len();
    assert!(
        body_fits(body_len),
        "record frame body of {body_len} bytes exceeds MAX_BODY ({MAX_BODY}); \
         refusing to write a frame recovery could never read back"
    );
    buf.reserve(FRAME_HEADER + body_len);
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    let crc_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]); // crc patched below
    let body_at = buf.len();
    buf.extend_from_slice(&record.offset.to_le_bytes());
    buf.extend_from_slice(&record.timestamp_us.to_le_bytes());
    match &record.key {
        Some(k) => buf.extend_from_slice(&(k.len() as u32).to_le_bytes()),
        None => buf.extend_from_slice(&NO_KEY.to_le_bytes()),
    }
    buf.extend_from_slice(&(record.value.len() as u32).to_le_bytes());
    if let Some(k) = &record.key {
        buf.extend_from_slice(k);
    }
    buf.extend_from_slice(&record.value);
    let crc = crc32c(&buf[body_at..]);
    buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    FRAME_HEADER + body_len
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does (torn tail).
    Truncated,
    /// The length field is implausible (corruption / torn length).
    BadLength,
    /// The body does not match its checksum.
    BadCrc,
    /// The key/value lengths disagree with the body length.
    BadLayout,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadLength => write!(f, "implausible frame length"),
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
            FrameError::BadLayout => write!(f, "frame layout inconsistent"),
        }
    }
}

/// Decode the frame starting at `pos` in `data`. Returns the record and the
/// position one past the frame. Key and value are zero-copy slices of
/// `data`'s backing buffer.
pub fn decode_frame(data: &Bytes, pos: usize) -> Result<(Record, usize), FrameError> {
    let buf: &[u8] = data;
    if buf.len() < pos + FRAME_HEADER {
        return Err(FrameError::Truncated);
    }
    let body_len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
    if body_len > MAX_BODY || (body_len as usize) < BODY_FIXED {
        return Err(FrameError::BadLength);
    }
    let body_len = body_len as usize;
    let crc_stored = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
    let body_at = pos + FRAME_HEADER;
    if buf.len() < body_at + body_len {
        return Err(FrameError::Truncated);
    }
    let body = &buf[body_at..body_at + body_len];
    if crc32c(body) != crc_stored {
        return Err(FrameError::BadCrc);
    }
    let offset = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let timestamp_us = u64::from_le_bytes(body[8..16].try_into().unwrap());
    let key_len_raw = u32::from_le_bytes(body[16..20].try_into().unwrap());
    let value_len = u32::from_le_bytes(body[20..24].try_into().unwrap()) as usize;
    let key_len = if key_len_raw == NO_KEY {
        0
    } else {
        key_len_raw as usize
    };
    if BODY_FIXED + key_len + value_len != body_len {
        return Err(FrameError::BadLayout);
    }
    let key_at = body_at + BODY_FIXED;
    let key = if key_len_raw == NO_KEY {
        None
    } else {
        Some(data.slice(key_at..key_at + key_len))
    };
    let value_at = key_at + key_len;
    Ok((
        Record {
            key,
            value: data.slice(value_at..value_at + value_len),
            timestamp_us,
            offset,
        },
        body_at + body_len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: u64) -> Record {
        let mut r = Record::new(vec![0xAB; 100]).with_timestamp(offset * 10);
        r.offset = offset;
        r
    }

    #[test]
    fn file_names_sort_by_offset() {
        let names: Vec<String> = [0u64, 9, 1024, u64::MAX / 2]
            .iter()
            .map(|&b| segment_file_name(b))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(parse_segment_base(&names[2]), Some(1024));
        assert_eq!(parse_segment_base("garbage"), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut buf = Vec::new();
        let r = Record::new(&b"value"[..])
            .with_key(&b"key"[..])
            .with_timestamp(42);
        let n = encode_frame(&mut buf, &r);
        assert_eq!(n, buf.len());
        assert_eq!(n, frame_size(&r));
        let data = Bytes::from(buf);
        let (out, end) = decode_frame(&data, 0).unwrap();
        assert_eq!(end, n);
        assert_eq!(out.value.as_ref(), b"value");
        assert_eq!(out.key.as_deref(), Some(&b"key"[..]));
        assert_eq!(out.timestamp_us, 42);
    }

    #[test]
    fn keyless_and_empty_key_are_distinct() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &Record::new(&b"v"[..]));
        encode_frame(&mut buf, &Record::new(&b"v"[..]).with_key(&b""[..]));
        let data = Bytes::from(buf);
        let (no_key, next) = decode_frame(&data, 0).unwrap();
        let (empty_key, _) = decode_frame(&data, next).unwrap();
        assert_eq!(no_key.key, None);
        assert_eq!(empty_key.key.as_deref(), Some(&b""[..]));
    }

    #[test]
    fn consecutive_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            encode_frame(&mut buf, &rec(i));
        }
        let data = Bytes::from(buf);
        let mut pos = 0;
        for i in 0..5u64 {
            let (r, next) = decode_frame(&data, pos).unwrap();
            assert_eq!(r.offset, i);
            assert_eq!(r.timestamp_us, i * 10);
            pos = next;
        }
        assert_eq!(pos, data.len());
        assert_eq!(decode_frame(&data, pos), Err(FrameError::Truncated));
    }

    #[test]
    fn corrupt_body_fails_crc() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rec(0));
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert_eq!(decode_frame(&Bytes::from(buf), 0), Err(FrameError::BadCrc));
    }

    #[test]
    fn torn_tail_is_truncated_error() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rec(0));
        let torn = Bytes::from(buf[..buf.len() - 10].to_vec());
        assert_eq!(decode_frame(&torn, 0), Err(FrameError::Truncated));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = vec![0xFFu8; 64];
        assert_eq!(
            decode_frame(&Bytes::from(buf.clone()), 0),
            Err(FrameError::BadLength)
        );
        // Body length below the fixed header is equally implausible.
        buf[..4].copy_from_slice(&4u32.to_le_bytes());
        assert_eq!(
            decode_frame(&Bytes::from(buf), 0),
            Err(FrameError::BadLength)
        );
    }

    #[test]
    fn body_size_gate_matches_decode_limit() {
        // Everything encode accepts, decode's length check accepts too —
        // and the first rejected size is exactly decode's corruption
        // threshold, so no frame can be written that reopen would truncate.
        assert!(body_fits(BODY_FIXED));
        assert!(body_fits(MAX_BODY as usize));
        assert!(!body_fits(MAX_BODY as usize + 1));
        assert!(!body_fits(u32::MAX as usize + 2)); // would wrap the u32 len
    }

    #[test]
    fn decoded_values_share_the_read_buffer() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rec(0));
        let data = Bytes::from(buf);
        let (r, _) = decode_frame(&data, 0).unwrap();
        let base_range = data.as_ref().as_ptr_range();
        assert!(base_range.contains(&r.value.as_ref().as_ptr()));
    }
}
