//! The per-partition write-behind appender.
//!
//! One [`PartitionWriter`] per durable partition, owned by its
//! [`PartitionLog`](crate::log::PartitionLog) and driven under the same
//! mutex as the in-memory append — so the file order is the offset order by
//! construction. Appends *only encode* into a user-space buffer: no
//! syscall, ever, on the append path. The buffered bytes move to the
//! segment files later, as [`PendingWrite`]s captured by
//! [`PartitionWriter::prepare_sync`] under the log lock and performed
//! *outside* it by whoever runs the sync cycle (the
//! [flusher](super::flusher) thread under group commit, the caller for an
//! explicit sync, the append itself for the
//! [`SyncPolicy::EachAppend`](super::SyncPolicy::EachAppend)
//! counterfactual). Producers therefore pay memory speed — one frame
//! memcpy — while the disk catches up on another thread.
//!
//! When the in-memory segment seals, [`PartitionWriter::seal_and_roll`]
//! moves the sealed file's uncaptured bytes onto the pending list, hands
//! back the file's metadata as a [`DiskSegment`] (record positions +
//! timestamps, the index a cold fetch needs), and opens the next file. A
//! sealed segment may only be served from disk once the durable watermark
//! covers it — the eviction gate in
//! [`PartitionLog`](crate::log::PartitionLog) — so a fetch never reads a
//! file region whose write is still pending.

use super::segment_file::{decode_frame, encode_frame, segment_file_name};
use super::StoreStats;
use crate::record::{Offset, Record};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Initial capacity of the append buffer (it grows as a commit window's
/// traffic demands; `prepare_sync` recycles the allocation).
pub const APPEND_BUF_CAPACITY: usize = 64 * 1024;

/// A sealed segment's on-disk identity and index: everything a fetch needs
/// to serve the segment after its records are evicted from memory.
#[derive(Debug)]
pub struct DiskSegment {
    /// Segment file path (unlinked on retention).
    pub path: PathBuf,
    /// Open read handle (kept so retention's unlink never races a read).
    pub file: Arc<File>,
    /// File position of each record's frame, by index within the segment.
    pub positions: Vec<u64>,
    /// Each record's timestamp, by index — kept resident so
    /// `offset_for_timestamp` binary-searches cold segments without I/O.
    pub timestamps: Vec<u64>,
    /// Total encoded bytes in the file.
    pub data_len: u64,
}

impl DiskSegment {
    /// Read `take` records starting at in-segment index `rel` — one
    /// buffered read covering exactly the wanted frames (served from the
    /// page cache for anything recent), then zero-copy frame decode.
    ///
    /// Errors (a bad sector, corruption that slipped past recovery) are
    /// returned, not panicked: a fetch hitting latent damage must surface
    /// it to the caller, not take down the consumer thread.
    pub fn read_records(&self, rel: usize, take: usize) -> io::Result<Vec<Record>> {
        let take = take.min(self.positions.len().saturating_sub(rel));
        if take == 0 {
            return Ok(Vec::new());
        }
        let start = self.positions[rel];
        let end = self
            .positions
            .get(rel + take)
            .copied()
            .unwrap_or(self.data_len);
        let mut buf = vec![0u8; (end - start) as usize];
        read_exact_at(&self.file, &mut buf, start).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("segment read {}@{start}: {e}", self.path.display()),
            )
        })?;
        let data = Bytes::from(buf);
        let mut out = Vec::with_capacity(take);
        let mut pos = 0usize;
        for _ in 0..take {
            let (rec, next) = decode_frame(&data, pos).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "segment {} corrupt at file pos {}: {e}",
                        self.path.display(),
                        start + pos as u64
                    ),
                )
            })?;
            out.push(rec);
            pos = next;
        }
        Ok(out)
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], pos: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, pos)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], pos: u64) -> io::Result<()> {
    // Non-unix fallback: a positioned read via a cloned handle (the clone
    // shares the descriptor but seeking it does not disturb appends, which
    // track their own length).
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(pos))?;
    f.read_exact(buf)
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], pos: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::write_all_at(file, buf, pos)
}

#[cfg(not(unix))]
fn write_all_at(file: &File, buf: &[u8], pos: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(pos))?;
    f.write_all(buf)
}

/// Buffered bytes captured for the write path: a run of encoded frames and
/// the exact file position they belong at. Positioned writes make pending
/// writes order-independent across batches — the sync serialisation (one
/// cycle at a time per partition) supplies the durability ordering.
pub struct PendingWrite {
    file: Arc<File>,
    offset: u64,
    data: Vec<u8>,
}

impl PendingWrite {
    /// Write the bytes to their file position (page cache; no fsync).
    pub fn perform(&self) -> io::Result<()> {
        write_all_at(&self.file, &self.data, self.offset)
    }

    /// The file this write lands in (for the covering fsync).
    pub fn file(&self) -> &Arc<File> {
        &self.file
    }
}

/// What one sync cycle must cover for a partition: captured under the log
/// lock by [`PartitionWriter::prepare_sync`], written and fsynced *outside*
/// it.
pub struct SyncBatch {
    /// Buffered bytes to write before the fsync, with their positions.
    /// Handles are clones, so retention or a concurrent roll cannot
    /// invalidate them mid-cycle. Usually one entry per file; a batch
    /// re-queued after a failed cycle may contribute additional entries
    /// for the same file (harmless — writes are positioned, the covering
    /// fsync just runs once more).
    pub writes: Vec<PendingWrite>,
    /// High watermark at capture time — the durable watermark once the
    /// writes land and their files are synced.
    pub hwm: Offset,
    /// Dirty bytes this batch retires.
    pub bytes: u64,
    /// Active segment's base offset at capture time.
    pub seg_base: Offset,
    /// Active file's captured length at capture time (the durable file
    /// position within `seg_base`'s file once this batch completes).
    pub file_len: u64,
}

/// The write-behind appender for one partition's active segment file.
pub struct PartitionWriter {
    dir: PathBuf,
    stats: Arc<StoreStats>,
    file: Arc<File>,
    path: PathBuf,
    base: Offset,
    /// Bytes of the active file already captured for the write path.
    captured_len: u64,
    /// Encoded frames not yet captured (the active file's tail).
    buf: Vec<u8>,
    positions: Vec<u64>,
    timestamps: Vec<u64>,
    /// Sealed files' uncaptured bytes, awaiting the next sync cycle.
    pending: Vec<PendingWrite>,
    /// Bytes appended (across seals) since the last `prepare_sync`.
    dirty: u64,
}

impl PartitionWriter {
    /// Open a fresh active segment file whose first record will be `base`.
    /// `dir` must already exist.
    pub fn create(dir: PathBuf, base: Offset, stats: Arc<StoreStats>) -> io::Result<Self> {
        let path = dir.join(segment_file_name(base));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .read(true)
            .open(&path)?;
        Ok(Self {
            dir,
            stats,
            file: Arc::new(file),
            path,
            base,
            captured_len: 0,
            buf: Vec::with_capacity(APPEND_BUF_CAPACITY),
            positions: Vec::new(),
            timestamps: Vec::new(),
            pending: Vec::new(),
            dirty: 0,
        })
    }

    /// Base offset of the active segment file.
    pub fn base(&self) -> Offset {
        self.base
    }

    /// Append `record`'s frame (offset already assigned). Returns the frame
    /// size. Pure memcpy — never a syscall.
    pub fn append(&mut self, record: &Record) -> usize {
        self.positions
            .push(self.captured_len + self.buf.len() as u64);
        self.timestamps.push(record.timestamp_us);
        let n = encode_frame(&mut self.buf, record);
        self.dirty += n as u64;
        self.stats
            .dirty_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Move the active buffer onto the pending list (no I/O). The bytes
    /// keep their file position; performing them later is order-free.
    fn capture_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let data = std::mem::replace(&mut self.buf, Vec::with_capacity(APPEND_BUF_CAPACITY));
        let len = data.len() as u64;
        self.pending.push(PendingWrite {
            file: Arc::clone(&self.file),
            offset: self.captured_len,
            data,
        });
        self.captured_len += len;
    }

    /// Seal the active segment and open the next one at `next_base`.
    /// Returns the sealed segment's [`DiskSegment`] metadata; its
    /// uncaptured bytes join the pending list for the next sync cycle.
    pub fn seal_and_roll(&mut self, next_base: Offset) -> io::Result<DiskSegment> {
        self.capture_buf();
        let next_path = self.dir.join(segment_file_name(next_base));
        let next_file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .read(true)
            .open(&next_path)?;
        let sealed = DiskSegment {
            path: std::mem::replace(&mut self.path, next_path),
            file: std::mem::replace(&mut self.file, Arc::new(next_file)),
            positions: std::mem::take(&mut self.positions),
            timestamps: std::mem::take(&mut self.timestamps),
            data_len: self.captured_len,
        };
        self.base = next_base;
        self.captured_len = 0;
        Ok(sealed)
    }

    /// Capture everything the next sync cycle must write and fsync, or
    /// `None` when the partition is clean. Called under the log lock; pure
    /// bookkeeping (buffer handoff, no I/O). The returned batch is
    /// performed outside the lock.
    pub fn prepare_sync(&mut self, hwm: Offset) -> Option<SyncBatch> {
        self.capture_buf();
        if self.dirty == 0 {
            return None;
        }
        Some(SyncBatch {
            writes: std::mem::take(&mut self.pending),
            hwm,
            bytes: std::mem::take(&mut self.dirty),
            seg_base: self.base,
            file_len: self.captured_len,
        })
    }

    /// Hand a *failed* sync cycle's batch back for retry: its positioned
    /// writes rejoin the pending list (order-free — every write carries its
    /// own file position) and the dirty count is restored so the next
    /// [`PartitionWriter::prepare_sync`] captures them again. Dropping the
    /// batch instead would leave a hole in the segment file that a later
    /// successful cycle's watermark would then claim durable.
    ///
    /// `StoreStats::dirty_bytes` is deliberately untouched: the failed
    /// cycle never decremented it, so the bytes are still accounted dirty.
    pub fn requeue_failed_sync(&mut self, batch: SyncBatch) {
        let SyncBatch {
            mut writes, bytes, ..
        } = batch;
        writes.append(&mut self.pending);
        self.pending = writes;
        self.dirty += bytes;
    }
}

impl Drop for PartitionWriter {
    fn drop(&mut self) {
        // Clean shutdown keeps every append readable on reopen (the frames
        // reach the files, and process exit cannot lose page-cache writes).
        // Deliberately *no* fsync here: crash durability is the watermark's
        // contract, not Drop's.
        self.capture_buf();
        for w in &self.pending {
            if let Err(e) = w.perform() {
                // Can't propagate from Drop; make the lost tail observable
                // (reopen will recover only what reached the files).
                eprintln!(
                    "pilot-broker writer: shutdown flush of {} failed: {e}",
                    self.path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pilot-writer-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn file_len(p: &Path) -> u64 {
        std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)
    }

    fn rec(offset: u64, size: usize) -> Record {
        let mut r = Record::new(vec![offset as u8; size]).with_timestamp(offset);
        r.offset = offset;
        r
    }

    #[test]
    fn appends_never_touch_the_file_until_a_cycle_performs_them() {
        let dir = tmp_dir("buffered");
        let stats = Arc::new(StoreStats::default());
        let mut w = PartitionWriter::create(dir.clone(), 0, Arc::clone(&stats)).unwrap();
        let seg_path = dir.join(segment_file_name(0));
        w.append(&rec(0, 16));
        w.append(&rec(1, APPEND_BUF_CAPACITY)); // even past the buf capacity
        assert_eq!(file_len(&seg_path), 0, "append path must stay syscall-free");
        let batch = w.prepare_sync(2).expect("dirty");
        assert_eq!(file_len(&seg_path), 0, "capture is bookkeeping only");
        for pw in &batch.writes {
            pw.perform().unwrap();
        }
        assert!(file_len(&seg_path) > APPEND_BUF_CAPACITY as u64);
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seal_produces_readable_disk_segment_once_writes_land() {
        let dir = tmp_dir("seal");
        let stats = Arc::new(StoreStats::default());
        let mut w = PartitionWriter::create(dir.clone(), 0, stats).unwrap();
        for i in 0..10 {
            w.append(&rec(i, 64));
        }
        let sealed = w.seal_and_roll(10).unwrap();
        assert_eq!(sealed.positions.len(), 10);
        assert_eq!(w.base(), 10);
        // The sealed bytes are still pending; a sync cycle lands them.
        let batch = w.prepare_sync(10).expect("dirty");
        for pw in &batch.writes {
            pw.perform().unwrap();
        }
        let recs = sealed.read_records(3, 4).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].offset, 3);
        assert_eq!(recs[3].offset, 6);
        assert_eq!(recs[1].value.as_ref(), &[4u8; 64][..]);
        // Reading past the end clamps.
        assert_eq!(sealed.read_records(8, 10).unwrap().len(), 2);
        assert!(sealed.read_records(10, 1).unwrap().is_empty());
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepare_sync_covers_sealed_and_active() {
        let dir = tmp_dir("prepare");
        let stats = Arc::new(StoreStats::default());
        let mut w = PartitionWriter::create(dir.clone(), 0, Arc::clone(&stats)).unwrap();
        for i in 0..4 {
            w.append(&rec(i, 32));
        }
        let _sealed = w.seal_and_roll(4).unwrap();
        w.append(&rec(4, 32));
        let batch = w.prepare_sync(5).expect("dirty");
        assert_eq!(batch.writes.len(), 2, "sealed bytes + active bytes");
        assert_eq!(batch.hwm, 5);
        assert_eq!(batch.seg_base, 4);
        assert!(batch.bytes > 0);
        assert!(w.prepare_sync(5).is_none(), "clean after capture");
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn requeue_failed_sync_retries_the_same_bytes() {
        let dir = tmp_dir("requeue");
        let stats = Arc::new(StoreStats::default());
        let seg_path = dir.join(segment_file_name(0));
        let mut w = PartitionWriter::create(dir.clone(), 0, Arc::clone(&stats)).unwrap();
        for i in 0..4 {
            w.append(&rec(i, 32));
        }
        let batch = w.prepare_sync(4).expect("dirty");
        let first_bytes = batch.bytes;
        // Simulate a failed cycle: none of the writes performed. The batch
        // goes back; the writer must stay dirty with the same bytes.
        w.requeue_failed_sync(batch);
        w.append(&rec(4, 32));
        let retry = w.prepare_sync(5).expect("still dirty after requeue");
        assert!(
            retry.bytes > first_bytes,
            "retry covers the requeued bytes plus the new append"
        );
        for pw in &retry.writes {
            pw.perform().unwrap();
        }
        // No hole: the sealed file decodes end to end.
        let sealed = w.seal_and_roll(5).unwrap();
        assert_eq!(file_len(&seg_path), sealed.data_len);
        let recs = sealed.read_records(0, 5).unwrap();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
        }
        assert!(
            w.prepare_sync(5).is_none(),
            "clean once the retry performed"
        );
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cold_segment_read_errors_instead_of_panicking() {
        let dir = tmp_dir("corrupt-read");
        let stats = Arc::new(StoreStats::default());
        let mut w = PartitionWriter::create(dir.clone(), 0, stats).unwrap();
        for i in 0..3 {
            w.append(&rec(i, 48));
        }
        let sealed = w.seal_and_roll(3).unwrap();
        let batch = w.prepare_sync(3).expect("dirty");
        for pw in &batch.writes {
            pw.perform().unwrap();
        }
        assert_eq!(sealed.read_records(0, 3).unwrap().len(), 3);
        // Latent corruption after recovery: flip a body byte of record 1.
        write_all_at(&sealed.file, &[0xFF], sealed.positions[1] + 20).unwrap();
        let err = sealed.read_records(0, 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Undamaged records before the corruption still read fine.
        assert_eq!(sealed.read_records(0, 1).unwrap().len(), 1);
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_lands_pending_bytes_without_fsync() {
        let dir = tmp_dir("drop");
        let stats = Arc::new(StoreStats::default());
        let seg_path = dir.join(segment_file_name(0));
        {
            let mut w = PartitionWriter::create(dir.clone(), 0, stats).unwrap();
            for i in 0..6 {
                w.append(&rec(i, 40));
            }
            assert_eq!(file_len(&seg_path), 0);
        }
        assert!(file_len(&seg_path) > 0, "Drop must hand bytes to the OS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
