//! Reopening a partition directory after a crash (or a clean restart).
//!
//! Recovery's contract is the **clean-prefix guarantee**: whatever state a
//! crash left on disk, reopening yields a log that is exactly some prefix of
//! what was appended — specifically a prefix covering at least everything at
//! or below the durable watermark at crash time. To get there the scan walks
//! segment files in base-offset order and validates every frame (length
//! plausibility, CRC32C, and offset == base + index). The first invalid frame
//! marks the torn tail: the file is truncated back to its last valid frame
//! (deleted outright if nothing in it survived) and every later file is
//! deleted — a lost intermediate write must not resurrect data *after* the
//! tear, or offsets would lie.
//!
//! The scan also rebuilds, per segment, exactly the index a cold fetch
//! needs: frame positions and record timestamps. Recovered segments come
//! back in evicted form — metadata resident, records on disk — so reopening
//! a huge log costs one sequential read, not its RAM footprint.

use super::segment_file::{parse_segment_base, BODY_FIXED, FRAME_HEADER, MAX_BODY};
use super::writer::DiskSegment;
use super::Crc32c;
use crate::record::Offset;
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// One segment as the scan recovered it.
pub struct RecoveredSegment {
    /// First offset in the segment.
    pub base_offset: Offset,
    /// On-disk identity and index (positions, timestamps).
    pub disk: DiskSegment,
    /// Sum of the records' in-log `wire_size` (== sum of frame body
    /// lengths: both count key + value + 24 fixed bytes).
    pub wire_bytes: u64,
    /// Largest record timestamp in the segment.
    pub max_ts: u64,
}

/// The result of scanning a partition directory.
pub struct RecoveredPartition {
    /// Valid segments in offset order (possibly empty).
    pub segments: Vec<RecoveredSegment>,
    /// The next offset to assign: `base + count` of the last valid segment,
    /// or 0 for a fresh directory.
    pub next_offset: Offset,
}

/// Scan `dir`, repairing torn state in place (truncating the torn file,
/// deleting unreachable later files). Creates `dir` if absent.
pub fn recover_partition(dir: &Path) -> io::Result<RecoveredPartition> {
    std::fs::create_dir_all(dir)?;
    let mut files: Vec<(Offset, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(base) = name.to_str().and_then(parse_segment_base) {
            files.push((base, entry.path()));
        }
    }
    files.sort_by_key(|(base, _)| *base);

    let mut segments = Vec::new();
    let mut next_offset: Offset = 0;
    let mut torn = false;
    for (i, (base, path)) in files.iter().enumerate() {
        if torn || (i > 0 && *base != next_offset) {
            // Past the tear, or a base that doesn't continue the previous
            // segment (lost intermediate writes): nothing after this point
            // is trustworthy.
            std::fs::remove_file(path)?;
            torn = true;
            continue;
        }
        let scan = scan_file(path, *base)?;
        if scan.valid_len < scan.total_len {
            torn = true;
        }
        if scan.positions.is_empty() {
            std::fs::remove_file(path)?;
            continue;
        }
        if scan.valid_len < scan.total_len {
            scan.file.set_len(scan.valid_len)?;
        }
        next_offset = *base + scan.positions.len() as u64;
        segments.push(RecoveredSegment {
            base_offset: *base,
            disk: DiskSegment {
                path: path.clone(),
                file: Arc::new(scan.file),
                positions: scan.positions,
                timestamps: scan.timestamps,
                data_len: scan.valid_len,
            },
            wire_bytes: scan.wire_bytes,
            max_ts: scan.max_ts,
        });
    }
    Ok(RecoveredPartition {
        segments,
        next_offset,
    })
}

struct ScanResult {
    file: File,
    positions: Vec<u64>,
    timestamps: Vec<u64>,
    wire_bytes: u64,
    max_ts: u64,
    /// File length covered by valid frames.
    valid_len: u64,
    /// Actual file length on disk.
    total_len: u64,
}

/// Stream the file front to back, stopping at the first invalid frame.
fn scan_file(path: &Path, base: Offset) -> io::Result<ScanResult> {
    let file = OpenOptions::new().read(true).write(true).open(path)?;
    let total_len = file.metadata()?.len();
    let mut reader = io::BufReader::with_capacity(256 * 1024, &file);
    let mut positions = Vec::new();
    let mut timestamps = Vec::new();
    let mut wire_bytes = 0u64;
    let mut max_ts = 0u64;
    let mut valid_len = 0u64;
    let mut body = Vec::new();
    let mut header = [0u8; FRAME_HEADER];

    loop {
        match check_frame(
            &mut reader,
            &mut header,
            &mut body,
            base + positions.len() as u64,
        ) {
            Ok(frame) => {
                positions.push(valid_len);
                timestamps.push(frame.timestamp_us);
                wire_bytes += frame.body_len as u64;
                max_ts = max_ts.max(frame.timestamp_us);
                valid_len += (FRAME_HEADER + frame.body_len) as u64;
            }
            Err(ScanStop::Eof) => break,
            Err(ScanStop::Bad) => break,
            Err(ScanStop::Io(e)) => return Err(e),
        }
    }
    Ok(ScanResult {
        file,
        positions,
        timestamps,
        wire_bytes,
        max_ts,
        valid_len,
        total_len,
    })
}

struct ScannedFrame {
    timestamp_us: u64,
    body_len: usize,
}

enum ScanStop {
    /// Clean end of file (no partial header).
    Eof,
    /// Invalid frame — the tear starts here. What *kind* of invalid is
    /// irrelevant to the repair (truncate either way), so no payload.
    Bad,
    /// A real I/O failure (not corruption).
    Io(io::Error),
}

fn check_frame(
    reader: &mut impl Read,
    header: &mut [u8; FRAME_HEADER],
    body: &mut Vec<u8>,
    expect_offset: Offset,
) -> Result<ScannedFrame, ScanStop> {
    match read_exact_or_eof(reader, header) {
        Ok(true) => {}
        Ok(false) => return Err(ScanStop::Eof),
        Err(e) => return Err(ScanStop::Io(e)),
    }
    let body_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if body_len > MAX_BODY || (body_len as usize) < BODY_FIXED {
        return Err(ScanStop::Bad);
    }
    let crc_stored = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let body_len = body_len as usize;
    body.resize(body_len, 0);
    match read_exact_or_eof(reader, body) {
        Ok(true) => {}
        Ok(false) => return Err(ScanStop::Bad),
        Err(e) => return Err(ScanStop::Io(e)),
    }
    let mut crc = Crc32c::new();
    crc.update(body);
    if crc.finish() != crc_stored {
        return Err(ScanStop::Bad);
    }
    let offset = u64::from_le_bytes(body[0..8].try_into().unwrap());
    if offset != expect_offset {
        // CRC-valid frame at the wrong position: a lost intermediate write
        // landed later data here. Treat as the tear.
        return Err(ScanStop::Bad);
    }
    let timestamp_us = u64::from_le_bytes(body[8..16].try_into().unwrap());
    Ok(ScannedFrame {
        timestamp_us,
        body_len,
    })
}

/// `Ok(true)` = filled; `Ok(false)` = EOF before any or all bytes.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::storage::segment_file::{encode_frame, segment_file_name};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pilot-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_segment(dir: &Path, base: Offset, count: u64) -> Vec<u64> {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for i in 0..count {
            let mut r = Record::new(vec![(base + i) as u8; 50]).with_timestamp((base + i) * 10);
            r.offset = base + i;
            encode_frame(&mut buf, &r);
            ends.push(buf.len() as u64);
        }
        std::fs::write(dir.join(segment_file_name(base)), &buf).unwrap();
        ends
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmp_dir("fresh");
        let nested = dir.join("does-not-exist-yet");
        let rec = recover_partition(&nested).unwrap();
        assert!(rec.segments.is_empty());
        assert_eq!(rec.next_offset, 0);
        assert!(nested.is_dir(), "directory created");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_segments_recover_fully() {
        let dir = tmp_dir("clean");
        write_segment(&dir, 0, 4);
        write_segment(&dir, 4, 3);
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.segments.len(), 2);
        assert_eq!(rec.next_offset, 7);
        assert_eq!(rec.segments[0].disk.positions.len(), 4);
        assert_eq!(rec.segments[1].base_offset, 4);
        assert_eq!(rec.segments[1].max_ts, 60);
        // Recovered index serves reads.
        let recs = rec.segments[1].disk.read_records(1, 2).unwrap();
        assert_eq!(recs[0].offset, 5);
        assert_eq!(recs[0].value.as_ref(), &[5u8; 50][..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let ends = write_segment(&dir, 0, 5);
        let path = dir.join(segment_file_name(0));
        // Tear mid-way through the last frame.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(ends[4] - 7).unwrap();
        drop(f);
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.next_offset, 4, "last frame lost");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            ends[3],
            "file truncated to valid prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_drops_it_and_everything_after() {
        let dir = tmp_dir("corrupt");
        let ends = write_segment(&dir, 0, 6);
        let path = dir.join(segment_file_name(0));
        let mut data = std::fs::read(&path).unwrap();
        data[ends[2] as usize + 12] ^= 0xFF; // corrupt frame 3's body
        std::fs::write(&path, &data).unwrap();
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(
            rec.next_offset, 3,
            "frames 3..6 gone even though 4,5 are intact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tear_in_earlier_file_deletes_later_files() {
        let dir = tmp_dir("later-files");
        let ends = write_segment(&dir, 0, 4);
        write_segment(&dir, 4, 4);
        let p0 = dir.join(segment_file_name(0));
        let p4 = dir.join(segment_file_name(4));
        let f = OpenOptions::new().write(true).open(&p0).unwrap();
        f.set_len(ends[1] + 3).unwrap(); // tear inside frame 2
        drop(f);
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.next_offset, 2);
        assert_eq!(rec.segments.len(), 1);
        assert!(!p4.exists(), "post-tear file removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn base_gap_is_a_tear() {
        let dir = tmp_dir("gap");
        write_segment(&dir, 0, 4);
        write_segment(&dir, 9, 2); // should start at 4
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.next_offset, 4);
        assert!(!dir.join(segment_file_name(9)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_torn_file_is_deleted() {
        let dir = tmp_dir("all-torn");
        write_segment(&dir, 0, 4);
        let _ends = write_segment(&dir, 4, 2);
        let p4 = dir.join(segment_file_name(4));
        let f = OpenOptions::new().write(true).open(&p4).unwrap();
        f.set_len(3).unwrap(); // 3 bytes: not even a header
        drop(f);
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.next_offset, 4);
        assert!(!p4.exists(), "zero-valid-record file removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_offset_frame_is_a_tear() {
        let dir = tmp_dir("wrong-offset");
        // A CRC-valid frame whose stored offset disagrees with its position.
        let mut buf = Vec::new();
        let mut r = Record::new(vec![1u8; 20]).with_timestamp(5);
        r.offset = 7; // file is named for base 0, so frame 0 must be offset 0
        encode_frame(&mut buf, &r);
        std::fs::write(dir.join(segment_file_name(0)), &buf).unwrap();
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.next_offset, 0);
        assert!(rec.segments.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn head_trimmed_log_recovers_from_first_retained_segment() {
        let dir = tmp_dir("head-trim");
        // Retention already dropped segment 0; the log starts at 4.
        write_segment(&dir, 4, 3);
        write_segment(&dir, 7, 2);
        let rec = recover_partition(&dir).unwrap();
        assert_eq!(rec.segments.len(), 2);
        assert_eq!(rec.segments[0].base_offset, 4);
        assert_eq!(rec.next_offset, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
