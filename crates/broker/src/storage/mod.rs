//! The durable storage engine under [`PartitionLog`](crate::log::PartitionLog).
//!
//! Kafka's durability story — and the one the paper's reference deployment
//! leans on — is an on-disk segmented log per partition: appends go to an
//! append-only file, fsyncs are batched, fetches of recent data are served
//! from memory (the page cache), and retention unlinks whole segment files.
//! This module reproduces that engine for the in-process broker:
//!
//! * [`segment_file`] — the on-disk record framing: length- and
//!   CRC32C-prefixed frames appended to one file per segment, named by the
//!   segment's base offset;
//! * [`writer`] — the per-partition write-behind appender: encodes frames
//!   into a user-space buffer (no syscall on the append path), hands the
//!   buffer off to the flusher as positioned writes, seals and rolls
//!   segment files on the in-memory segment boundary;
//! * [`flusher`] — the shared group-commit scheduler: one thread per
//!   durable topic coalesces fsyncs across *all* its partitions on the
//!   producer linger boundary (or a dirty-bytes threshold) and advances
//!   each partition's **durable watermark** — the offset below which data
//!   survives process death;
//! * [`recovery`] — the reopen path: scan segment files front to back,
//!   validate CRCs and offset continuity, truncate the torn tail a crash
//!   mid-write leaves behind, and rebuild the per-segment indexes.
//!
//! The hot path stays hot: an append pays one extra memcpy (the frame
//! encode into the writer's buffer) and *no* syscall in the common case;
//! fsync cost is amortised across every append of every partition in the
//! commit window. The engine is opt-in per topic
//! ([`Broker::create_topic_durable`](crate::Broker::create_topic_durable));
//! without it the log is byte-for-byte the seed's memory-only structure.

pub mod flusher;
pub mod recovery;
pub mod segment_file;
pub mod writer;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// When the engine moves appended bytes from the page cache to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Group commit (the default): a shared flusher thread fsyncs every
    /// dirty partition file once per `interval`, or as soon as the topic's
    /// un-synced bytes reach `batch_bytes` — whichever comes first. One
    /// fsync covers every append of every partition in the window, so the
    /// per-message durable cost converges on the append memcpy.
    GroupCommit {
        /// The commit window — align with the producer linger so a batch's
        /// fsync rides the same boundary as its network flush.
        interval: Duration,
        /// Early-kick threshold in bytes (0 disables the early kick).
        batch_bytes: u64,
    },
    /// fsync inline on **every** append, under the partition lock — the
    /// naive durable path. Orders of magnitude slower for small records;
    /// exists as the measured counterfactual (`log_durability` bench).
    EachAppend,
    /// Never fsync: appends reach the file (page cache) but the kernel
    /// decides when they reach the disk. The durable watermark only
    /// advances on an explicit [`Topic::sync`](crate::topic::Topic::sync).
    /// Isolates file-write cost from fsync cost in the bench ladder.
    OsOnly,
}

impl SyncPolicy {
    /// The default group-commit window: 5 ms interval, 1 MiB early kick.
    pub fn group_commit_default() -> Self {
        SyncPolicy::GroupCommit {
            interval: Duration::from_millis(5),
            batch_bytes: 1 << 20,
        }
    }
}

/// Where and how a topic persists its partitions.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory for this topic's partition subdirectories
    /// (`p0/`, `p1/`, …). Created if absent; existing segment files are
    /// recovered on open.
    pub dir: PathBuf,
    /// fsync scheduling policy.
    pub policy: SyncPolicy,
}

impl DurabilityConfig {
    /// Group-commit durability (the default policy) rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            policy: SyncPolicy::group_commit_default(),
        }
    }

    /// Override the sync policy.
    pub fn with_policy(mut self, policy: SyncPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Shared per-topic storage counters, updated by writers and the flusher
/// and sampled by the telemetry plane's `broker.log.*` gauges.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Bytes appended but not yet covered by an fsync.
    pub dirty_bytes: AtomicU64,
    /// Cumulative µs spent inside `fsync`/`fdatasync`.
    pub fsync_us: AtomicU64,
    /// Completed group-commit cycles (or per-append syncs).
    pub fsync_count: AtomicU64,
}

/// The durable frontier of one partition, as a *file* position: everything
/// in segment files with a base offset below `seg_base` is fsynced, and the
/// first `file_bytes` bytes of the file named by `seg_base` are fsynced.
/// Crash simulations (the chaos suite's torn-tail injector,
/// `tests/log_recovery.rs`) may truncate anywhere **at or beyond** this
/// mark without violating the durability contract.
#[derive(Debug, Default)]
pub struct DurableMark {
    seg_base: AtomicU64,
    file_bytes: AtomicU64,
}

impl DurableMark {
    pub(crate) fn set(&self, seg_base: u64, file_bytes: u64) {
        // Two relaxed stores: readers (tests) only consult the mark in
        // quiescence, never racing a flush cycle.
        self.seg_base.store(seg_base, Ordering::Release);
        self.file_bytes.store(file_bytes, Ordering::Release);
    }

    /// `(segment base offset, fsynced bytes within that segment's file)`.
    pub fn get(&self) -> (u64, u64) {
        (
            self.seg_base.load(Ordering::Acquire),
            self.file_bytes.load(Ordering::Acquire),
        )
    }
}

/// A point-in-time aggregate of a topic's (or broker's) storage engine —
/// what the `broker.log.*` telemetry gauges publish.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Bytes appended but not yet fsynced (0 for memory-only topics).
    pub dirty_bytes: u64,
    /// Cumulative µs spent in fsync.
    pub fsync_us: u64,
    /// Completed fsync cycles.
    pub fsync_count: u64,
    /// Log segments across all partitions (in-memory and on-disk alike).
    pub segment_count: u64,
    /// Records appended but not yet durable, summed over partitions
    /// (high watermark − durable watermark; 0 for memory-only topics).
    pub durable_lag: u64,
}

impl LogStats {
    /// Accumulate another topic's stats (for broker-wide aggregation).
    pub fn merge(&mut self, other: &LogStats) {
        self.dirty_bytes += other.dirty_bytes;
        self.fsync_us += other.fsync_us;
        self.fsync_count += other.fsync_count;
        self.segment_count += other.segment_count;
        self.durable_lag += other.durable_lag;
    }
}

/// Handle bundle the flusher (and `Topic::sync`) uses to reach one
/// partition's log and publish its durable watermark.
#[derive(Clone)]
pub(crate) struct PartitionHandle {
    pub(crate) log: Arc<parking_lot::Mutex<crate::log::PartitionLog>>,
    pub(crate) durable: Arc<AtomicU64>,
    pub(crate) mark: Arc<DurableMark>,
    /// Serialises sync cycles (capture → write → fsync → publish): a later
    /// capture must not fsync-and-publish while an earlier cycle's writes
    /// are still in flight, or the watermark would cover unwritten bytes.
    /// Never taken while holding `log` (the append path stays lock-cheap).
    pub(crate) sync_mu: Arc<parking_lot::Mutex<()>>,
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli polynomial, reflected) — the frame checksum. The same
// polynomial Kafka uses for its record-batch checksum, and the one the
// x86 SSE4.2 `crc32` instruction implements: on the append path the
// checksum must run at memory speed, not table-lookup speed, or it becomes
// the dominant CPU cost of durability at large message sizes. Hardware
// path when the CPU has SSE4.2 (runtime-detected), slicing-by-8 tables
// otherwise. No external crate needed.
// ---------------------------------------------------------------------------

const fn crc32c_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0x82F6_3B78 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC32C_TABLES: [[u32; 256]; 8] = crc32c_tables();

/// Slicing-by-8 software path: eight table lookups retire eight bytes.
fn crc32c_update_soft(mut c: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC32C_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32C_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32C_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32C_TABLES[4][(lo >> 24) as usize]
            ^ CRC32C_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32C_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32C_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32C_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC32C_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// SSE4.2 hardware path: one `crc32` instruction retires eight bytes.
///
/// # Safety
/// Caller must have verified SSE4.2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_update_hw(c: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut c64 = u64::from(c);
    for chunk in &mut chunks {
        c64 = _mm_crc32_u64(c64, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut c = c64 as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c
}

/// Streaming CRC32C so recovery can checksum a frame body chunk by chunk.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Crc32c {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("sse4.2") {
            // SAFETY: feature presence just checked (std caches the cpuid).
            self.0 = unsafe { crc32c_update_hw(self.0, data) };
            return;
        }
        self.0 = crc32c_update_soft(self.0, data);
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // Standard CRC32C (Castagnoli) test vectors — RFC 3720 §B.4 et al.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn crc32c_streaming_matches_oneshot() {
        let data = b"segmented durable log";
        let mut c = Crc32c::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32c(data));
    }

    #[test]
    fn crc32c_hardware_and_software_paths_agree() {
        // Exercise every alignment tail and a multi-chunk body.
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, data.len()] {
            let soft = crc32c_update_soft(0xFFFF_FFFF, &data[..len]) ^ 0xFFFF_FFFF;
            assert_eq!(crc32c(&data[..len]), soft, "len {len}");
        }
    }

    #[test]
    fn durable_mark_roundtrip() {
        let m = DurableMark::default();
        assert_eq!(m.get(), (0, 0));
        m.set(1024, 77);
        assert_eq!(m.get(), (1024, 77));
    }

    #[test]
    fn log_stats_merge_sums_fields() {
        let mut a = LogStats {
            dirty_bytes: 1,
            fsync_us: 2,
            fsync_count: 3,
            segment_count: 4,
            durable_lag: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.dirty_bytes, 2);
        assert_eq!(a.durable_lag, 10);
    }
}
