//! The group-commit scheduler: one thread per durable topic, many
//! partitions per fsync window.
//!
//! Naive durability fsyncs on every append and dies by syscall: ~ms-scale
//! latency on the hot path, once per message. Group commit inverts the
//! deal — appends only memcpy into the writer's buffer, and a single
//! scheduler thread wakes once per commit window (the
//! [`SyncPolicy::GroupCommit`](super::SyncPolicy::GroupCommit) interval,
//! sized to the producer linger so durability rides the batching boundary
//! the transport already pays for), captures every partition's dirty state,
//! and retires it with one `fdatasync` per touched file. The cost of the
//! fsync is amortised over every append of every partition in the window.
//!
//! Locking discipline: the capture (`PartitionLog::prepare_sync`) runs
//! under the partition lock — pure bookkeeping, a buffer handoff. The file
//! writes *and* the fsync run outside the lock, against cloned file
//! handles, so producers keep appending (and rolling segments, and even
//! retiring them) while the platter catches up. Cycles for one partition
//! serialise on `PartitionHandle::sync_mu` — a later capture must not
//! publish durability while an earlier cycle's writes are in flight. Only
//! after the writes land and the sync completes does the partition's
//! durable watermark advance.

use super::writer::SyncBatch;
use super::{DurableMark, PartitionHandle, StoreStats};
use parking_lot::{Condvar, Mutex};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retire a captured batch: perform its buffered writes, fsync the touched
/// files, then publish durability. Order matters — the watermark may only
/// advance *after* every write has landed and the sync returned.
pub(crate) fn sync_now(
    batch: &SyncBatch,
    stats: &StoreStats,
    durable: &AtomicU64,
    mark: &DurableMark,
) -> io::Result<()> {
    for w in &batch.writes {
        w.perform()?;
    }
    let t0 = Instant::now();
    for w in &batch.writes {
        w.file().sync_data()?;
    }
    let us = t0.elapsed().as_micros() as u64;
    stats.fsync_us.fetch_add(us, Ordering::Relaxed);
    stats.fsync_count.fetch_add(1, Ordering::Relaxed);
    stats.dirty_bytes.fetch_sub(batch.bytes, Ordering::Relaxed);
    // fetch_max, not store: cycles are serialised per partition, but the
    // watermark must stay monotonic even against a misuse of the API.
    durable.fetch_max(batch.hwm, Ordering::Release);
    mark.set(batch.seg_base, batch.file_len);
    Ok(())
}

/// One full capture-and-sync cycle for a single partition. Shared by the
/// scheduler loop and the explicit [`Topic::sync`](crate::Topic::sync)
/// path. Returns the bytes retired (0 if the partition was clean).
///
/// On failure the captured batch is handed back to the writer
/// ([`PartitionLog::requeue_failed_sync`](crate::log::PartitionLog)) so the
/// next cycle retries the same positioned writes. Dropping it would punch a
/// hole in the segment file that a *later* successful cycle's
/// `fetch_max(hwm)` would then claim durable — recovery would truncate at
/// the hole, losing records the watermark promised, and a cold fetch of an
/// evicted segment spanning it would fail. The bytes also stay accounted in
/// `dirty_bytes` (never decremented on the failed path), keeping the
/// early-kick threshold honest while the disk misbehaves.
pub(crate) fn sync_partition(handle: &PartitionHandle, stats: &StoreStats) -> io::Result<u64> {
    let _cycle = handle.sync_mu.lock();
    let batch = handle.log.lock().prepare_sync();
    match batch {
        Some(b) => match sync_now(&b, stats, &handle.durable, &handle.mark) {
            Ok(()) => Ok(b.bytes),
            Err(e) => {
                handle.log.lock().requeue_failed_sync(b);
                Err(e)
            }
        },
        None => Ok(0),
    }
}

struct SchedState {
    kick: bool,
    stop: bool,
}

struct FlushInner {
    partitions: Vec<PartitionHandle>,
    stats: Arc<StoreStats>,
    interval: Duration,
    batch_bytes: u64,
    state: Mutex<SchedState>,
    wakeup: Condvar,
    /// Broadcast after every completed cycle, for durability waiters.
    cycle_mu: Mutex<()>,
    cycle_cv: Condvar,
}

/// The per-topic group-commit thread. Owns nothing but handles: the logs
/// themselves belong to the topic's partitions. Dropping the scheduler runs
/// one final full sync so a clean shutdown leaves everything durable.
pub(crate) struct FlushScheduler {
    inner: Arc<FlushInner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FlushScheduler {
    pub(crate) fn start(
        name: &str,
        partitions: Vec<PartitionHandle>,
        stats: Arc<StoreStats>,
        interval: Duration,
        batch_bytes: u64,
    ) -> Self {
        let inner = Arc::new(FlushInner {
            partitions,
            stats,
            interval,
            batch_bytes,
            state: Mutex::new(SchedState {
                kick: false,
                stop: false,
            }),
            wakeup: Condvar::new(),
            cycle_mu: Mutex::new(()),
            cycle_cv: Condvar::new(),
        });
        let run_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name(format!("flusher-{name}"))
            .spawn(move || run_loop(&run_inner))
            .expect("spawn flusher thread");
        Self {
            inner,
            thread: Some(thread),
        }
    }

    /// Wake the scheduler now instead of at the next interval tick.
    pub(crate) fn kick(&self) {
        let mut st = self.inner.state.lock();
        st.kick = true;
        self.inner.wakeup.notify_one();
    }

    /// Early-kick check for the append path: cheap atomic load, and only
    /// the append that crosses the dirty-bytes threshold pays the notify.
    pub(crate) fn maybe_kick(&self) {
        if self.inner.batch_bytes > 0
            && self.inner.stats.dirty_bytes.load(Ordering::Relaxed) >= self.inner.batch_bytes
        {
            self.kick();
        }
    }

    /// Block until `ready()` holds or `deadline` passes, kicking the
    /// scheduler once up front. Re-checks after every completed cycle.
    pub(crate) fn wait_for(&self, deadline: Instant, ready: impl Fn() -> bool) -> bool {
        if ready() {
            return true;
        }
        self.kick();
        let mut guard = self.inner.cycle_mu.lock();
        loop {
            if ready() {
                return true;
            }
            if self
                .inner
                .cycle_cv
                .wait_until(&mut guard, deadline)
                .timed_out()
            {
                return ready();
            }
        }
    }
}

impl Drop for FlushScheduler {
    fn drop(&mut self) {
        self.inner.state.lock().stop = true;
        self.inner.wakeup.notify_one();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run_loop(inner: &FlushInner) {
    loop {
        let stop;
        {
            let mut st = inner.state.lock();
            if !st.stop && !st.kick {
                inner.wakeup.wait_for(&mut st, inner.interval);
            }
            stop = st.stop;
            st.kick = false;
        }
        for handle in &inner.partitions {
            if let Err(e) = sync_partition(handle, &inner.stats) {
                // A failing disk can't be handled from here; surface it.
                // The batch was re-queued and the watermark held back, so
                // the next cycle retries the same writes.
                eprintln!("pilot-broker flusher: sync failed: {e}");
            }
        }
        {
            let _g = inner.cycle_mu.lock();
            inner.cycle_cv.notify_all();
        }
        if stop {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::PartitionLog;
    use crate::record::Record;
    use crate::retention::RetentionPolicy;
    use crate::storage::SyncPolicy;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pilot-flusher-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_handle(dir: PathBuf, stats: &Arc<StoreStats>) -> PartitionHandle {
        let durable = Arc::new(AtomicU64::new(0));
        let mark = Arc::new(DurableMark::default());
        let log = PartitionLog::open_durable(
            dir,
            RetentionPolicy::unbounded(),
            SyncPolicy::OsOnly,
            Arc::clone(stats),
            Arc::clone(&durable),
            Arc::clone(&mark),
        )
        .unwrap();
        PartitionHandle {
            log: Arc::new(parking_lot::Mutex::new(log)),
            durable,
            mark,
            sync_mu: Arc::new(parking_lot::Mutex::new(())),
        }
    }

    #[test]
    fn sync_partition_advances_watermark_and_retires_dirty() {
        let dir = tmp_dir("sync");
        let stats = Arc::new(StoreStats::default());
        let h = durable_handle(dir.clone(), &stats);
        for _ in 0..5 {
            h.log.lock().append(Record::new(vec![1u8; 100]));
        }
        assert!(stats.dirty_bytes.load(Ordering::Relaxed) > 0);
        assert_eq!(h.durable.load(Ordering::Relaxed), 0);
        let retired = sync_partition(&h, &stats).unwrap();
        assert!(retired > 0);
        assert_eq!(h.durable.load(Ordering::Relaxed), 5);
        assert_eq!(stats.dirty_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(stats.fsync_count.load(Ordering::Relaxed), 1);
        // Clean partition: a second cycle is a no-op.
        assert_eq!(sync_partition(&h, &stats).unwrap(), 0);
        assert_eq!(stats.fsync_count.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scheduler_syncs_on_interval_and_kick() {
        let dir = tmp_dir("sched");
        let stats = Arc::new(StoreStats::default());
        let h = durable_handle(dir.clone(), &stats);
        let sched = FlushScheduler::start(
            "test",
            vec![h.clone()],
            Arc::clone(&stats),
            Duration::from_millis(2),
            0,
        );
        h.log.lock().append(Record::new(vec![1u8; 64]));
        let deadline = Instant::now() + Duration::from_secs(5);
        assert!(
            sched.wait_for(deadline, || h.durable.load(Ordering::Acquire) >= 1),
            "interval cycle never made the append durable"
        );
        drop(sched);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_runs_a_final_sync() {
        let dir = tmp_dir("drop-sync");
        let stats = Arc::new(StoreStats::default());
        let h = durable_handle(dir.clone(), &stats);
        let sched = FlushScheduler::start(
            "test",
            vec![h.clone()],
            Arc::clone(&stats),
            Duration::from_secs(3600), // interval never fires in this test
            0,
        );
        h.log.lock().append(Record::new(vec![2u8; 64]));
        drop(sched);
        assert_eq!(
            h.durable.load(Ordering::Acquire),
            1,
            "drop must leave appended data durable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wait_for_times_out_when_never_ready() {
        let dir = tmp_dir("timeout");
        let stats = Arc::new(StoreStats::default());
        let h = durable_handle(dir.clone(), &stats);
        let sched = FlushScheduler::start(
            "test",
            vec![h.clone()],
            Arc::clone(&stats),
            Duration::from_millis(2),
            0,
        );
        let deadline = Instant::now() + Duration::from_millis(30);
        assert!(!sched.wait_for(deadline, || false));
        drop(sched);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
