//! Broker error types.

use crate::record::Offset;

/// Everything that can go wrong talking to the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The topic does not exist.
    UnknownTopic(String),
    /// The partition index is out of range for the topic.
    UnknownPartition { topic: String, partition: usize },
    /// A fetch asked for an offset below the log start (compacted away by
    /// retention) or far beyond the high watermark.
    OffsetOutOfRange {
        requested: Offset,
        log_start: Offset,
        high_watermark: Offset,
    },
    /// A topic was created twice with different partition counts.
    TopicExists { topic: String, partitions: usize },
    /// A topic was re-created with a different durability mode than the
    /// existing one (memory-only vs. durable) — silently keeping the
    /// existing topic would give the caller the wrong persistence
    /// guarantees.
    DurabilityMismatch {
        topic: String,
        /// Whether the *existing* topic is durable.
        existing_durable: bool,
    },
    /// The consumer is not assigned the partition it tried to read.
    NotAssigned { topic: String, partition: usize },
    /// The durable storage engine failed (I/O error opening or recovering
    /// a topic's log directory).
    Storage(String),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic '{t}'"),
            BrokerError::UnknownPartition { topic, partition } => {
                write!(f, "unknown partition {partition} of topic '{topic}'")
            }
            BrokerError::OffsetOutOfRange {
                requested,
                log_start,
                high_watermark,
            } => write!(
                f,
                "offset {requested} out of range [{log_start}, {high_watermark})"
            ),
            BrokerError::TopicExists { topic, partitions } => {
                write!(
                    f,
                    "topic '{topic}' already exists with {partitions} partitions"
                )
            }
            BrokerError::DurabilityMismatch {
                topic,
                existing_durable,
            } => {
                let existing = if *existing_durable {
                    "durable"
                } else {
                    "memory-only"
                };
                write!(
                    f,
                    "topic '{topic}' already exists as {existing}; re-creation must match"
                )
            }
            BrokerError::NotAssigned { topic, partition } => {
                write!(
                    f,
                    "partition {partition} of '{topic}' is not assigned to this consumer"
                )
            }
            BrokerError::Storage(msg) => write!(f, "storage engine: {msg}"),
        }
    }
}

impl std::error::Error for BrokerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BrokerError::UnknownTopic("t".into()).to_string(),
            "unknown topic 't'"
        );
        let e = BrokerError::OffsetOutOfRange {
            requested: 5,
            log_start: 10,
            high_watermark: 20,
        };
        assert!(e.to_string().contains("offset 5"));
    }
}
