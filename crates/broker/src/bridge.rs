//! The MQTT → commit-log bridge.
//!
//! Pilot-Edge "extensively utilizes message brokering ... to manage
//! edge-to-cloud streaming topologies" (Section II-B): low-power devices
//! speak MQTT at the very edge, while the cloud side consumes from the
//! partitioned, replayable commit log. The bridge is the topology element
//! joining the two — a background pump subscribing to an MQTT filter and
//! appending every matching message to a Kafka-style topic, with a
//! configurable partitioning rule (hash of the MQTT topic by default, so
//! one device's readings stay ordered within one partition).

use crate::broker::Broker;
use crate::error::BrokerError;
use crate::mqtt::{MqttBroker, QoS, Subscription};
use crate::record::Record;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the bridge maps MQTT topics to log partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgePartitioning {
    /// Hash the full MQTT topic — per-device ordering preserved.
    TopicHash,
    /// Everything into one partition (tiny deployments).
    Single(usize),
}

/// Configuration for [`MqttBridge`].
#[derive(Debug, Clone)]
pub struct BridgeConfig {
    /// MQTT filter to subscribe to (wildcards allowed).
    pub filter: String,
    /// Destination commit-log topic (must exist).
    pub topic: String,
    /// Partitioning rule.
    pub partitioning: BridgePartitioning,
    /// Subscription QoS (AtLeastOnce = lossless bridging).
    pub qos: QoS,
    /// Bridge mailbox capacity.
    pub capacity: usize,
}

impl BridgeConfig {
    /// Lossless defaults: QoS 1, topic-hash partitioning, 1024 mailbox.
    pub fn new(filter: &str, topic: &str) -> Self {
        Self {
            filter: filter.to_string(),
            topic: topic.to_string(),
            partitioning: BridgePartitioning::TopicHash,
            qos: QoS::AtLeastOnce,
            capacity: 1024,
        }
    }
}

/// A running bridge; dropping it (or calling [`MqttBridge::stop`]) stops
/// the pump.
pub struct MqttBridge {
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MqttBridge {
    /// Start bridging `mqtt` messages matching `config.filter` into
    /// `log.topic`. Fails fast if the destination topic does not exist or
    /// the filter is invalid.
    pub fn start(
        mqtt: &MqttBroker,
        log: Broker,
        config: BridgeConfig,
    ) -> Result<Self, BrokerError> {
        let partitions = log.topic(&config.topic)?.partition_count();
        let subscription = mqtt
            .subscribe(&config.filter, config.qos, config.capacity)
            .map_err(BrokerError::UnknownTopic)?;
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let fwd2 = Arc::clone(&forwarded);
        let thread = std::thread::Builder::new()
            .name(format!("mqtt-bridge-{}", config.topic))
            .spawn(move || pump(subscription, log, config, partitions, &stop2, &fwd2))
            .expect("spawn bridge thread");
        Ok(Self {
            stop,
            forwarded,
            thread: Some(thread),
        })
    }

    /// Messages forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Stop the pump and join its thread.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.forwarded()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MqttBridge {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn pump(
    subscription: Subscription,
    log: Broker,
    config: BridgeConfig,
    partitions: usize,
    stop: &AtomicBool,
    forwarded: &AtomicU64,
) {
    while !stop.load(Ordering::Relaxed) {
        let Some(msg) = subscription.recv(Duration::from_millis(50)) else {
            continue;
        };
        let partition = match config.partitioning {
            BridgePartitioning::Single(p) => p.min(partitions.saturating_sub(1)),
            BridgePartitioning::TopicHash => {
                let mut h = DefaultHasher::new();
                msg.topic.hash(&mut h);
                (h.finish() % partitions as u64) as usize
            }
        };
        let record = Record::new(msg.payload)
            .with_key(msg.topic.into_bytes())
            .with_timestamp(msg.timestamp_us);
        if log.append(&config.topic, partition, record).is_ok() {
            forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::RetentionPolicy;

    fn setup(partitions: usize) -> (MqttBroker, Broker) {
        let mqtt = MqttBroker::new();
        let log = Broker::new();
        log.create_topic("ingest", partitions, RetentionPolicy::unbounded())
            .unwrap();
        (mqtt, log)
    }

    fn drain(log: &Broker, partitions: usize) -> Vec<Record> {
        let mut out = Vec::new();
        for p in 0..partitions {
            out.extend(log.fetch("ingest", p, 0, 10_000, Duration::ZERO).unwrap());
        }
        out
    }

    fn wait_forwarded(bridge: &MqttBridge, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while bridge.forwarded() < n {
            assert!(std::time::Instant::now() < deadline, "bridge stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn bridges_matching_messages() {
        let (mqtt, log) = setup(2);
        let bridge =
            MqttBridge::start(&mqtt, log.clone(), BridgeConfig::new("plant/#", "ingest")).unwrap();
        mqtt.publish("plant/a", &b"1"[..], QoS::AtLeastOnce, false, 11)
            .unwrap();
        mqtt.publish("office/x", &b"no"[..], QoS::AtLeastOnce, false, 0)
            .unwrap();
        mqtt.publish("plant/b", &b"2"[..], QoS::AtLeastOnce, false, 22)
            .unwrap();
        wait_forwarded(&bridge, 2);
        assert_eq!(bridge.stop(), 2);
        let records = drain(&log, 2);
        assert_eq!(records.len(), 2);
        // MQTT topic carried as the record key; timestamp preserved.
        let keys: Vec<&[u8]> = records.iter().map(|r| r.key.as_deref().unwrap()).collect();
        assert!(keys.contains(&&b"plant/a"[..]));
        assert!(keys.contains(&&b"plant/b"[..]));
        assert!(records.iter().any(|r| r.timestamp_us == 11));
    }

    #[test]
    fn topic_hash_keeps_device_order_in_one_partition() {
        let (mqtt, log) = setup(4);
        let bridge =
            MqttBridge::start(&mqtt, log.clone(), BridgeConfig::new("dev/#", "ingest")).unwrap();
        for i in 0..50u32 {
            mqtt.publish(
                "dev/7",
                bytes::Bytes::copy_from_slice(&i.to_le_bytes()),
                QoS::AtLeastOnce,
                false,
                0,
            )
            .unwrap();
        }
        wait_forwarded(&bridge, 50);
        bridge.stop();
        // All 50 in one partition, in order.
        let mut found = None;
        for p in 0..4 {
            let recs = log.fetch("ingest", p, 0, 100, Duration::ZERO).unwrap();
            if !recs.is_empty() {
                assert!(found.is_none(), "records split across partitions");
                assert_eq!(recs.len(), 50);
                let values: Vec<u32> = recs
                    .iter()
                    .map(|r| u32::from_le_bytes(r.value.as_ref().try_into().unwrap()))
                    .collect();
                assert_eq!(values, (0..50).collect::<Vec<_>>());
                found = Some(p);
            }
        }
        assert!(found.is_some());
    }

    #[test]
    fn single_partitioning_targets_one_partition() {
        let (mqtt, log) = setup(3);
        let mut cfg = BridgeConfig::new("a/#", "ingest");
        cfg.partitioning = BridgePartitioning::Single(2);
        let bridge = MqttBridge::start(&mqtt, log.clone(), cfg).unwrap();
        for t in ["a/x", "a/y", "a/z"] {
            mqtt.publish(t, &b"m"[..], QoS::AtLeastOnce, false, 0)
                .unwrap();
        }
        wait_forwarded(&bridge, 3);
        bridge.stop();
        assert_eq!(log.high_watermark("ingest", 2).unwrap(), 3);
        assert_eq!(log.high_watermark("ingest", 0).unwrap(), 0);
    }

    #[test]
    fn missing_destination_topic_fails_fast() {
        let mqtt = MqttBroker::new();
        let log = Broker::new();
        assert!(MqttBridge::start(&mqtt, log, BridgeConfig::new("a/#", "nope")).is_err());
    }

    #[test]
    fn invalid_filter_fails_fast() {
        let (mqtt, log) = setup(1);
        assert!(MqttBridge::start(&mqtt, log, BridgeConfig::new("a/#/b", "ingest")).is_err());
    }

    #[test]
    fn drop_stops_the_pump() {
        let (mqtt, log) = setup(1);
        {
            let _bridge =
                MqttBridge::start(&mqtt, log.clone(), BridgeConfig::new("a/#", "ingest")).unwrap();
        } // dropped here
        assert_eq!(mqtt.subscriber_count(), 0, "subscription released");
    }
}
