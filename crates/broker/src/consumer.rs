//! The consumer: position tracking, blocking polls, group commits.

use crate::broker::{Broker, GroupId, TopicId};
use crate::error::BrokerError;
use crate::log::ReadError;
use crate::record::{Offset, Record};
use crate::topic::{ArrivalWaiter, Topic};
use std::collections::HashMap;
use std::sync::Arc;
use std::task::Waker;
use std::time::Duration;

/// Batches returned by a multi-partition poll round: `(partition,
/// records)` pairs, sorted by partition, empty partitions omitted.
pub type PartitionBatches = Vec<(usize, Vec<Record>)>;

/// A consumer bound to one topic, reading an explicit set of partitions on
/// behalf of a consumer group.
///
/// Like a Kafka consumer it is single-threaded (`!Sync` use pattern): the
/// Pilot-Edge runtime creates one consumer per processing task, one task per
/// partition ("we keep the ratio of partitions constant between Kafka and
/// Dask").
///
/// The topic handle and the interned group/topic ids are resolved once at
/// construction: polls read straight off the `Arc<Topic>` (no registry
/// lookup per fetch) and commits use `Copy` keys (no string hashing per
/// message) — the hot path is O(1) in allocations.
pub struct Consumer {
    broker: Broker,
    topic: String,
    /// Cached handle: polls skip the broker's topic-registry lock.
    handle: Arc<Topic>,
    group: String,
    group_id: GroupId,
    topic_id: TopicId,
    /// partition → next offset to read.
    positions: HashMap<usize, Offset>,
    /// Paused partitions are skipped by [`Consumer::poll`] /
    /// [`Consumer::poll_many`] but keep their positions (Kafka's
    /// pause/resume flow-control primitive).
    paused: std::collections::HashSet<usize>,
    /// Lazily-allocated readiness slot for [`Consumer::poll_many_ready`];
    /// held for the consumer's lifetime and released on drop.
    waiter: Option<ArrivalWaiter>,
}

impl Consumer {
    /// Create a consumer over `partitions` of `topic`. Positions resume
    /// from the group's committed offsets (or the log start).
    pub fn new(
        broker: Broker,
        topic: &str,
        group: &str,
        partitions: &[usize],
    ) -> Result<Self, BrokerError> {
        let t = broker.topic(topic)?;
        let mut positions = HashMap::with_capacity(partitions.len());
        for &p in partitions {
            if p >= t.partition_count() {
                return Err(BrokerError::UnknownPartition {
                    topic: topic.to_string(),
                    partition: p,
                });
            }
            let start = broker
                .committed(group, topic, p)
                .unwrap_or_else(|| t.log_start(p).unwrap_or(0));
            positions.insert(p, start);
        }
        let group_id = broker.group_id(group);
        let topic_id = broker.topic_id(topic);
        Ok(Self {
            broker,
            topic: topic.to_string(),
            handle: t,
            group: group.to_string(),
            group_id,
            topic_id,
            positions,
            paused: std::collections::HashSet::new(),
            waiter: None,
        })
    }

    /// The topic this consumer reads.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The consumer group this consumer commits on behalf of.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Partitions this consumer reads.
    pub fn partitions(&self) -> Vec<usize> {
        let mut p: Vec<usize> = self.positions.keys().copied().collect();
        p.sort_unstable();
        p
    }

    /// Next offset to read for a partition.
    pub fn position(&self, partition: usize) -> Option<Offset> {
        self.positions.get(&partition).copied()
    }

    /// Read one partition through the cached topic handle, mapping the
    /// trimmed-offset case to [`BrokerError::OffsetOutOfRange`].
    fn fetch_via_handle(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<Record>, BrokerError> {
        match self.handle.read_wait(partition, offset, max, timeout) {
            None => Err(BrokerError::UnknownPartition {
                topic: self.topic.clone(),
                partition,
            }),
            Some(Ok(recs)) => Ok(recs),
            Some(Err(ReadError::Trimmed(log_start))) => Err(BrokerError::OffsetOutOfRange {
                requested: offset,
                log_start,
                high_watermark: self.handle.high_watermark(partition).unwrap_or(log_start),
            }),
            Some(Err(ReadError::Storage(msg))) => Err(BrokerError::Storage(msg)),
        }
    }

    /// Poll one partition: up to `max` records, blocking up to `timeout`.
    /// Advances the in-memory position (commit is separate, like Kafka).
    pub fn poll_partition(
        &mut self,
        partition: usize,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<Record>, BrokerError> {
        let pos = *self
            .positions
            .get(&partition)
            .ok_or_else(|| BrokerError::NotAssigned {
                topic: self.topic.clone(),
                partition,
            })?;
        match self.fetch_via_handle(partition, pos, max, timeout) {
            Ok(recs) => {
                if let Some(last) = recs.last() {
                    self.positions.insert(partition, last.offset + 1);
                }
                Ok(recs)
            }
            Err(BrokerError::OffsetOutOfRange { log_start, .. }) => {
                // Auto-reset to the earliest retained offset (Kafka's
                // `auto.offset.reset = earliest`) and retry once.
                self.positions.insert(partition, log_start);
                let recs = self.fetch_via_handle(partition, log_start, max, timeout)?;
                if let Some(last) = recs.last() {
                    self.positions.insert(partition, last.offset + 1);
                }
                Ok(recs)
            }
            Err(e) => Err(e),
        }
    }

    /// Poll every non-paused assigned partition in **one** multi-partition
    /// fetch: up to `max_per_partition` records each, blocking up to
    /// `timeout` for any partition to have data (one shared condvar wait,
    /// not one timeout per partition — see [`Topic::read_many`]).
    ///
    /// Returns `(partition, records)` pairs for the partitions that had
    /// data, sorted by partition. Positions advance like
    /// [`Consumer::poll_partition`]; trimmed offsets auto-reset to the log
    /// start (Kafka's `auto.offset.reset = earliest`).
    pub fn poll_many(
        &mut self,
        max_per_partition: usize,
        timeout: Duration,
    ) -> Result<Vec<(usize, Vec<Record>)>, BrokerError> {
        let mut reqs: Vec<(usize, Offset)> = self
            .positions
            .iter()
            .filter(|(p, _)| !self.paused.contains(p))
            .map(|(&p, &off)| (p, off))
            .collect();
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        reqs.sort_unstable_by_key(|&(p, _)| p);
        let mut ready = self.handle.read_many(&reqs, max_per_partition, timeout);
        ready.sort_unstable_by_key(|&(p, _)| p);
        let mut out = Vec::with_capacity(ready.len());
        for (p, res) in ready {
            let recs = match res {
                Ok(recs) => recs,
                Err(ReadError::Trimmed(log_start)) => {
                    // Auto-reset and retry this partition non-blocking.
                    self.positions.insert(p, log_start);
                    self.fetch_via_handle(p, log_start, max_per_partition, Duration::ZERO)?
                }
                Err(ReadError::Storage(msg)) => return Err(BrokerError::Storage(msg)),
            };
            if let Some(last) = recs.last() {
                self.positions.insert(p, last.offset + 1);
            }
            if !recs.is_empty() {
                out.push((p, recs));
            }
        }
        Ok(out)
    }

    /// Non-blocking, event-driven variant of [`Consumer::poll_many`] for
    /// reactor-driven consumers.
    ///
    /// Sweeps every non-paused assigned partition once. If anything is
    /// ready, returns `Ok(Some(batches))` exactly like a successful
    /// `poll_many` (positions advance, trimmed offsets auto-reset). If
    /// nothing is ready, `waker` is registered with the topic's arrival
    /// registry — the next append to any polled partition fires it — and
    /// `Ok(None)` is returned, meaning *parked, a wake is guaranteed*.
    ///
    /// When there is nothing to poll (no assignment, or every partition
    /// paused), returns `Ok(Some(vec![]))` **without registering**: no
    /// append is expected to wake the caller, so the caller must pace
    /// itself (check [`Consumer::all_paused`]) instead of waiting on the
    /// broker. Spurious wakes are possible; treat a wake as "poll again",
    /// not "data present".
    pub fn poll_many_ready(
        &mut self,
        max_per_partition: usize,
        waker: &Waker,
    ) -> Result<Option<PartitionBatches>, BrokerError> {
        let mut reqs: Vec<(usize, Offset)> = self
            .positions
            .iter()
            .filter(|(p, _)| !self.paused.contains(p))
            .map(|(&p, &off)| (p, off))
            .collect();
        if reqs.is_empty() {
            return Ok(Some(Vec::new()));
        }
        reqs.sort_unstable_by_key(|&(p, _)| p);
        if self.waiter.is_none() {
            self.waiter = Some(self.handle.arrival_waiter());
        }
        let waiter = self.waiter.as_ref().expect("waiter just ensured");
        let mut ready = self
            .handle
            .read_many_or_register(&reqs, max_per_partition, waiter, waker);
        if ready.is_empty() {
            return Ok(None);
        }
        ready.sort_unstable_by_key(|&(p, _)| p);
        let mut out = Vec::with_capacity(ready.len());
        for (p, res) in ready {
            let recs = match res {
                Ok(recs) => recs,
                Err(ReadError::Trimmed(log_start)) => {
                    // Auto-reset and retry this partition non-blocking.
                    self.positions.insert(p, log_start);
                    self.fetch_via_handle(p, log_start, max_per_partition, Duration::ZERO)?
                }
                Err(ReadError::Storage(msg)) => return Err(BrokerError::Storage(msg)),
            };
            if let Some(last) = recs.last() {
                self.positions.insert(p, last.offset + 1);
            }
            if !recs.is_empty() {
                out.push((p, recs));
            }
        }
        Ok(Some(out))
    }

    /// Poll every assigned partition once (round-robin), collecting up to
    /// `max_per_partition` records each. The timeout applies to the first
    /// partition only; later partitions are polled non-blocking so one idle
    /// partition cannot starve the rest.
    pub fn poll(
        &mut self,
        max_per_partition: usize,
        timeout: Duration,
    ) -> Result<Vec<Record>, BrokerError> {
        let parts: Vec<usize> = self
            .partitions()
            .into_iter()
            .filter(|p| !self.paused.contains(p))
            .collect();
        let mut out = Vec::new();
        for (i, p) in parts.into_iter().enumerate() {
            let t = if i == 0 { timeout } else { Duration::ZERO };
            out.extend(self.poll_partition(p, max_per_partition, t)?);
        }
        Ok(out)
    }

    /// Pause a partition: subsequent [`Consumer::poll`] calls skip it.
    pub fn pause(&mut self, partition: usize) -> Result<(), BrokerError> {
        if !self.positions.contains_key(&partition) {
            return Err(BrokerError::NotAssigned {
                topic: self.topic.clone(),
                partition,
            });
        }
        self.paused.insert(partition);
        Ok(())
    }

    /// Resume a paused partition.
    pub fn resume(&mut self, partition: usize) {
        self.paused.remove(&partition);
    }

    /// Currently paused partitions.
    pub fn paused(&self) -> Vec<usize> {
        let mut p: Vec<usize> = self.paused.iter().copied().collect();
        p.sort_unstable();
        p
    }

    /// Whether every assigned partition is paused (`false` when nothing is
    /// assigned). The consumer's idle condition: with all partitions paused
    /// a poll would return nothing, so callers should sleep instead of
    /// spinning. Allocation-free, unlike comparing [`Consumer::paused`]
    /// against the assignment length.
    pub fn all_paused(&self) -> bool {
        !self.positions.is_empty() && self.paused.len() == self.positions.len()
    }

    /// Commit current positions for the group: one batched write under
    /// interned ids, regardless of how many partitions this member owns.
    pub fn commit(&self) {
        self.broker.commit_offsets(
            self.group_id,
            self.topic_id,
            self.positions.iter().map(|(&p, &off)| (p, off)),
        );
    }

    /// Seek a partition to an absolute offset.
    pub fn seek(&mut self, partition: usize, offset: Offset) -> Result<(), BrokerError> {
        if !self.positions.contains_key(&partition) {
            return Err(BrokerError::NotAssigned {
                topic: self.topic.clone(),
                partition,
            });
        }
        self.positions.insert(partition, offset);
        Ok(())
    }

    /// Seek a partition to the first record at/after `ts_us` (Kafka's
    /// `offsetsForTimes` + `seek` flow: "start from messages newer than T").
    pub fn seek_to_timestamp(&mut self, partition: usize, ts_us: u64) -> Result<(), BrokerError> {
        if !self.positions.contains_key(&partition) {
            return Err(BrokerError::NotAssigned {
                topic: self.topic.clone(),
                partition,
            });
        }
        let offset = self
            .broker
            .offset_for_timestamp(&self.topic, partition, ts_us)?;
        self.positions.insert(partition, offset);
        Ok(())
    }

    /// Total lag across assigned partitions (records behind the watermark).
    pub fn lag(&self) -> Result<u64, BrokerError> {
        let mut total = 0;
        for (&p, &pos) in &self.positions {
            let hwm =
                self.handle
                    .high_watermark(p)
                    .ok_or_else(|| BrokerError::UnknownPartition {
                        topic: self.topic.clone(),
                        partition: p,
                    })?;
            total += hwm.saturating_sub(pos);
        }
        Ok(total)
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        if let Some(w) = self.waiter.take() {
            self.handle.release_waiter(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::RetentionPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::{Wake, Waker};

    fn setup(partitions: usize) -> Broker {
        let b = Broker::new();
        b.create_topic("t", partitions, RetentionPolicy::unbounded())
            .unwrap();
        b
    }

    fn rec(s: &str) -> Record {
        Record::new(bytes::Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn all_paused_tracks_assignment() {
        let b = setup(2);
        let mut c = Consumer::new(b, "t", "g", &[0, 1]).unwrap();
        assert!(!c.all_paused());
        c.pause(0).unwrap();
        assert!(!c.all_paused());
        c.pause(1).unwrap();
        assert!(c.all_paused());
        c.resume(0);
        assert!(!c.all_paused());
    }

    #[test]
    fn poll_advances_position() {
        let b = setup(1);
        b.append("t", 0, rec("a")).unwrap();
        b.append("t", 0, rec("b")).unwrap();
        let mut c = Consumer::new(b, "t", "g", &[0]).unwrap();
        let r1 = c.poll_partition(0, 1, Duration::ZERO).unwrap();
        assert_eq!(r1[0].value.as_ref(), b"a");
        let r2 = c.poll_partition(0, 1, Duration::ZERO).unwrap();
        assert_eq!(r2[0].value.as_ref(), b"b");
        assert_eq!(c.position(0), Some(2));
    }

    #[test]
    fn resume_from_committed_offset() {
        let b = setup(1);
        for s in ["a", "b", "c"] {
            b.append("t", 0, rec(s)).unwrap();
        }
        {
            let mut c = Consumer::new(b.clone(), "t", "g", &[0]).unwrap();
            c.poll_partition(0, 2, Duration::ZERO).unwrap();
            c.commit();
        }
        let mut c2 = Consumer::new(b, "t", "g", &[0]).unwrap();
        let r = c2.poll_partition(0, 10, Duration::ZERO).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value.as_ref(), b"c");
    }

    #[test]
    fn different_groups_are_independent() {
        let b = setup(1);
        b.append("t", 0, rec("a")).unwrap();
        let mut c1 = Consumer::new(b.clone(), "t", "g1", &[0]).unwrap();
        c1.poll_partition(0, 10, Duration::ZERO).unwrap();
        c1.commit();
        let mut c2 = Consumer::new(b, "t", "g2", &[0]).unwrap();
        assert_eq!(c2.poll_partition(0, 10, Duration::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn poll_all_partitions() {
        let b = setup(3);
        for p in 0..3 {
            b.append("t", p, rec("x")).unwrap();
        }
        let mut c = Consumer::new(b, "t", "g", &[0, 1, 2]).unwrap();
        let recs = c.poll(10, Duration::ZERO).unwrap();
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn unassigned_partition_rejected() {
        let b = setup(2);
        let mut c = Consumer::new(b, "t", "g", &[0]).unwrap();
        assert!(matches!(
            c.poll_partition(1, 1, Duration::ZERO),
            Err(BrokerError::NotAssigned { .. })
        ));
        assert!(c.seek(1, 0).is_err());
    }

    #[test]
    fn lag_counts_unread() {
        let b = setup(1);
        for _ in 0..5 {
            b.append("t", 0, rec("x")).unwrap();
        }
        let mut c = Consumer::new(b, "t", "g", &[0]).unwrap();
        assert_eq!(c.lag().unwrap(), 5);
        c.poll_partition(0, 2, Duration::ZERO).unwrap();
        assert_eq!(c.lag().unwrap(), 3);
    }

    #[test]
    fn auto_reset_on_trimmed_offset() {
        let b = Broker::new();
        b.create_topic(
            "t",
            1,
            RetentionPolicy::by_records(crate::log::SEGMENT_RECORDS as u64),
        )
        .unwrap();
        let mut c = Consumer::new(b.clone(), "t", "g", &[0]).unwrap();
        for _ in 0..(crate::log::SEGMENT_RECORDS * 2 + 1) {
            b.append("t", 0, rec("x")).unwrap();
        }
        // Position 0 was trimmed; the poll auto-resets to log start.
        let recs = c.poll_partition(0, 5, Duration::ZERO).unwrap();
        assert!(!recs.is_empty());
        assert!(recs[0].offset >= crate::log::SEGMENT_RECORDS as u64);
        assert_eq!(recs[0].offset, b.topic("t").unwrap().log_start(0).unwrap());
    }

    #[test]
    fn seek_rewinds() {
        let b = setup(1);
        for s in ["a", "b"] {
            b.append("t", 0, rec(s)).unwrap();
        }
        let mut c = Consumer::new(b, "t", "g", &[0]).unwrap();
        c.poll_partition(0, 10, Duration::ZERO).unwrap();
        c.seek(0, 0).unwrap();
        let r = c.poll_partition(0, 10, Duration::ZERO).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn paused_partition_skipped_by_poll() {
        let b = setup(2);
        b.append("t", 0, rec("a")).unwrap();
        b.append("t", 1, rec("b")).unwrap();
        let mut c = Consumer::new(b, "t", "g", &[0, 1]).unwrap();
        c.pause(0).unwrap();
        let recs = c.poll(10, Duration::ZERO).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value.as_ref(), b"b");
        assert_eq!(c.paused(), vec![0]);
        c.resume(0);
        let recs = c.poll(10, Duration::ZERO).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value.as_ref(), b"a");
    }

    #[test]
    fn pause_unassigned_rejected() {
        let b = setup(1);
        let mut c = Consumer::new(b, "t", "g", &[0]).unwrap();
        assert!(c.pause(5).is_err());
    }

    #[test]
    fn seek_to_timestamp_skips_old_records() {
        let b = setup(1);
        for ts in [100u64, 200, 300] {
            b.append("t", 0, Record::new(vec![1u8]).with_timestamp(ts))
                .unwrap();
        }
        let mut c = Consumer::new(b, "t", "g", &[0]).unwrap();
        c.seek_to_timestamp(0, 150).unwrap();
        let recs = c.poll_partition(0, 10, Duration::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].timestamp_us, 200);
        assert!(c.seek_to_timestamp(3, 0).is_err());
    }

    #[test]
    fn bad_partition_at_construction() {
        let b = setup(1);
        assert!(Consumer::new(b, "t", "g", &[7]).is_err());
    }

    #[test]
    fn poll_many_returns_per_partition_batches() {
        let b = setup(4);
        b.append("t", 0, rec("a")).unwrap();
        b.append("t", 2, rec("b")).unwrap();
        b.append("t", 2, rec("c")).unwrap();
        let mut c = Consumer::new(b, "t", "g", &[0, 1, 2, 3]).unwrap();
        let got = c.poll_many(10, Duration::ZERO).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1.len(), 1);
        assert_eq!(got[1].0, 2);
        assert_eq!(got[1].1.len(), 2);
        // Positions advanced: a second poll sees nothing.
        assert!(c.poll_many(10, Duration::ZERO).unwrap().is_empty());
        assert_eq!(c.position(2), Some(2));
    }

    #[test]
    fn poll_many_skips_paused() {
        let b = setup(2);
        b.append("t", 0, rec("a")).unwrap();
        b.append("t", 1, rec("b")).unwrap();
        let mut c = Consumer::new(b, "t", "g", &[0, 1]).unwrap();
        c.pause(0).unwrap();
        let got = c.poll_many(10, Duration::ZERO).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn poll_many_auto_resets_trimmed_offsets() {
        let b = Broker::new();
        b.create_topic(
            "t",
            1,
            RetentionPolicy::by_records(crate::log::SEGMENT_RECORDS as u64),
        )
        .unwrap();
        let mut c = Consumer::new(b.clone(), "t", "g", &[0]).unwrap();
        for _ in 0..(crate::log::SEGMENT_RECORDS * 2 + 1) {
            b.append("t", 0, rec("x")).unwrap();
        }
        let got = c.poll_many(5, Duration::ZERO).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].1[0].offset >= crate::log::SEGMENT_RECORDS as u64);
    }

    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let c = Arc::new(CountingWake(AtomicUsize::new(0)));
        let w = Waker::from(Arc::clone(&c));
        (c, w)
    }

    #[test]
    fn poll_many_ready_returns_data_immediately() {
        let b = setup(2);
        b.append("t", 1, rec("a")).unwrap();
        let mut c = Consumer::new(b, "t", "g", &[0, 1]).unwrap();
        let (count, waker) = counting_waker();
        let got = c.poll_many_ready(10, &waker).unwrap().expect("data ready");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
        assert_eq!(c.position(1), Some(1));
        assert_eq!(
            count.0.load(Ordering::SeqCst),
            0,
            "no wake when data was ready"
        );
    }

    #[test]
    fn poll_many_ready_registers_then_wakes_on_append() {
        let b = setup(2);
        let mut c = Consumer::new(b.clone(), "t", "g", &[0, 1]).unwrap();
        let (count, waker) = counting_waker();
        assert!(c.poll_many_ready(10, &waker).unwrap().is_none(), "parked");
        assert_eq!(count.0.load(Ordering::SeqCst), 0);
        b.append("t", 0, rec("x")).unwrap();
        assert_eq!(count.0.load(Ordering::SeqCst), 1, "append fired the waker");
        // Re-poll after the wake: the data is there.
        let got = c
            .poll_many_ready(10, &waker)
            .unwrap()
            .expect("data after wake");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn poll_many_ready_all_paused_does_not_register() {
        let b = setup(1);
        let mut c = Consumer::new(b.clone(), "t", "g", &[0]).unwrap();
        c.pause(0).unwrap();
        let (count, waker) = counting_waker();
        let got = c.poll_many_ready(10, &waker).unwrap();
        assert_eq!(got, Some(Vec::new()), "nothing to poll, not parked");
        b.append("t", 0, rec("x")).unwrap();
        assert_eq!(
            count.0.load(Ordering::SeqCst),
            0,
            "a fully-paused consumer must not be woken by appends"
        );
    }

    #[test]
    fn dropped_consumer_releases_its_waiter() {
        let b = setup(1);
        let t = b.topic("t").unwrap();
        {
            let mut c = Consumer::new(b.clone(), "t", "g", &[0]).unwrap();
            let (_count, waker) = counting_waker();
            assert!(c.poll_many_ready(10, &waker).unwrap().is_none());
        }
        // The registration died with the consumer: appends wake nobody and
        // the stale entry is cleaned up lazily.
        b.append("t", 0, rec("x")).unwrap();
        assert_eq!(t.watcher_entries(), 0);
    }

    #[test]
    fn poll_many_commit_roundtrip() {
        let b = setup(3);
        for p in 0..3 {
            b.append("t", p, rec("x")).unwrap();
        }
        {
            let mut c = Consumer::new(b.clone(), "t", "g", &[0, 1, 2]).unwrap();
            c.poll_many(10, Duration::ZERO).unwrap();
            c.commit();
        }
        // Batched commit landed for every partition: a successor sees
        // nothing left.
        let mut c2 = Consumer::new(b, "t", "g", &[0, 1, 2]).unwrap();
        assert!(c2.poll_many(10, Duration::ZERO).unwrap().is_empty());
    }
}
