//! Topics: named sets of partitions with blocking-fetch support.

use crate::log::PartitionLog;
use crate::record::{Offset, Record};
use crate::retention::RetentionPolicy;
use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One partition plus its data-arrival condition variable.
struct Partition {
    log: Mutex<PartitionLog>,
    data_arrived: Condvar,
}

/// A named topic with a fixed number of partitions.
///
/// The paper keeps "one partition per edge device for simplicity and ... the
/// ratio of partitions constant between Kafka and Dask" — partition count is
/// therefore fixed at creation, like Kafka's.
pub struct Topic {
    name: String,
    partitions: Vec<Partition>,
    /// Topic-wide arrival sequence number: bumped on every append so
    /// multi-partition waiters ([`Topic::read_many`]) block on one condvar
    /// instead of one `read_wait` timeout per partition.
    arrivals: Mutex<u64>,
    any_arrival: Condvar,
}

impl Topic {
    /// Create a topic with `partitions` empty partitions.
    pub fn new(name: &str, partitions: usize, retention: RetentionPolicy) -> Self {
        assert!(partitions > 0, "a topic needs at least one partition");
        Self {
            name: name.to_string(),
            partitions: (0..partitions)
                .map(|_| Partition {
                    log: Mutex::new(PartitionLog::new(retention)),
                    data_arrived: Condvar::new(),
                })
                .collect(),
            arrivals: Mutex::new(0),
            any_arrival: Condvar::new(),
        }
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Partition count.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Append to a partition, waking blocked fetchers. Returns the offset.
    pub fn append(&self, partition: usize, record: Record) -> Option<Offset> {
        let p = self.partitions.get(partition)?;
        let offset = p.log.lock().append(record);
        p.data_arrived.notify_all();
        *self.arrivals.lock() += 1;
        self.any_arrival.notify_all();
        Some(offset)
    }

    /// Non-blocking read. `Err(log_start)` when `offset` was trimmed.
    pub fn read(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
    ) -> Option<Result<Vec<Record>, Offset>> {
        let p = self.partitions.get(partition)?;
        Some(p.log.lock().read(offset, max))
    }

    /// Blocking read: waits up to `timeout` for data at `offset` before
    /// returning (possibly empty on timeout).
    ///
    /// The wait tracks an absolute deadline, so total block time is bounded
    /// by `timeout` even when the condvar wakes repeatedly (appends racing
    /// ahead of `offset`, spurious wakes) without the read turning
    /// non-empty.
    pub fn read_wait(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
        timeout: Duration,
    ) -> Option<Result<Vec<Record>, Offset>> {
        let p = self.partitions.get(partition)?;
        let deadline = Instant::now() + timeout;
        let mut log = p.log.lock();
        loop {
            match log.read(offset, max) {
                Ok(recs) if recs.is_empty() => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero()
                        || p.data_arrived.wait_for(&mut log, remaining).timed_out()
                    {
                        return Some(Ok(Vec::new()));
                    }
                    // else: new data (or spurious wake) — retry the read.
                }
                other => return Some(other),
            }
        }
    }

    /// Multi-partition fetch: read up to `max_per_partition` records from
    /// each `(partition, offset)` request in one pass, blocking up to
    /// `timeout` for *any* of them to have data.
    ///
    /// Returns one `(partition, result)` pair per partition that yielded
    /// records or a trimmed-offset error (`Err(log_start)`); partitions
    /// that are merely empty are omitted, and unknown partitions are
    /// skipped. A member consuming many partitions blocks on the topic's
    /// shared arrival condvar instead of paying one `read_wait` timeout per
    /// partition — the consumer-side half of the cell fan-in scale-out.
    pub fn read_many(
        &self,
        requests: &[(usize, Offset)],
        max_per_partition: usize,
        timeout: Duration,
    ) -> Vec<(usize, Result<Vec<Record>, Offset>)> {
        let deadline = Instant::now() + timeout;
        loop {
            // Snapshot the arrival sequence *before* the sweep: an append
            // landing mid-sweep bumps it, so the re-check below cannot
            // miss a wakeup between "sweep saw nothing" and "wait".
            let seq = *self.arrivals.lock();
            let mut out = Vec::new();
            for &(p, offset) in requests {
                let Some(part) = self.partitions.get(p) else {
                    continue;
                };
                match part.log.lock().read(offset, max_per_partition) {
                    Ok(recs) if recs.is_empty() => {}
                    other => out.push((p, other)),
                }
            }
            if !out.is_empty() {
                return out;
            }
            let mut arrivals = self.arrivals.lock();
            if *arrivals != seq {
                continue; // an append raced the sweep — re-read immediately
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero()
                || self
                    .any_arrival
                    .wait_for(&mut arrivals, remaining)
                    .timed_out()
            {
                return Vec::new();
            }
        }
    }

    /// High watermark of a partition.
    pub fn high_watermark(&self, partition: usize) -> Option<Offset> {
        Some(self.partitions.get(partition)?.log.lock().high_watermark())
    }

    /// Log-start offset of a partition.
    pub fn log_start(&self, partition: usize) -> Option<Offset> {
        Some(self.partitions.get(partition)?.log.lock().log_start())
    }

    /// First offset at/after a timestamp in a partition (see
    /// [`PartitionLog::offset_for_timestamp`]).
    pub fn offset_for_timestamp(&self, partition: usize, ts_us: u64) -> Option<Offset> {
        Some(
            self.partitions
                .get(partition)?
                .log
                .lock()
                .offset_for_timestamp(ts_us),
        )
    }

    /// Total retained bytes across partitions.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.log.lock().bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn topic(parts: usize) -> Topic {
        Topic::new("t", parts, RetentionPolicy::unbounded())
    }

    #[test]
    fn partitions_are_independent() {
        let t = topic(3);
        t.append(0, Record::new(&b"a"[..])).unwrap();
        t.append(2, Record::new(&b"b"[..])).unwrap();
        assert_eq!(t.high_watermark(0), Some(1));
        assert_eq!(t.high_watermark(1), Some(0));
        assert_eq!(t.high_watermark(2), Some(1));
    }

    #[test]
    fn unknown_partition_is_none() {
        let t = topic(1);
        assert!(t.append(5, Record::new(&b"x"[..])).is_none());
        assert!(t.read(5, 0, 1).is_none());
    }

    #[test]
    fn read_wait_times_out_empty() {
        let t = topic(1);
        let r = t
            .read_wait(0, 0, 10, Duration::from_millis(20))
            .unwrap()
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn read_wait_wakes_on_append() {
        let t = Arc::new(topic(1));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.read_wait(0, 0, 10, Duration::from_secs(5))
                .unwrap()
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        t.append(0, Record::new(&b"wake"[..])).unwrap();
        let recs = h.join().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value.as_ref(), b"wake");
    }

    #[test]
    fn per_partition_fifo_order_under_concurrency() {
        let t = Arc::new(topic(2));
        let mut handles = Vec::new();
        for p in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    t.append(
                        p,
                        Record::new(bytes::Bytes::copy_from_slice(&i.to_le_bytes())),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for p in 0..2 {
            let recs = t.read(p, 0, 500).unwrap().unwrap();
            let values: Vec<u32> = recs
                .iter()
                .map(|r| u32::from_le_bytes(r.value.as_ref().try_into().unwrap()))
                .collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(values, sorted, "partition {p} not FIFO");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        topic(0);
    }

    #[test]
    fn read_wait_deadline_survives_unrelated_wakes() {
        // Appends at offsets below the requested one keep waking the
        // condvar without satisfying the read; the total block time must
        // still be bounded by the timeout, not reset on every wake.
        let t = Arc::new(topic(1));
        let t2 = Arc::clone(&t);
        let keep_waking = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let kw = Arc::clone(&keep_waking);
        let waker = std::thread::spawn(move || {
            while kw.load(std::sync::atomic::Ordering::Relaxed) {
                // Wakes the waiter but never reaches offset 100.
                t2.append(0, Record::new(&b"x"[..])).unwrap();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let start = std::time::Instant::now();
        let r = t
            .read_wait(0, 100, 10, Duration::from_millis(60))
            .unwrap()
            .unwrap();
        let elapsed = start.elapsed();
        keep_waking.store(false, std::sync::atomic::Ordering::Relaxed);
        waker.join().unwrap();
        assert!(r.is_empty());
        assert!(
            elapsed < Duration::from_millis(400),
            "read_wait blocked {elapsed:?} — timeout reset on every wake?"
        );
    }

    #[test]
    fn read_many_collects_across_partitions() {
        let t = topic(4);
        t.append(1, Record::new(&b"a"[..])).unwrap();
        t.append(3, Record::new(&b"b"[..])).unwrap();
        t.append(3, Record::new(&b"c"[..])).unwrap();
        let reqs = [(0, 0), (1, 0), (2, 0), (3, 0)];
        let mut got = t.read_many(&reqs, 10, Duration::ZERO);
        got.sort_by_key(|(p, _)| *p);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1.as_ref().unwrap().len(), 1);
        assert_eq!(got[1].0, 3);
        assert_eq!(got[1].1.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn read_many_wakes_on_any_partition() {
        let t = Arc::new(topic(8));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            let reqs: Vec<(usize, u64)> = (0..8).map(|p| (p, 0)).collect();
            t2.read_many(&reqs, 10, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        t.append(6, Record::new(&b"late"[..])).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 6);
    }

    #[test]
    fn read_many_times_out_empty_and_skips_unknown() {
        let t = topic(2);
        let got = t.read_many(&[(0, 0), (9, 0)], 5, Duration::from_millis(10));
        assert!(got.is_empty());
    }
}
