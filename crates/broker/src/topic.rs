//! Topics: named sets of partitions with blocking-fetch support.

use crate::log::PartitionLog;
use crate::record::{Offset, Record};
use crate::retention::RetentionPolicy;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// One partition plus its data-arrival condition variable.
struct Partition {
    log: Mutex<PartitionLog>,
    data_arrived: Condvar,
}

/// A named topic with a fixed number of partitions.
///
/// The paper keeps "one partition per edge device for simplicity and ... the
/// ratio of partitions constant between Kafka and Dask" — partition count is
/// therefore fixed at creation, like Kafka's.
pub struct Topic {
    name: String,
    partitions: Vec<Partition>,
}

impl Topic {
    /// Create a topic with `partitions` empty partitions.
    pub fn new(name: &str, partitions: usize, retention: RetentionPolicy) -> Self {
        assert!(partitions > 0, "a topic needs at least one partition");
        Self {
            name: name.to_string(),
            partitions: (0..partitions)
                .map(|_| Partition {
                    log: Mutex::new(PartitionLog::new(retention)),
                    data_arrived: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Partition count.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Append to a partition, waking blocked fetchers. Returns the offset.
    pub fn append(&self, partition: usize, record: Record) -> Option<Offset> {
        let p = self.partitions.get(partition)?;
        let offset = p.log.lock().append(record);
        p.data_arrived.notify_all();
        Some(offset)
    }

    /// Non-blocking read. `Err(log_start)` when `offset` was trimmed.
    pub fn read(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
    ) -> Option<Result<Vec<Record>, Offset>> {
        let p = self.partitions.get(partition)?;
        Some(p.log.lock().read(offset, max))
    }

    /// Blocking read: waits up to `timeout` for data at `offset` before
    /// returning (possibly empty on timeout).
    pub fn read_wait(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
        timeout: Duration,
    ) -> Option<Result<Vec<Record>, Offset>> {
        let p = self.partitions.get(partition)?;
        let mut log = p.log.lock();
        loop {
            match log.read(offset, max) {
                Ok(recs) if recs.is_empty() => {
                    if p.data_arrived.wait_for(&mut log, timeout).timed_out() {
                        return Some(Ok(Vec::new()));
                    }
                    // else: new data (or spurious wake) — retry the read.
                }
                other => return Some(other),
            }
        }
    }

    /// High watermark of a partition.
    pub fn high_watermark(&self, partition: usize) -> Option<Offset> {
        Some(self.partitions.get(partition)?.log.lock().high_watermark())
    }

    /// Log-start offset of a partition.
    pub fn log_start(&self, partition: usize) -> Option<Offset> {
        Some(self.partitions.get(partition)?.log.lock().log_start())
    }

    /// First offset at/after a timestamp in a partition (see
    /// [`PartitionLog::offset_for_timestamp`]).
    pub fn offset_for_timestamp(&self, partition: usize, ts_us: u64) -> Option<Offset> {
        Some(
            self.partitions
                .get(partition)?
                .log
                .lock()
                .offset_for_timestamp(ts_us),
        )
    }

    /// Total retained bytes across partitions.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.log.lock().bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn topic(parts: usize) -> Topic {
        Topic::new("t", parts, RetentionPolicy::unbounded())
    }

    #[test]
    fn partitions_are_independent() {
        let t = topic(3);
        t.append(0, Record::new(&b"a"[..])).unwrap();
        t.append(2, Record::new(&b"b"[..])).unwrap();
        assert_eq!(t.high_watermark(0), Some(1));
        assert_eq!(t.high_watermark(1), Some(0));
        assert_eq!(t.high_watermark(2), Some(1));
    }

    #[test]
    fn unknown_partition_is_none() {
        let t = topic(1);
        assert!(t.append(5, Record::new(&b"x"[..])).is_none());
        assert!(t.read(5, 0, 1).is_none());
    }

    #[test]
    fn read_wait_times_out_empty() {
        let t = topic(1);
        let r = t
            .read_wait(0, 0, 10, Duration::from_millis(20))
            .unwrap()
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn read_wait_wakes_on_append() {
        let t = Arc::new(topic(1));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.read_wait(0, 0, 10, Duration::from_secs(5))
                .unwrap()
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        t.append(0, Record::new(&b"wake"[..])).unwrap();
        let recs = h.join().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value.as_ref(), b"wake");
    }

    #[test]
    fn per_partition_fifo_order_under_concurrency() {
        let t = Arc::new(topic(2));
        let mut handles = Vec::new();
        for p in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    t.append(p, Record::new(bytes::Bytes::copy_from_slice(&i.to_le_bytes())))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for p in 0..2 {
            let recs = t.read(p, 0, 500).unwrap().unwrap();
            let values: Vec<u32> = recs
                .iter()
                .map(|r| u32::from_le_bytes(r.value.as_ref().try_into().unwrap()))
                .collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(values, sorted, "partition {p} not FIFO");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        topic(0);
    }
}
