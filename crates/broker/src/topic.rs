//! Topics: named sets of partitions with blocking-fetch support and a
//! waker-based readiness registry for event-driven consumers.

use crate::log::{PartitionLog, ReadError};
use crate::record::{Offset, Record};
use crate::retention::RetentionPolicy;
use crate::storage::flusher::{sync_partition, FlushScheduler};
use crate::storage::{DurabilityConfig, LogStats, PartitionHandle, StoreStats, SyncPolicy};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};
use std::time::{Duration, Instant};

/// One partition plus its data-arrival condition variable. The log sits
/// behind an `Arc` so a durable topic's flusher can reach it without
/// holding a reference into the topic itself.
struct Partition {
    log: Arc<Mutex<PartitionLog>>,
    data_arrived: Condvar,
}

/// The durable half of a topic: shared storage counters, per-partition
/// flusher handles, and (for group commit) the scheduler thread itself.
struct TopicStore {
    stats: Arc<StoreStats>,
    handles: Vec<PartitionHandle>,
    /// `Some` only under [`SyncPolicy::GroupCommit`]; the other policies
    /// sync inline (`EachAppend`) or on demand (`OsOnly`).
    scheduler: Option<FlushScheduler>,
}

/// A registered readiness slot in a topic's arrival registry.
///
/// Obtained from [`Topic::arrival_waiter`]; passed to
/// [`Topic::read_many_or_register`] to arm a [`Waker`] that fires when any
/// watched partition receives an append. The handle is *owned*: callers that
/// keep one across polls (e.g. a consumer driving a reactor task) must give
/// it back via [`Topic::release_waiter`] so the slot can be reused.
///
/// The handle is deliberately not `Clone`: one slot, one logical waiter.
#[derive(Debug)]
pub struct ArrivalWaiter {
    slot: usize,
}

/// One waiter's slot: the armed waker plus an epoch that invalidates stale
/// watcher-list entries lazily (no O(partitions) cleanup on wake).
#[derive(Default)]
struct WaiterSlot {
    epoch: u64,
    waker: Option<Waker>,
}

/// The arrival registry: which waiter watches which partition.
///
/// `seq` is bumped under the lock on every append so registration can detect
/// an append that raced the caller's (lock-free) partition sweep — the
/// classic lost-wakeup window. `watchers[p]` holds `(slot, epoch)` pairs;
/// an entry is live only while the slot's epoch still matches, so a wake (or
/// a re-registration) invalidates every other entry of that waiter in O(1)
/// and stale pairs are discarded the next time something walks the list.
struct ArrivalState {
    seq: u64,
    slots: Vec<WaiterSlot>,
    free: Vec<usize>,
    watchers: Vec<Vec<(usize, u64)>>,
}

/// Wakes a parked thread: the [`Waker`] backing the *blocking* fetch paths,
/// so one-shot waiters ride the same exact-wake registry as reactor tasks.
struct ThreadUnparker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// A named topic with a fixed number of partitions.
///
/// The paper keeps "one partition per edge device for simplicity and ... the
/// ratio of partitions constant between Kafka and Dask" — partition count is
/// therefore fixed at creation, like Kafka's.
///
/// Multi-partition waits are event-driven: a waiter registers a [`Waker`]
/// for exactly the partitions it reads ([`Topic::read_many_or_register`]),
/// and an append wakes *only* the waiters registered on that partition —
/// not every blocked consumer on the topic. With tens of thousands of cell
/// members this replaces an O(members) `notify_all` broadcast per append
/// with O(watchers-of-one-partition) targeted wakes (usually one).
pub struct Topic {
    name: String,
    partitions: Vec<Partition>,
    arrivals: Mutex<ArrivalState>,
    /// `Some` when the topic persists to disk (see [`Topic::new_durable`]).
    store: Option<TopicStore>,
}

impl Topic {
    /// Create a memory-only topic with `partitions` empty partitions.
    pub fn new(name: &str, partitions: usize, retention: RetentionPolicy) -> Self {
        assert!(partitions > 0, "a topic needs at least one partition");
        Self {
            name: name.to_string(),
            partitions: (0..partitions)
                .map(|_| Partition {
                    log: Arc::new(Mutex::new(PartitionLog::new(retention))),
                    data_arrived: Condvar::new(),
                })
                .collect(),
            arrivals: Mutex::new(ArrivalState {
                seq: 0,
                slots: Vec::new(),
                free: Vec::new(),
                watchers: (0..partitions).map(|_| Vec::new()).collect(),
            }),
            store: None,
        }
    }

    /// Create (or reopen) a durable topic: each partition persists to
    /// `cfg.dir/p{n}/` through the [`storage`](crate::storage) engine, and
    /// under [`SyncPolicy::GroupCommit`] one flusher thread advances every
    /// partition's durable watermark on the commit-window boundary.
    ///
    /// Reopening a directory with existing segment files recovers them:
    /// torn tails are truncated and the clean prefix becomes the log.
    pub fn new_durable(
        name: &str,
        partitions: usize,
        retention: RetentionPolicy,
        cfg: &DurabilityConfig,
    ) -> std::io::Result<Self> {
        assert!(partitions > 0, "a topic needs at least one partition");
        let stats = Arc::new(StoreStats::default());
        let mut parts = Vec::with_capacity(partitions);
        let mut handles = Vec::with_capacity(partitions);
        for p in 0..partitions {
            let durable = Arc::new(AtomicU64::new(0));
            let mark = Arc::new(crate::storage::DurableMark::default());
            let log = Arc::new(Mutex::new(PartitionLog::open_durable(
                cfg.dir.join(format!("p{p}")),
                retention,
                cfg.policy,
                Arc::clone(&stats),
                Arc::clone(&durable),
                Arc::clone(&mark),
            )?));
            handles.push(PartitionHandle {
                log: Arc::clone(&log),
                durable,
                mark,
                sync_mu: Arc::new(Mutex::new(())),
            });
            parts.push(Partition {
                log,
                data_arrived: Condvar::new(),
            });
        }
        let scheduler = match cfg.policy {
            SyncPolicy::GroupCommit {
                interval,
                batch_bytes,
            } => Some(FlushScheduler::start(
                name,
                handles.clone(),
                Arc::clone(&stats),
                interval,
                batch_bytes,
            )),
            SyncPolicy::EachAppend | SyncPolicy::OsOnly => None,
        };
        Ok(Self {
            name: name.to_string(),
            partitions: parts,
            arrivals: Mutex::new(ArrivalState {
                seq: 0,
                slots: Vec::new(),
                free: Vec::new(),
                watchers: (0..partitions).map(|_| Vec::new()).collect(),
            }),
            store: Some(TopicStore {
                stats,
                handles,
                scheduler,
            }),
        })
    }

    /// True when the topic persists to disk.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Partition count.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Append to a partition, waking blocked fetchers. Returns the offset.
    ///
    /// Wakes exactly the waiters registered on this partition (plus the
    /// partition's own [`Topic::read_wait`] condvar); wakers are invoked
    /// *outside* the registry lock so a woken reactor thread never contends
    /// with the publisher still holding it.
    pub fn append(&self, partition: usize, record: Record) -> Option<Offset> {
        let p = self.partitions.get(partition)?;
        let offset = p.log.lock().append(record);
        p.data_arrived.notify_all();
        let mut wakers: Vec<Waker> = Vec::new();
        {
            let mut st = self.arrivals.lock();
            st.seq += 1;
            let ArrivalState {
                slots, watchers, ..
            } = &mut *st;
            for (slot, epoch) in watchers[partition].drain(..) {
                let s = &mut slots[slot];
                if s.epoch == epoch {
                    // Live registration: consume it. Bumping the epoch
                    // invalidates this waiter's entries on every *other*
                    // partition it watched, without touching their lists.
                    s.epoch = s.epoch.wrapping_add(1);
                    if let Some(w) = s.waker.take() {
                        wakers.push(w);
                    }
                }
            }
        }
        for w in wakers {
            w.wake();
        }
        if let Some(store) = &self.store {
            if let Some(sched) = &store.scheduler {
                // Cheap atomic check: only the append crossing the
                // dirty-bytes threshold pays a notify.
                sched.maybe_kick();
            }
        }
        Some(offset)
    }

    /// Allocate a readiness slot for [`Topic::read_many_or_register`].
    ///
    /// Long-lived callers (one per consumer) should hold one across polls
    /// and hand it back with [`Topic::release_waiter`] when done.
    pub fn arrival_waiter(&self) -> ArrivalWaiter {
        let mut st = self.arrivals.lock();
        let slot = match st.free.pop() {
            Some(s) => s,
            None => {
                st.slots.push(WaiterSlot::default());
                st.slots.len() - 1
            }
        };
        ArrivalWaiter { slot }
    }

    /// Return a readiness slot; any armed waker is dropped un-fired and
    /// stale watcher entries die lazily via the epoch bump.
    pub fn release_waiter(&self, waiter: ArrivalWaiter) {
        let mut st = self.arrivals.lock();
        let s = &mut st.slots[waiter.slot];
        s.epoch = s.epoch.wrapping_add(1);
        s.waker = None;
        st.free.push(waiter.slot);
    }

    /// Diagnostic: total `(slot, epoch)` entries across all partition
    /// watcher lists, including stale ones awaiting lazy cleanup. Stress
    /// tests use this to show the registry doesn't leak under churn.
    pub fn watcher_entries(&self) -> usize {
        let st = self.arrivals.lock();
        st.watchers.iter().map(Vec::len).sum()
    }

    /// Non-blocking read. `Err(ReadError::Trimmed)` when `offset` was
    /// trimmed; `Err(ReadError::Storage)` when a cold segment failed to
    /// read back.
    pub fn read(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
    ) -> Option<Result<Vec<Record>, ReadError>> {
        let p = self.partitions.get(partition)?;
        Some(p.log.lock().read(offset, max))
    }

    /// Blocking read: waits up to `timeout` for data at `offset` before
    /// returning (possibly empty on timeout).
    ///
    /// The wait tracks an absolute deadline, so total block time is bounded
    /// by `timeout` even when the condvar wakes repeatedly (appends racing
    /// ahead of `offset`, spurious wakes) without the read turning
    /// non-empty.
    pub fn read_wait(
        &self,
        partition: usize,
        offset: Offset,
        max: usize,
        timeout: Duration,
    ) -> Option<Result<Vec<Record>, ReadError>> {
        let p = self.partitions.get(partition)?;
        let deadline = Instant::now() + timeout;
        let mut log = p.log.lock();
        loop {
            match log.read(offset, max) {
                Ok(recs) if recs.is_empty() => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero()
                        || p.data_arrived.wait_for(&mut log, remaining).timed_out()
                    {
                        return Some(Ok(Vec::new()));
                    }
                    // else: new data (or spurious wake) — retry the read.
                }
                other => return Some(other),
            }
        }
    }

    /// Multi-partition fetch *or* waker registration: the non-blocking core
    /// of both [`Topic::read_many`] and the reactor consumer.
    ///
    /// Sweeps every `(partition, offset)` request once (unknown partitions
    /// skipped). If anything is ready it is returned and any previous
    /// registration of `waiter` is cancelled. If nothing is ready, `waker`
    /// is armed on `waiter`'s slot and the slot is enrolled on each
    /// requested partition's watcher list — the next append to any of them
    /// fires the waker exactly once. Returning empty therefore means
    /// "registered": the caller can park/yield without a lost-wakeup
    /// window, because registration re-checks the arrival sequence number
    /// captured before the sweep and restarts if an append raced it.
    ///
    /// Spurious wakes are possible (an append at offsets the caller already
    /// read still fires the waker); callers must tolerate a wake followed
    /// by another empty sweep.
    pub fn read_many_or_register(
        &self,
        requests: &[(usize, Offset)],
        max_per_partition: usize,
        waiter: &ArrivalWaiter,
        waker: &Waker,
    ) -> Vec<(usize, Result<Vec<Record>, ReadError>)> {
        loop {
            // Snapshot the arrival sequence *before* the sweep: an append
            // landing mid-sweep bumps it, so the registration-time re-check
            // below cannot miss a wakeup between "sweep saw nothing" and
            // "armed the waker".
            let seq = self.arrivals.lock().seq;
            let mut out = Vec::new();
            for &(p, offset) in requests {
                let Some(part) = self.partitions.get(p) else {
                    continue;
                };
                match part.log.lock().read(offset, max_per_partition) {
                    Ok(recs) if recs.is_empty() => {}
                    other => out.push((p, other)),
                }
            }
            let mut st = self.arrivals.lock();
            if !out.is_empty() {
                // Data found: cancel any previous registration so a later
                // append can't deliver a wake for a poll that already
                // completed.
                let s = &mut st.slots[waiter.slot];
                s.epoch = s.epoch.wrapping_add(1);
                s.waker = None;
                return out;
            }
            if st.seq != seq {
                continue; // an append raced the sweep — re-read immediately
            }
            let ArrivalState {
                slots, watchers, ..
            } = &mut *st;
            let s = &mut slots[waiter.slot];
            s.epoch = s.epoch.wrapping_add(1); // invalidate prior registration
            s.waker = Some(waker.clone());
            let epoch = s.epoch;
            for &(p, _) in requests {
                if let Some(list) = watchers.get_mut(p) {
                    // Self-clean: this waiter keeps at most one entry per
                    // partition list no matter how often it re-registers.
                    list.retain(|&(sl, _)| sl != waiter.slot);
                    list.push((waiter.slot, epoch));
                }
            }
            return Vec::new();
        }
    }

    /// Multi-partition fetch: read up to `max_per_partition` records from
    /// each `(partition, offset)` request in one pass, blocking up to
    /// `timeout` for *any* of them to have data.
    ///
    /// Returns one `(partition, result)` pair per partition that yielded
    /// records or a read error ([`ReadError::Trimmed`] /
    /// [`ReadError::Storage`]); partitions that are merely empty are
    /// omitted, and unknown partitions are
    /// skipped. Built on [`Topic::read_many_or_register`] with a
    /// thread-parking waker: a blocked member is woken only by appends to
    /// partitions it actually reads, so ten thousand parked members cost an
    /// appender exactly as much as one.
    pub fn read_many(
        &self,
        requests: &[(usize, Offset)],
        max_per_partition: usize,
        timeout: Duration,
    ) -> Vec<(usize, Result<Vec<Record>, ReadError>)> {
        let deadline = Instant::now() + timeout;
        let waiter = self.arrival_waiter();
        let unparker = Arc::new(ThreadUnparker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&unparker));
        loop {
            let out = self.read_many_or_register(requests, max_per_partition, &waiter, &waker);
            if !out.is_empty() {
                self.release_waiter(waiter);
                return out;
            }
            loop {
                if unparker.notified.swap(false, Ordering::AcqRel) {
                    break; // woken by an append on a watched partition
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    self.release_waiter(waiter);
                    return Vec::new();
                }
                // `park_timeout` may return spuriously; the deadline (not a
                // per-wait timeout) bounds total block time.
                std::thread::park_timeout(remaining);
            }
        }
    }

    /// High watermark of a partition.
    pub fn high_watermark(&self, partition: usize) -> Option<Offset> {
        Some(self.partitions.get(partition)?.log.lock().high_watermark())
    }

    /// Log-start offset of a partition.
    pub fn log_start(&self, partition: usize) -> Option<Offset> {
        Some(self.partitions.get(partition)?.log.lock().log_start())
    }

    /// Durable watermark of a partition: the offset below which every
    /// record survives a crash. Equals the high watermark for a
    /// memory-only topic (nothing stronger exists to wait for); lags it by
    /// at most one commit window for a durable one. Lock-free for durable
    /// topics (one atomic load).
    pub fn durable_watermark(&self, partition: usize) -> Option<Offset> {
        if partition >= self.partitions.len() {
            return None;
        }
        match &self.store {
            Some(store) => Some(store.handles[partition].durable.load(Ordering::Acquire)),
            None => Some(self.partitions[partition].log.lock().high_watermark()),
        }
    }

    /// Block until everything below `offset` in `partition` is durable, or
    /// `timeout` passes. Returns whether durability was reached. Producers
    /// that need an fsync-acknowledged send call this after `append`; the
    /// wait kicks the group-commit scheduler, so it resolves in one commit
    /// cycle, not a full interval.
    pub fn wait_durable(
        &self,
        partition: usize,
        offset: Offset,
        timeout: Duration,
    ) -> Option<bool> {
        if partition >= self.partitions.len() {
            return None;
        }
        let Some(store) = &self.store else {
            return Some(self.partitions[partition].log.lock().high_watermark() >= offset);
        };
        let handle = &store.handles[partition];
        if handle.durable.load(Ordering::Acquire) >= offset {
            return Some(true);
        }
        match &store.scheduler {
            Some(sched) => Some(sched.wait_for(Instant::now() + timeout, || {
                handle.durable.load(Ordering::Acquire) >= offset
            })),
            None => {
                // EachAppend is durable at append time; OsOnly syncs on
                // demand — either way one explicit cycle settles it.
                let _ = sync_partition(handle, &store.stats);
                Some(handle.durable.load(Ordering::Acquire) >= offset)
            }
        }
    }

    /// Force an fsync cycle over every partition now (clean-shutdown and
    /// test hook). Returns the bytes retired. No-op for memory-only topics.
    pub fn sync(&self) -> u64 {
        let Some(store) = &self.store else { return 0 };
        store
            .handles
            .iter()
            .map(|h| sync_partition(h, &store.stats).unwrap_or(0))
            .sum()
    }

    /// The durable *file* frontier of a partition: `(segment base offset,
    /// fsynced bytes within that segment's file)`. Crash simulations may
    /// truncate the partition's tail anywhere at or beyond this mark
    /// without breaking the durability contract. `None` for memory-only
    /// topics or unknown partitions.
    pub fn durable_file_mark(&self, partition: usize) -> Option<(u64, u64)> {
        let store = self.store.as_ref()?;
        Some(store.handles.get(partition)?.mark.get())
    }

    /// Point-in-time storage-engine stats for this topic (all zeros for a
    /// memory-only topic except `segment_count`).
    pub fn log_stats(&self) -> LogStats {
        let mut out = LogStats::default();
        for p in &self.partitions {
            let log = p.log.lock();
            out.segment_count += log.segment_count() as u64;
            out.durable_lag += log.high_watermark() - log.durable_watermark();
        }
        if let Some(store) = &self.store {
            out.dirty_bytes = store.stats.dirty_bytes.load(Ordering::Relaxed);
            out.fsync_us = store.stats.fsync_us.load(Ordering::Relaxed);
            out.fsync_count = store.stats.fsync_count.load(Ordering::Relaxed);
        }
        out
    }

    /// Records currently resident in memory across partitions (diagnostic:
    /// durable topics evict cold segments, so this stays bounded while the
    /// log grows).
    pub fn resident_records(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.log.lock().resident_records())
            .sum()
    }

    /// First offset at/after a timestamp in a partition (see
    /// [`PartitionLog::offset_for_timestamp`]).
    pub fn offset_for_timestamp(&self, partition: usize, ts_us: u64) -> Option<Offset> {
        Some(
            self.partitions
                .get(partition)?
                .log
                .lock()
                .offset_for_timestamp(ts_us),
        )
    }

    /// Total retained bytes across partitions.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.log.lock().bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn topic(parts: usize) -> Topic {
        Topic::new("t", parts, RetentionPolicy::unbounded())
    }

    /// A waker that counts its invocations.
    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let c = Arc::new(CountingWake(AtomicUsize::new(0)));
        let w = Waker::from(Arc::clone(&c));
        (c, w)
    }

    #[test]
    fn partitions_are_independent() {
        let t = topic(3);
        t.append(0, Record::new(&b"a"[..])).unwrap();
        t.append(2, Record::new(&b"b"[..])).unwrap();
        assert_eq!(t.high_watermark(0), Some(1));
        assert_eq!(t.high_watermark(1), Some(0));
        assert_eq!(t.high_watermark(2), Some(1));
    }

    #[test]
    fn unknown_partition_is_none() {
        let t = topic(1);
        assert!(t.append(5, Record::new(&b"x"[..])).is_none());
        assert!(t.read(5, 0, 1).is_none());
    }

    #[test]
    fn read_wait_times_out_empty() {
        let t = topic(1);
        let r = t
            .read_wait(0, 0, 10, Duration::from_millis(20))
            .unwrap()
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn read_wait_wakes_on_append() {
        let t = Arc::new(topic(1));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.read_wait(0, 0, 10, Duration::from_secs(5))
                .unwrap()
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        t.append(0, Record::new(&b"wake"[..])).unwrap();
        let recs = h.join().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value.as_ref(), b"wake");
    }

    #[test]
    fn per_partition_fifo_order_under_concurrency() {
        let t = Arc::new(topic(2));
        let mut handles = Vec::new();
        for p in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    t.append(
                        p,
                        Record::new(bytes::Bytes::copy_from_slice(&i.to_le_bytes())),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for p in 0..2 {
            let recs = t.read(p, 0, 500).unwrap().unwrap();
            let values: Vec<u32> = recs
                .iter()
                .map(|r| u32::from_le_bytes(r.value.as_ref().try_into().unwrap()))
                .collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(values, sorted, "partition {p} not FIFO");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        topic(0);
    }

    #[test]
    fn read_wait_deadline_survives_unrelated_wakes() {
        // Appends at offsets below the requested one keep waking the
        // condvar without satisfying the read; the total block time must
        // still be bounded by the timeout, not reset on every wake.
        let t = Arc::new(topic(1));
        let t2 = Arc::clone(&t);
        let keep_waking = Arc::new(AtomicBool::new(true));
        let kw = Arc::clone(&keep_waking);
        let waker = std::thread::spawn(move || {
            while kw.load(Ordering::Relaxed) {
                // Wakes the waiter but never reaches offset 100.
                t2.append(0, Record::new(&b"x"[..])).unwrap();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let start = std::time::Instant::now();
        let r = t
            .read_wait(0, 100, 10, Duration::from_millis(60))
            .unwrap()
            .unwrap();
        let elapsed = start.elapsed();
        keep_waking.store(false, Ordering::Relaxed);
        waker.join().unwrap();
        assert!(r.is_empty());
        assert!(
            elapsed < Duration::from_millis(400),
            "read_wait blocked {elapsed:?} — timeout reset on every wake?"
        );
    }

    #[test]
    fn read_many_collects_across_partitions() {
        let t = topic(4);
        t.append(1, Record::new(&b"a"[..])).unwrap();
        t.append(3, Record::new(&b"b"[..])).unwrap();
        t.append(3, Record::new(&b"c"[..])).unwrap();
        let reqs = [(0, 0), (1, 0), (2, 0), (3, 0)];
        let mut got = t.read_many(&reqs, 10, Duration::ZERO);
        got.sort_by_key(|(p, _)| *p);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1.as_ref().unwrap().len(), 1);
        assert_eq!(got[1].0, 3);
        assert_eq!(got[1].1.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn read_many_wakes_on_any_partition() {
        let t = Arc::new(topic(8));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            let reqs: Vec<(usize, u64)> = (0..8).map(|p| (p, 0)).collect();
            t2.read_many(&reqs, 10, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        t.append(6, Record::new(&b"late"[..])).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 6);
    }

    #[test]
    fn read_many_times_out_empty_and_skips_unknown() {
        let t = topic(2);
        let got = t.read_many(&[(0, 0), (9, 0)], 5, Duration::from_millis(10));
        assert!(got.is_empty());
    }

    #[test]
    fn register_returns_data_without_arming() {
        let t = topic(2);
        t.append(1, Record::new(&b"a"[..])).unwrap();
        let waiter = t.arrival_waiter();
        let (count, waker) = counting_waker();
        let got = t.read_many_or_register(&[(0, 0), (1, 0)], 10, &waiter, &waker);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
        // Data was ready: the waker must not have been armed, so a later
        // append fires nothing.
        t.append(0, Record::new(&b"b"[..])).unwrap();
        assert_eq!(count.0.load(Ordering::SeqCst), 0);
        t.release_waiter(waiter);
    }

    #[test]
    fn armed_waker_fires_once_on_watched_partition() {
        let t = topic(4);
        let waiter = t.arrival_waiter();
        let (count, waker) = counting_waker();
        let empty = t.read_many_or_register(&[(1, 0), (2, 0)], 10, &waiter, &waker);
        assert!(empty.is_empty(), "nothing appended yet");
        // Appends on unwatched partitions must not wake.
        t.append(0, Record::new(&b"x"[..])).unwrap();
        t.append(3, Record::new(&b"x"[..])).unwrap();
        assert_eq!(count.0.load(Ordering::SeqCst), 0);
        // First append on a watched partition wakes exactly once …
        t.append(2, Record::new(&b"hit"[..])).unwrap();
        assert_eq!(count.0.load(Ordering::SeqCst), 1);
        // … and the registration is consumed: further appends are silent.
        t.append(1, Record::new(&b"late"[..])).unwrap();
        t.append(2, Record::new(&b"late"[..])).unwrap();
        assert_eq!(count.0.load(Ordering::SeqCst), 1);
        t.release_waiter(waiter);
    }

    #[test]
    fn append_wakes_only_the_partitions_waiters() {
        // Two waiters on disjoint partitions: an append wakes its own
        // watcher and leaves the other parked — the no-thundering-herd
        // property the registry exists for.
        let t = topic(2);
        let w0 = t.arrival_waiter();
        let w1 = t.arrival_waiter();
        let (c0, k0) = counting_waker();
        let (c1, k1) = counting_waker();
        assert!(t.read_many_or_register(&[(0, 0)], 10, &w0, &k0).is_empty());
        assert!(t.read_many_or_register(&[(1, 0)], 10, &w1, &k1).is_empty());
        t.append(0, Record::new(&b"x"[..])).unwrap();
        assert_eq!(c0.0.load(Ordering::SeqCst), 1);
        assert_eq!(c1.0.load(Ordering::SeqCst), 0);
        t.release_waiter(w0);
        t.release_waiter(w1);
    }

    #[test]
    fn reregistration_replaces_not_accumulates() {
        let t = topic(1);
        let waiter = t.arrival_waiter();
        let (count, waker) = counting_waker();
        for _ in 0..100 {
            // Future offset: never satisfied, registers every time.
            assert!(t
                .read_many_or_register(&[(0, 1_000)], 10, &waiter, &waker)
                .is_empty());
        }
        assert_eq!(
            t.watcher_entries(),
            1,
            "re-registration must replace the old entry, not pile up"
        );
        // One append: exactly one (spurious, offset-wise) wake.
        t.append(0, Record::new(&b"x"[..])).unwrap();
        assert_eq!(count.0.load(Ordering::SeqCst), 1);
        t.release_waiter(waiter);
    }

    #[test]
    fn released_waiter_never_fires() {
        let t = topic(1);
        let waiter = t.arrival_waiter();
        let (count, waker) = counting_waker();
        assert!(t
            .read_many_or_register(&[(0, 0)], 10, &waiter, &waker)
            .is_empty());
        t.release_waiter(waiter);
        t.append(0, Record::new(&b"x"[..])).unwrap();
        assert_eq!(
            count.0.load(Ordering::SeqCst),
            0,
            "a released slot's stale watcher entry must not fire"
        );
        // The slot is reusable and the stale entry got cleaned lazily.
        let w2 = t.arrival_waiter();
        t.release_waiter(w2);
        assert_eq!(t.watcher_entries(), 0);
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pilot-topic-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_topic_durable_watermark_is_high_watermark() {
        let t = topic(1);
        assert!(!t.is_durable());
        t.append(0, Record::new(&b"x"[..])).unwrap();
        assert_eq!(t.durable_watermark(0), Some(1));
        assert_eq!(t.wait_durable(0, 1, Duration::ZERO), Some(true));
        assert_eq!(t.wait_durable(9, 0, Duration::ZERO), None);
        assert_eq!(t.durable_file_mark(0), None);
        assert_eq!(t.sync(), 0);
        let stats = t.log_stats();
        assert_eq!(stats.dirty_bytes, 0);
        assert_eq!(stats.durable_lag, 0);
        assert_eq!(stats.segment_count, 1);
    }

    #[test]
    fn durable_topic_group_commit_reaches_watermark() {
        let dir = tmp_dir("group-commit");
        let cfg = crate::storage::DurabilityConfig::new(&dir).with_policy(
            crate::storage::SyncPolicy::GroupCommit {
                interval: Duration::from_millis(2),
                batch_bytes: 1 << 20,
            },
        );
        let t = Topic::new_durable("d", 2, RetentionPolicy::unbounded(), &cfg).unwrap();
        assert!(t.is_durable());
        for p in 0..2 {
            for _ in 0..10 {
                t.append(p, Record::new(vec![7u8; 64])).unwrap();
            }
        }
        assert!(
            t.wait_durable(0, 10, Duration::from_secs(5)).unwrap(),
            "group commit never covered partition 0"
        );
        assert!(t.wait_durable(1, 10, Duration::from_secs(5)).unwrap());
        assert_eq!(t.durable_watermark(0), Some(10));
        let stats = t.log_stats();
        assert_eq!(stats.durable_lag, 0);
        assert!(stats.fsync_count >= 1);
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_topic_survives_reopen_with_same_records() {
        let dir = tmp_dir("reopen");
        let cfg = crate::storage::DurabilityConfig::new(&dir);
        let mut expect = Vec::new();
        {
            let t = Topic::new_durable("d", 1, RetentionPolicy::unbounded(), &cfg).unwrap();
            for i in 0..50u64 {
                let payload = vec![(i % 256) as u8; 10 + (i as usize % 20)];
                expect.push(payload.clone());
                t.append(0, Record::new(payload).with_timestamp(i)).unwrap();
            }
            t.sync();
        }
        let t = Topic::new_durable("d", 1, RetentionPolicy::unbounded(), &cfg).unwrap();
        assert_eq!(t.high_watermark(0), Some(50));
        assert_eq!(t.durable_watermark(0), Some(50));
        let recs = t.read(0, 0, 100).unwrap().unwrap();
        assert_eq!(recs.len(), 50);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
            assert_eq!(r.value.as_ref(), &expect[i][..], "record {i}");
            assert_eq!(r.timestamp_us, i as u64);
        }
        // Appending after reopen continues the offset sequence.
        assert_eq!(t.append(0, Record::new(&b"next"[..])), Some(50));
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blocked_reader_wakes_on_durable_topic_append() {
        // The arrival registry path is policy-independent; pin it anyway.
        let dir = tmp_dir("wake");
        let cfg = crate::storage::DurabilityConfig::new(&dir);
        let t = Arc::new(Topic::new_durable("d", 1, RetentionPolicy::unbounded(), &cfg).unwrap());
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.read_wait(0, 0, 10, Duration::from_secs(5))
                .unwrap()
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        t.append(0, Record::new(&b"wake"[..])).unwrap();
        assert_eq!(h.join().unwrap().len(), 1);
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
