//! The batching producer.
//!
//! Kafka producers buffer records per partition and flush when the batch is
//! full or a linger deadline passes; batching is one of the ablation axes
//! (`ablation_batching` in the bench crate) because it trades per-message
//! latency for broker throughput.

use crate::broker::Broker;
use crate::error::BrokerError;
use crate::record::{Record, RecordMetadata};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// How records are mapped to partitions when no explicit partition is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Cycle through partitions.
    RoundRobin,
    /// Hash the record key (keyless records fall back to round-robin).
    KeyHash,
}

/// Producer configuration.
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Flush a partition's batch when it holds this many records.
    pub batch_records: usize,
    /// Flush a partition's batch when it holds this many payload bytes.
    pub batch_bytes: usize,
    /// Flush any non-empty batch older than this.
    pub linger: Duration,
    /// Default partitioner.
    pub partitioner: Partitioner,
}

impl Default for ProducerConfig {
    /// Kafka-ish defaults: 16 KiB batches, no linger (flush per send unless
    /// a batch size is reached — the paper's experiments send one block per
    /// message, so defaults keep latency minimal).
    fn default() -> Self {
        Self {
            batch_records: 1,
            batch_bytes: 16 * 1024,
            linger: Duration::ZERO,
            partitioner: Partitioner::RoundRobin,
        }
    }
}

struct Batch {
    records: Vec<Record>,
    bytes: usize,
    opened_at: Instant,
}

impl Batch {
    fn new() -> Self {
        Self {
            records: Vec::new(),
            bytes: 0,
            opened_at: Instant::now(),
        }
    }
}

/// A producer bound to one topic of one broker.
///
/// Not `Sync`: like a Kafka producer, create one per producing thread (each
/// edge-device task owns its own).
pub struct Producer {
    broker: Broker,
    topic: String,
    partitions: usize,
    config: ProducerConfig,
    batches: Vec<Batch>,
    rr_next: usize,
    sent: u64,
}

impl Producer {
    /// Create a producer for `topic` (must exist).
    pub fn new(broker: Broker, topic: &str, config: ProducerConfig) -> Result<Self, BrokerError> {
        let partitions = broker.topic(topic)?.partition_count();
        Ok(Self {
            broker,
            topic: topic.to_string(),
            partitions,
            config,
            batches: (0..partitions).map(|_| Batch::new()).collect(),
            rr_next: 0,
            sent: 0,
        })
    }

    /// Number of records successfully appended so far (across flushes).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn pick_partition(&mut self, record: &Record) -> usize {
        match self.config.partitioner {
            Partitioner::KeyHash => {
                if let Some(key) = &record.key {
                    let mut h = DefaultHasher::new();
                    key.hash(&mut h);
                    return (h.finish() % self.partitions as u64) as usize;
                }
                let p = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.partitions;
                p
            }
            Partitioner::RoundRobin => {
                let p = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.partitions;
                p
            }
        }
    }

    /// Send to an explicit partition. Returns metadata for records flushed
    /// by this call (possibly empty if the record was only buffered).
    pub fn send_to(
        &mut self,
        partition: usize,
        record: Record,
    ) -> Result<Vec<RecordMetadata>, BrokerError> {
        if partition >= self.partitions {
            return Err(BrokerError::UnknownPartition {
                topic: self.topic.clone(),
                partition,
            });
        }
        let batch = &mut self.batches[partition];
        if batch.records.is_empty() {
            batch.opened_at = Instant::now();
        }
        batch.bytes += record.wire_size();
        batch.records.push(record);
        let full = batch.records.len() >= self.config.batch_records
            || batch.bytes >= self.config.batch_bytes
            || batch.opened_at.elapsed() >= self.config.linger;
        if full {
            self.flush_partition(partition)
        } else {
            Ok(Vec::new())
        }
    }

    /// Send using the configured partitioner.
    pub fn send(&mut self, record: Record) -> Result<Vec<RecordMetadata>, BrokerError> {
        let p = self.pick_partition(&record);
        self.send_to(p, record)
    }

    /// Flush one partition's batch.
    fn flush_partition(&mut self, partition: usize) -> Result<Vec<RecordMetadata>, BrokerError> {
        let batch = std::mem::replace(&mut self.batches[partition], Batch::new());
        let mut out = Vec::with_capacity(batch.records.len());
        for rec in batch.records {
            let offset = self.broker.append(&self.topic, partition, rec)?;
            self.sent += 1;
            out.push(RecordMetadata { partition, offset });
        }
        Ok(out)
    }

    /// Flush every partition's buffered records.
    pub fn flush(&mut self) -> Result<Vec<RecordMetadata>, BrokerError> {
        let mut out = Vec::new();
        for p in 0..self.partitions {
            out.extend(self.flush_partition(p)?);
        }
        Ok(out)
    }

    /// Records currently buffered (not yet appended).
    pub fn buffered(&self) -> usize {
        self.batches.iter().map(|b| b.records.len()).sum()
    }
}

impl Drop for Producer {
    /// Best-effort flush so buffered records are not silently lost.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::RetentionPolicy;

    fn setup(partitions: usize, config: ProducerConfig) -> (Broker, Producer) {
        let b = Broker::new();
        b.create_topic("t", partitions, RetentionPolicy::unbounded())
            .unwrap();
        let p = Producer::new(b.clone(), "t", config).unwrap();
        (b, p)
    }

    #[test]
    fn default_config_flushes_immediately() {
        let (b, mut p) = setup(1, ProducerConfig::default());
        let md = p.send(Record::new(&b"x"[..])).unwrap();
        assert_eq!(md.len(), 1);
        assert_eq!(md[0].offset, 0);
        assert_eq!(b.high_watermark("t", 0).unwrap(), 1);
    }

    #[test]
    fn round_robin_spreads_partitions() {
        let (_, mut p) = setup(3, ProducerConfig::default());
        let parts: Vec<usize> = (0..6)
            .map(|_| p.send(Record::new(&b"x"[..])).unwrap()[0].partition)
            .collect();
        assert_eq!(parts, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn key_hash_is_sticky() {
        let cfg = ProducerConfig {
            partitioner: Partitioner::KeyHash,
            ..ProducerConfig::default()
        };
        let (_, mut p) = setup(4, cfg);
        let part_of = |p: &mut Producer, key: &str| {
            p.send(Record::new(&b"x"[..]).with_key(bytes::Bytes::copy_from_slice(key.as_bytes())))
                .unwrap()[0]
                .partition
        };
        let a1 = part_of(&mut p, "alpha");
        let a2 = part_of(&mut p, "alpha");
        assert_eq!(a1, a2);
    }

    #[test]
    fn batching_buffers_until_full() {
        let cfg = ProducerConfig {
            batch_records: 3,
            batch_bytes: usize::MAX,
            linger: Duration::from_secs(60),
            partitioner: Partitioner::RoundRobin,
        };
        let (b, mut p) = setup(1, cfg);
        assert!(p.send_to(0, Record::new(&b"1"[..])).unwrap().is_empty());
        assert!(p.send_to(0, Record::new(&b"2"[..])).unwrap().is_empty());
        assert_eq!(p.buffered(), 2);
        assert_eq!(b.high_watermark("t", 0).unwrap(), 0);
        let md = p.send_to(0, Record::new(&b"3"[..])).unwrap();
        assert_eq!(md.len(), 3);
        assert_eq!(p.buffered(), 0);
        assert_eq!(b.high_watermark("t", 0).unwrap(), 3);
    }

    #[test]
    fn byte_threshold_flushes() {
        let cfg = ProducerConfig {
            batch_records: usize::MAX,
            batch_bytes: 100,
            linger: Duration::from_secs(60),
            partitioner: Partitioner::RoundRobin,
        };
        let (_, mut p) = setup(1, cfg);
        let md = p.send_to(0, Record::new(vec![0u8; 200])).unwrap();
        assert_eq!(md.len(), 1);
    }

    #[test]
    fn explicit_flush_drains() {
        let cfg = ProducerConfig {
            batch_records: 100,
            batch_bytes: usize::MAX,
            linger: Duration::from_secs(60),
            partitioner: Partitioner::RoundRobin,
        };
        let (b, mut p) = setup(2, cfg);
        p.send_to(0, Record::new(&b"a"[..])).unwrap();
        p.send_to(1, Record::new(&b"b"[..])).unwrap();
        let md = p.flush().unwrap();
        assert_eq!(md.len(), 2);
        assert_eq!(b.high_watermark("t", 0).unwrap(), 1);
        assert_eq!(b.high_watermark("t", 1).unwrap(), 1);
        assert_eq!(p.sent(), 2);
    }

    #[test]
    fn drop_flushes_buffered() {
        let cfg = ProducerConfig {
            batch_records: 100,
            batch_bytes: usize::MAX,
            linger: Duration::from_secs(60),
            partitioner: Partitioner::RoundRobin,
        };
        let (b, mut p) = setup(1, cfg);
        p.send_to(0, Record::new(&b"a"[..])).unwrap();
        drop(p);
        assert_eq!(b.high_watermark("t", 0).unwrap(), 1);
    }

    #[test]
    fn bad_partition_rejected() {
        let (_, mut p) = setup(1, ProducerConfig::default());
        assert!(matches!(
            p.send_to(9, Record::new(&b"x"[..])),
            Err(BrokerError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn producer_for_missing_topic_fails() {
        let b = Broker::new();
        assert!(Producer::new(b, "missing", ProducerConfig::default()).is_err());
    }
}
