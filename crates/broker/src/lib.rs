//! # pilot-broker — an in-process Kafka-style partitioned commit log
//!
//! Pilot-Edge "extensively utilizes message brokering based on Kafka to
//! manage edge-to-cloud streaming topologies" (paper Section II-B): every
//! edge device produces into a dedicated partition of an automatically
//! created topic, and the cloud processing tasks consume those partitions
//! with a 1:1 partition-to-consumer ratio. Kafka itself is not available in
//! this environment, so this crate implements the subset of its semantics
//! the experiments exercise, from scratch:
//!
//! * [`Record`]s appended to per-partition, segmented, append-only
//!   [`log::PartitionLog`]s with dense offsets and configurable
//!   [`RetentionPolicy`];
//! * a [`Broker`] managing named [`topic::Topic`]s, blocking fetches
//!   (condvar-based, no busy polling), high watermarks, and consumer-group
//!   offset commits;
//! * a batching [`Producer`] (size- and linger-based flushing, Kafka-style
//!   partitioners: explicit, round-robin, or key hash);
//! * an [`MqttBroker`] — the paper's "MQTT for low-performance and
//!   low-power environments" brokering plugin: topic-tree pub/sub with
//!   wildcards, QoS 0/1, and retained messages (see [`mqtt`]) — plus the
//!   [`MqttBridge`] pumping MQTT messages into commit-log partitions
//!   ("manage edge-to-cloud streaming topologies");
//! * a [`Consumer`] with group membership and a [`group::GroupCoordinator`]
//!   doing Kafka's range assignment with generations.
//!
//! The substitution preserves what matters for Fig. 2/3: per-partition FIFO
//! ordering, partition-parallel consumption, and an append/fetch service
//! time proportional to bytes moved. Network cost between clients and the
//! broker is *not* modelled here — the Pilot-Edge runtime charges
//! `pilot-netsim` links around every produce/fetch, mirroring the paper's
//! separation of broker and transport.

pub mod bridge;
pub mod broker;
pub mod consumer;
pub mod error;
pub mod group;
pub mod log;
pub mod mqtt;
pub mod producer;
pub mod record;
pub mod retention;
pub mod storage;
pub mod topic;

pub use bridge::{BridgeConfig, BridgePartitioning, MqttBridge};
pub use broker::{Broker, GroupId, PartitionLag, TopicId};
pub use consumer::Consumer;
pub use error::BrokerError;
pub use group::GroupCoordinator;
pub use log::ReadError;
pub use mqtt::{MqttBroker, MqttMessage, QoS, Subscription};
pub use producer::{Partitioner, Producer, ProducerConfig};
pub use record::{Offset, Record, RecordMetadata};
pub use retention::RetentionPolicy;
pub use storage::{DurabilityConfig, LogStats, SyncPolicy};
