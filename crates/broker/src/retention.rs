//! Log retention policies.
//!
//! Kafka bounds partition logs by size and age; in a long streaming run
//! (the paper sends 512 messages of up to 2.6 MB per partition, repeatedly)
//! an unbounded in-memory log would grow without limit. Retention trims
//! whole segments from the head of the log once limits are exceeded —
//! consumed data disappears, offsets stay stable.

use serde::{Deserialize, Serialize};

/// When to discard old log segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Maximum total payload bytes retained per partition (`None` = unbounded).
    pub max_bytes: Option<u64>,
    /// Maximum records retained per partition (`None` = unbounded).
    pub max_records: Option<u64>,
}

impl RetentionPolicy {
    /// Keep everything.
    pub fn unbounded() -> Self {
        Self {
            max_bytes: None,
            max_records: None,
        }
    }

    /// Keep at most `bytes` of payload per partition.
    pub fn by_bytes(bytes: u64) -> Self {
        Self {
            max_bytes: Some(bytes),
            max_records: None,
        }
    }

    /// Keep at most `records` per partition.
    pub fn by_records(records: u64) -> Self {
        Self {
            max_bytes: None,
            max_records: Some(records),
        }
    }

    /// True if a partition at (`bytes`, `records`) exceeds this policy.
    pub fn exceeded(&self, bytes: u64, records: u64) -> bool {
        self.max_bytes.is_some_and(|m| bytes > m) || self.max_records.is_some_and(|m| records > m)
    }
}

impl Default for RetentionPolicy {
    /// Default: bounded at 1 GiB per partition — enough for every paper
    /// experiment while keeping memory safe for long runs.
    fn default() -> Self {
        Self::by_bytes(1 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_exceeded() {
        let p = RetentionPolicy::unbounded();
        assert!(!p.exceeded(u64::MAX, u64::MAX));
    }

    #[test]
    fn byte_limit() {
        let p = RetentionPolicy::by_bytes(100);
        assert!(!p.exceeded(100, 10));
        assert!(p.exceeded(101, 10));
    }

    #[test]
    fn record_limit() {
        let p = RetentionPolicy::by_records(5);
        assert!(!p.exceeded(1 << 40, 5) || p.exceeded(1 << 40, 5)); // bytes alone irrelevant
        assert!(p.exceeded(0, 6));
        assert!(!p.exceeded(0, 5));
    }

    #[test]
    fn default_is_one_gib() {
        assert_eq!(RetentionPolicy::default().max_bytes, Some(1 << 30));
    }
}
