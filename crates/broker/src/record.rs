//! Records: the unit of brokered data.

use bytes::Bytes;

/// Position of a record within a partition (dense, starting at 0).
pub type Offset = u64;

/// A brokered record. `Bytes` payloads make cloning between the log and
/// consumers cheap (refcount bump, no copy) — important because Fig. 2's
/// broker service time should be dominated by the append memcpy, not by
/// artificial clone costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Optional partitioning key.
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
    /// Producer-assigned timestamp (µs since the pipeline epoch).
    pub timestamp_us: u64,
    /// Assigned by the log at append time.
    pub offset: Offset,
}

impl Record {
    /// A record with just a payload.
    pub fn new(value: impl Into<Bytes>) -> Self {
        Self {
            key: None,
            value: value.into(),
            timestamp_us: 0,
            offset: 0,
        }
    }

    /// Builder: set the key.
    pub fn with_key(mut self, key: impl Into<Bytes>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Builder: set the timestamp.
    pub fn with_timestamp(mut self, ts_us: u64) -> Self {
        self.timestamp_us = ts_us;
        self
    }

    /// Approximate in-log size in bytes (payload + key + fixed overhead).
    pub fn wire_size(&self) -> usize {
        const OVERHEAD: usize = 24; // offset + timestamp + lengths
        self.value.len() + self.key.as_ref().map_or(0, |k| k.len()) + OVERHEAD
    }
}

/// What the producer learns after an append is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMetadata {
    /// Partition the record landed in.
    pub partition: usize,
    /// Offset assigned by the partition log.
    pub offset: Offset,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let r = Record::new(&b"payload"[..])
            .with_key(&b"k"[..])
            .with_timestamp(99);
        assert_eq!(r.value.as_ref(), b"payload");
        assert_eq!(r.key.as_deref(), Some(&b"k"[..]));
        assert_eq!(r.timestamp_us, 99);
    }

    #[test]
    fn wire_size_counts_key_and_value() {
        let r = Record::new(vec![0u8; 100]);
        assert_eq!(r.wire_size(), 124);
        let r = r.with_key(vec![0u8; 10]);
        assert_eq!(r.wire_size(), 134);
    }

    #[test]
    fn clone_shares_payload() {
        let r = Record::new(vec![0u8; 1024]);
        let c = r.clone();
        // Bytes clones share the same backing buffer.
        assert_eq!(r.value.as_ptr(), c.value.as_ptr());
    }
}
