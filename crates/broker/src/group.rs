//! Consumer-group coordination: Kafka-style range assignment with
//! generations.
//!
//! The paper keeps the partition-to-consumer ratio at 1:1, but Pilot-Edge's
//! dynamic adaptation ("expanded and scaled-down dynamically at runtime")
//! means consumers join and leave; the coordinator rebalances partitions
//! across the surviving members, bumping a generation counter so stale
//! members can detect they were reassigned.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Kafka's range assignment: partitions split into contiguous ranges, the
/// first `n_partitions % n_members` members get one extra.
pub fn range_assignment(n_partitions: usize, n_members: usize) -> Vec<Vec<usize>> {
    if n_members == 0 {
        return Vec::new();
    }
    let base = n_partitions / n_members;
    let extra = n_partitions % n_members;
    let mut out = Vec::with_capacity(n_members);
    let mut next = 0;
    for m in 0..n_members {
        let take = base + usize::from(m < extra);
        out.push((next..next + take).collect());
        next += take;
    }
    out
}

#[derive(Debug, Default)]
struct GroupState {
    /// Member id → assigned partitions. BTreeMap gives deterministic order.
    members: BTreeMap<String, Vec<usize>>,
    generation: u64,
    /// Membership changed since the last assignment recompute. Leaves mark
    /// the state dirty instead of recomputing eagerly: when a 64k-member
    /// cell winds down, every member leaves in turn, and an eager
    /// per-leave rebalance would be O(n²) partition-vector writes. The
    /// next assignment query recomputes once.
    dirty: bool,
}

/// Coordinates one consumer group over one topic's partitions.
#[derive(Debug, Clone)]
pub struct GroupCoordinator {
    n_partitions: usize,
    state: Arc<Mutex<GroupState>>,
}

impl GroupCoordinator {
    /// Create a coordinator for a topic with `n_partitions` partitions.
    pub fn new(n_partitions: usize) -> Self {
        Self {
            n_partitions,
            state: Arc::new(Mutex::new(GroupState::default())),
        }
    }

    fn rebalance(&self, state: &mut GroupState) {
        state.generation += 1;
        self.recompute(state);
    }

    /// Recompute every member's range without bumping the generation
    /// (the membership change that made the state dirty already did).
    fn recompute(&self, state: &mut GroupState) {
        let ids: Vec<String> = state.members.keys().cloned().collect();
        let assignment = range_assignment(self.n_partitions, ids.len());
        for (id, parts) in ids.into_iter().zip(assignment) {
            state.members.insert(id, parts);
        }
        state.dirty = false;
    }

    /// Join the group; returns `(generation, assigned partitions)`.
    /// Rebalances every member.
    pub fn join(&self, member_id: &str) -> (u64, Vec<usize>) {
        let mut st = self.state.lock();
        st.members.entry(member_id.to_string()).or_default();
        self.rebalance(&mut st);
        (
            st.generation,
            st.members.get(member_id).cloned().unwrap_or_default(),
        )
    }

    /// Join many members in **one** rebalance. Returns the generation and
    /// the assignments aligned with `member_ids`.
    ///
    /// A cell spinning up n members through [`GroupCoordinator::join`] pays
    /// n rebalances of n members each — O(n²) assignment writes, minutes of
    /// setup at 64k members. Batch-joining is a single rebalance: O(n).
    /// Members already in the group keep their membership (idempotent, like
    /// `join`).
    pub fn join_many<S: AsRef<str>>(&self, member_ids: &[S]) -> (u64, Vec<Vec<usize>>) {
        let mut st = self.state.lock();
        for id in member_ids {
            st.members.entry(id.as_ref().to_string()).or_default();
        }
        self.rebalance(&mut st);
        let assignments = member_ids
            .iter()
            .map(|id| st.members.get(id.as_ref()).cloned().unwrap_or_default())
            .collect();
        (st.generation, assignments)
    }

    /// Leave the group; remaining members are rebalanced lazily — the
    /// generation bumps now (stale members can detect it immediately) but
    /// the range recompute is deferred to the next assignment query, so a
    /// wave of departures costs one recompute instead of one per leave.
    pub fn leave(&self, member_id: &str) {
        let mut st = self.state.lock();
        if st.members.remove(member_id).is_some() {
            st.generation += 1;
            st.dirty = true;
        }
    }

    /// Current assignment of a member (None if not a member). The caller
    /// compares the generation against its joined generation to detect a
    /// rebalance.
    pub fn assignment(&self, member_id: &str) -> Option<(u64, Vec<usize>)> {
        let mut st = self.state.lock();
        if st.dirty {
            self.recompute(&mut st);
        }
        st.members
            .get(member_id)
            .map(|p| (st.generation, p.clone()))
    }

    /// Current generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.state.lock().members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_assignment_even() {
        assert_eq!(range_assignment(4, 2), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn range_assignment_uneven() {
        assert_eq!(range_assignment(5, 2), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn range_assignment_more_members_than_partitions() {
        let a = range_assignment(2, 4);
        assert_eq!(a, vec![vec![0], vec![1], vec![], vec![]]);
    }

    #[test]
    fn range_assignment_zero_members() {
        assert!(range_assignment(4, 0).is_empty());
    }

    #[test]
    fn join_assigns_all_partitions_to_single_member() {
        let c = GroupCoordinator::new(4);
        let (gen, parts) = c.join("a");
        assert_eq!(gen, 1);
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn second_join_rebalances() {
        let c = GroupCoordinator::new(4);
        c.join("a");
        let (gen, parts_b) = c.join("b");
        assert_eq!(gen, 2);
        let (gen_a, parts_a) = c.assignment("a").unwrap();
        assert_eq!(gen_a, 2);
        let mut all: Vec<usize> = parts_a.iter().chain(&parts_b).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn leave_reassigns_orphans() {
        let c = GroupCoordinator::new(4);
        c.join("a");
        c.join("b");
        c.leave("a");
        let (_, parts) = c.assignment("b").unwrap();
        assert_eq!(parts, vec![0, 1, 2, 3]);
        assert_eq!(c.member_count(), 1);
    }

    #[test]
    fn leave_wave_coalesces_into_one_recompute() {
        // A burst of departures (cell teardown) bumps the generation per
        // leave but defers the range recompute; the survivor's next
        // assignment query sees the fully rebalanced state.
        let c = GroupCoordinator::new(8);
        let ids: Vec<String> = (0..4).map(|i| format!("m{i}")).collect();
        let (gen0, _) = c.join_many(&ids);
        c.leave("m0");
        c.leave("m1");
        c.leave("m2");
        assert_eq!(c.generation(), gen0 + 3, "each leave is detectable");
        let (gen, parts) = c.assignment("m3").unwrap();
        assert_eq!(gen, gen0 + 3);
        assert_eq!(parts, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn leave_unknown_member_is_noop() {
        let c = GroupCoordinator::new(2);
        c.join("a");
        let gen = c.generation();
        c.leave("ghost");
        assert_eq!(c.generation(), gen);
    }

    #[test]
    fn join_many_is_one_rebalance() {
        let c = GroupCoordinator::new(8);
        let ids: Vec<String> = (0..4).map(|i| format!("m{i}")).collect();
        let (gen, assigns) = c.join_many(&ids);
        assert_eq!(gen, 1, "batch join bumps the generation exactly once");
        assert_eq!(c.member_count(), 4);
        let mut all: Vec<usize> = assigns.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn join_many_matches_sequential_joins() {
        let seq = GroupCoordinator::new(10);
        let batch = GroupCoordinator::new(10);
        let ids: Vec<String> = (0..3).map(|i| format!("m{i}")).collect();
        for id in &ids {
            seq.join(id);
        }
        let (_, batch_assigns) = batch.join_many(&ids);
        for (id, got) in ids.iter().zip(&batch_assigns) {
            let (_, expect) = seq.assignment(id).unwrap();
            assert_eq!(got, &expect, "member {id}");
        }
    }

    #[test]
    fn join_many_is_idempotent_with_existing_members() {
        let c = GroupCoordinator::new(4);
        c.join("a");
        let (gen, _) = c.join_many(&["a", "b"]);
        assert_eq!(gen, 2);
        assert_eq!(c.member_count(), 2);
    }

    #[test]
    fn rejoin_is_idempotent_membership() {
        let c = GroupCoordinator::new(2);
        c.join("a");
        c.join("a");
        assert_eq!(c.member_count(), 1);
    }

    proptest! {
        /// Assignment is always a partition of the partition set: disjoint
        /// and complete.
        #[test]
        fn prop_assignment_partitions_the_set(parts in 0usize..64, members in 1usize..16) {
            let a = range_assignment(parts, members);
            prop_assert_eq!(a.len(), members);
            let mut seen: Vec<usize> = a.into_iter().flatten().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..parts).collect::<Vec<_>>());
        }

        /// Member loads differ by at most one partition.
        #[test]
        fn prop_assignment_balanced(parts in 0usize..64, members in 1usize..16) {
            let a = range_assignment(parts, members);
            let min = a.iter().map(Vec::len).min().unwrap();
            let max = a.iter().map(Vec::len).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
