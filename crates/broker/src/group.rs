//! Consumer-group coordination: Kafka-style range assignment with
//! generations.
//!
//! The paper keeps the partition-to-consumer ratio at 1:1, but Pilot-Edge's
//! dynamic adaptation ("expanded and scaled-down dynamically at runtime")
//! means consumers join and leave; the coordinator rebalances partitions
//! across the surviving members, bumping a generation counter so stale
//! members can detect they were reassigned.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Kafka's range assignment: partitions split into contiguous ranges, the
/// first `n_partitions % n_members` members get one extra.
pub fn range_assignment(n_partitions: usize, n_members: usize) -> Vec<Vec<usize>> {
    if n_members == 0 {
        return Vec::new();
    }
    let base = n_partitions / n_members;
    let extra = n_partitions % n_members;
    let mut out = Vec::with_capacity(n_members);
    let mut next = 0;
    for m in 0..n_members {
        let take = base + usize::from(m < extra);
        out.push((next..next + take).collect());
        next += take;
    }
    out
}

#[derive(Debug, Default)]
struct GroupState {
    /// Member id → assigned partitions. BTreeMap gives deterministic order.
    members: BTreeMap<String, Vec<usize>>,
    generation: u64,
}

/// Coordinates one consumer group over one topic's partitions.
#[derive(Debug, Clone)]
pub struct GroupCoordinator {
    n_partitions: usize,
    state: Arc<Mutex<GroupState>>,
}

impl GroupCoordinator {
    /// Create a coordinator for a topic with `n_partitions` partitions.
    pub fn new(n_partitions: usize) -> Self {
        Self {
            n_partitions,
            state: Arc::new(Mutex::new(GroupState::default())),
        }
    }

    fn rebalance(&self, state: &mut GroupState) {
        state.generation += 1;
        let ids: Vec<String> = state.members.keys().cloned().collect();
        let assignment = range_assignment(self.n_partitions, ids.len());
        for (id, parts) in ids.into_iter().zip(assignment) {
            state.members.insert(id, parts);
        }
    }

    /// Join the group; returns `(generation, assigned partitions)`.
    /// Rebalances every member.
    pub fn join(&self, member_id: &str) -> (u64, Vec<usize>) {
        let mut st = self.state.lock();
        st.members.entry(member_id.to_string()).or_default();
        self.rebalance(&mut st);
        (
            st.generation,
            st.members.get(member_id).cloned().unwrap_or_default(),
        )
    }

    /// Leave the group; remaining members are rebalanced.
    pub fn leave(&self, member_id: &str) {
        let mut st = self.state.lock();
        if st.members.remove(member_id).is_some() {
            self.rebalance(&mut st);
        }
    }

    /// Current assignment of a member (None if not a member). The caller
    /// compares the generation against its joined generation to detect a
    /// rebalance.
    pub fn assignment(&self, member_id: &str) -> Option<(u64, Vec<usize>)> {
        let st = self.state.lock();
        st.members
            .get(member_id)
            .map(|p| (st.generation, p.clone()))
    }

    /// Current generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.state.lock().members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_assignment_even() {
        assert_eq!(range_assignment(4, 2), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn range_assignment_uneven() {
        assert_eq!(range_assignment(5, 2), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn range_assignment_more_members_than_partitions() {
        let a = range_assignment(2, 4);
        assert_eq!(a, vec![vec![0], vec![1], vec![], vec![]]);
    }

    #[test]
    fn range_assignment_zero_members() {
        assert!(range_assignment(4, 0).is_empty());
    }

    #[test]
    fn join_assigns_all_partitions_to_single_member() {
        let c = GroupCoordinator::new(4);
        let (gen, parts) = c.join("a");
        assert_eq!(gen, 1);
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn second_join_rebalances() {
        let c = GroupCoordinator::new(4);
        c.join("a");
        let (gen, parts_b) = c.join("b");
        assert_eq!(gen, 2);
        let (gen_a, parts_a) = c.assignment("a").unwrap();
        assert_eq!(gen_a, 2);
        let mut all: Vec<usize> = parts_a.iter().chain(&parts_b).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn leave_reassigns_orphans() {
        let c = GroupCoordinator::new(4);
        c.join("a");
        c.join("b");
        c.leave("a");
        let (_, parts) = c.assignment("b").unwrap();
        assert_eq!(parts, vec![0, 1, 2, 3]);
        assert_eq!(c.member_count(), 1);
    }

    #[test]
    fn leave_unknown_member_is_noop() {
        let c = GroupCoordinator::new(2);
        c.join("a");
        let gen = c.generation();
        c.leave("ghost");
        assert_eq!(c.generation(), gen);
    }

    #[test]
    fn rejoin_is_idempotent_membership() {
        let c = GroupCoordinator::new(2);
        c.join("a");
        c.join("a");
        assert_eq!(c.member_count(), 1);
    }

    proptest! {
        /// Assignment is always a partition of the partition set: disjoint
        /// and complete.
        #[test]
        fn prop_assignment_partitions_the_set(parts in 0usize..64, members in 1usize..16) {
            let a = range_assignment(parts, members);
            prop_assert_eq!(a.len(), members);
            let mut seen: Vec<usize> = a.into_iter().flatten().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..parts).collect::<Vec<_>>());
        }

        /// Member loads differ by at most one partition.
        #[test]
        fn prop_assignment_balanced(parts in 0usize..64, members in 1usize..16) {
            let a = range_assignment(parts, members);
            let min = a.iter().map(Vec::len).min().unwrap();
            let max = a.iter().map(Vec::len).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
