//! The per-partition segmented commit log.
//!
//! A [`PartitionLog`] is an append-only sequence of [`Record`]s with dense
//! offsets, stored in fixed-capacity segments so retention can trim from
//! the head in O(1) amortised (whole segments are dropped, never spliced).
//!
//! A log is either **memory-only** (the seed structure: every record
//! resident, nothing survives the process) or **durable**
//! ([`PartitionLog::open_durable`]): each segment is mirrored to an
//! append-only file through the [`storage`](crate::storage) engine, cold
//! segments are *evicted* — records dropped from memory, served back from
//! the page cache on fetch — and retention unlinks whole segment files.
//! The append hot path is identical in shape either way; durability adds
//! one frame encode into a user-space buffer (see
//! [`storage::writer`](crate::storage::writer)) and *never* a syscall —
//! the buffered bytes move to the files on the sync cycle, outside the
//! partition lock. A sealed segment is only evicted once the durable
//! watermark covers it, so a cold fetch never reads a file region whose
//! write is still pending.
//!
//! Disk I/O failures on the append path (segment-file creation at a roll)
//! panic with context rather than propagate: the append API is infallible
//! by design (every producer and reactor path assumes it), and a broker
//! whose disk is gone has no useful degraded mode in this simulation.

use crate::record::{Offset, Record};
use crate::retention::RetentionPolicy;
use crate::storage::flusher::sync_now;
use crate::storage::writer::{DiskSegment, PartitionWriter, SyncBatch};
use crate::storage::{DurableMark, StoreStats, SyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Records per segment. Small enough that retention is reasonably granular,
/// large enough that segment bookkeeping is negligible.
pub const SEGMENT_RECORDS: usize = 1024;

/// Why a [`PartitionLog::read`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The requested offset precedes the retained log (trimmed by
    /// retention). Carries the current log start, so callers can auto-reset
    /// (Kafka's `auto.offset.reset = earliest`).
    Trimmed(Offset),
    /// A cold segment's file could not be read back, or its frames no
    /// longer decode — an I/O fault or latent corruption discovered after
    /// recovery. Only durable logs can produce this.
    Storage(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Trimmed(start) => write!(f, "offset trimmed; log starts at {start}"),
            ReadError::Storage(msg) => write!(f, "cold segment read failed: {msg}"),
        }
    }
}

/// Sealed segments kept fully in memory behind the active one (a durable
/// log's hot tail). Older sealed segments are evicted: their records drop
/// to disk-backed form and fetches read them back through the page cache.
pub const RESIDENT_SEALED_SEGMENTS: usize = 1;

#[derive(Debug)]
struct Segment {
    base_offset: Offset,
    /// Resident records. Empty for an evicted segment (`count` still
    /// reflects the segment's true population).
    records: Vec<Record>,
    /// Records in the segment, resident or not.
    count: usize,
    bytes: u64,
    /// Largest record timestamp (0 while empty).
    max_ts: u64,
    /// On-disk identity, once sealed in a durable log.
    disk: Option<DiskSegment>,
}

impl Segment {
    fn new(base_offset: Offset) -> Self {
        Self {
            base_offset,
            records: Vec::with_capacity(SEGMENT_RECORDS.min(64)),
            count: 0,
            bytes: 0,
            max_ts: 0,
            disk: None,
        }
    }

    fn next_offset(&self) -> Offset {
        self.base_offset + self.count as u64
    }

    fn is_full(&self) -> bool {
        self.count >= SEGMENT_RECORDS
    }

    fn is_evicted(&self) -> bool {
        self.count > 0 && self.records.is_empty()
    }
}

/// The durable half of a [`PartitionLog`]: the buffered file appender plus
/// the shared handles through which the flusher publishes durability.
struct Store {
    writer: PartitionWriter,
    policy: SyncPolicy,
    stats: Arc<StoreStats>,
    durable: Arc<AtomicU64>,
    mark: Arc<DurableMark>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// An append-only partition log with segment-level retention.
#[derive(Debug)]
pub struct PartitionLog {
    segments: Vec<Segment>,
    retention: RetentionPolicy,
    total_bytes: u64,
    total_records: u64,
    /// Offset of the first retained record.
    log_start: Offset,
    /// `Some` for a durable log; `None` is the seed memory-only structure.
    store: Option<Store>,
}

impl PartitionLog {
    /// Create an empty memory-only log with the given retention policy.
    pub fn new(retention: RetentionPolicy) -> Self {
        Self {
            segments: vec![Segment::new(0)],
            retention,
            total_bytes: 0,
            total_records: 0,
            log_start: 0,
            store: None,
        }
    }

    /// Open (or create) a durable log rooted at `dir`, recovering any
    /// existing segment files: torn tails are truncated, the clean prefix
    /// becomes the log (see [`storage::recovery`](crate::storage::recovery)).
    /// Recovered segments come back evicted — reopening costs one
    /// sequential scan, not the log's RAM footprint. `durable` and `mark`
    /// are initialised to the recovered high watermark (everything
    /// recovered is on disk by definition).
    pub fn open_durable(
        dir: PathBuf,
        retention: RetentionPolicy,
        policy: SyncPolicy,
        stats: Arc<StoreStats>,
        durable: Arc<AtomicU64>,
        mark: Arc<DurableMark>,
    ) -> std::io::Result<Self> {
        let recovered = crate::storage::recovery::recover_partition(&dir)?;
        let next = recovered.next_offset;
        let mut segments: Vec<Segment> = Vec::with_capacity(recovered.segments.len() + 1);
        let mut total_bytes = 0u64;
        let mut total_records = 0u64;
        for seg in recovered.segments {
            let count = seg.disk.positions.len();
            total_bytes += seg.wire_bytes;
            total_records += count as u64;
            segments.push(Segment {
                base_offset: seg.base_offset,
                records: Vec::new(),
                count,
                bytes: seg.wire_bytes,
                max_ts: seg.max_ts,
                disk: Some(seg.disk),
            });
        }
        let log_start = segments.first().map_or(next, |s| s.base_offset);
        // A fresh active segment (and file) always starts at the recovered
        // high watermark — recovered segments are sealed even when short,
        // so a crash-heavy history shows up as variable-length segments.
        segments.push(Segment::new(next));
        let writer = PartitionWriter::create(dir, next, Arc::clone(&stats))?;
        durable.store(next, Ordering::Release);
        mark.set(next, 0);
        Ok(Self {
            segments,
            retention,
            total_bytes,
            total_records,
            log_start,
            store: Some(Store {
                writer,
                policy,
                stats,
                durable,
                mark,
            }),
        })
    }

    /// Offset of the first retained record.
    pub fn log_start(&self) -> Offset {
        self.log_start
    }

    /// Offset one past the last record (next offset to be assigned).
    pub fn high_watermark(&self) -> Offset {
        self.segments
            .last()
            .map(|s| s.next_offset())
            .unwrap_or(self.log_start)
    }

    /// Offset below which every record survives a crash. For a memory-only
    /// log this is the high watermark (there is no stronger durability to
    /// wait for); for a durable log it advances when the flusher's fsync
    /// covers the appends.
    pub fn durable_watermark(&self) -> Offset {
        match &self.store {
            Some(s) => s.durable.load(Ordering::Acquire),
            None => self.high_watermark(),
        }
    }

    /// Retained records.
    pub fn len(&self) -> u64 {
        self.total_records
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Retained payload bytes.
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Retained segments (resident and evicted alike).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Records currently resident in memory (diagnostic: shows eviction
    /// bounding the footprint of a long durable run).
    pub fn resident_records(&self) -> u64 {
        self.segments.iter().map(|s| s.records.len() as u64).sum()
    }

    /// Append a record; the log assigns and returns its offset.
    pub fn append(&mut self, mut record: Record) -> Offset {
        let offset = self.high_watermark();
        record.offset = offset;
        let size = record.wire_size() as u64;
        if self.segments.last().is_none_or(|s| s.is_full()) {
            self.roll_segment(offset);
        }
        if let Some(store) = &mut self.store {
            store.writer.append(&record);
            if matches!(store.policy, SyncPolicy::EachAppend) {
                // The measured counterfactual: capture + write + fsync
                // inline, under the partition lock, once per record. The
                // lock itself serialises these cycles (no `sync_mu` here —
                // taking it under the partition lock would invert the
                // ordering `sync_partition` uses), and an explicit sync
                // racing this path always captures an empty batch.
                if let Some(b) = store.writer.prepare_sync(offset + 1) {
                    sync_now(&b, &store.stats, &store.durable, &store.mark)
                        .unwrap_or_else(|e| panic!("inline fsync: {e}"));
                }
            }
        }
        let seg = self.segments.last_mut().expect("segment just ensured");
        seg.max_ts = seg.max_ts.max(record.timestamp_us);
        seg.records.push(record);
        seg.count += 1;
        seg.bytes += size;
        self.total_bytes += size;
        self.total_records += 1;
        self.enforce_retention();
        offset
    }

    /// Seal the active segment (mirroring the roll to the segment file in a
    /// durable log) and open the next one, evicting whatever sealed segment
    /// fell off the resident tail.
    fn roll_segment(&mut self, next_base: Offset) {
        if let Some(store) = &mut self.store {
            let disk = store
                .writer
                .seal_and_roll(next_base)
                .unwrap_or_else(|e| panic!("segment roll at offset {next_base}: {e}"));
            if let Some(last) = self.segments.last_mut() {
                last.disk = Some(disk);
            }
        }
        self.segments.push(Segment::new(next_base));
        // Eviction only changes state on a roll (one new sealed segment),
        // so the scan happens here, not per-append. The durable gate: a
        // segment may only drop its resident records once the watermark
        // covers it — its file bytes are guaranteed on disk — so a cold
        // fetch never races the write-behind. Segments that miss the gate
        // now are re-examined at the next roll.
        if let Some(store) = &self.store {
            let durable = store.durable.load(Ordering::Acquire);
            let keep_from = self
                .segments
                .len()
                .saturating_sub(1 + RESIDENT_SEALED_SEGMENTS);
            for seg in &mut self.segments[..keep_from] {
                if seg.disk.is_some() && !seg.records.is_empty() && seg.next_offset() <= durable {
                    seg.records = Vec::new();
                }
            }
        }
    }

    /// Drop head segments while the policy is exceeded. The active (last)
    /// segment is never dropped. In a durable log the drop is the whole
    /// point: one `unlink`, O(1) in the segment's record count.
    fn enforce_retention(&mut self) {
        while self.segments.len() > 1
            && self
                .retention
                .exceeded(self.total_bytes, self.total_records)
        {
            let seg = self.segments.remove(0);
            self.total_bytes -= seg.bytes;
            self.total_records -= seg.count as u64;
            self.log_start = self.segments[0].base_offset;
            if let Some(disk) = seg.disk {
                // An unsynced sealed file may still sit in the writer's
                // pending list; its handle stays valid (fsync of a deleted
                // file is harmless), only the name goes away.
                let _ = std::fs::remove_file(&disk.path);
            }
        }
    }

    /// Capture what the next sync cycle must write and fsync (see
    /// [`storage::flusher`](crate::storage::flusher)). `None` for a
    /// memory-only or clean log. Pure bookkeeping — safe under the lock.
    pub(crate) fn prepare_sync(&mut self) -> Option<SyncBatch> {
        let hwm = self.high_watermark();
        match &mut self.store {
            Some(s) => s.writer.prepare_sync(hwm),
            None => None,
        }
    }

    /// Hand a *failed* sync cycle's batch back to the writer so the next
    /// cycle retries the same positioned writes (see
    /// [`storage::flusher`](crate::storage::flusher)). Without this the
    /// batch's bytes would never reach the file, and a later successful
    /// cycle would advance the durable watermark over the hole.
    pub(crate) fn requeue_failed_sync(&mut self, batch: SyncBatch) {
        if let Some(s) = &mut self.store {
            s.writer.requeue_failed_sync(batch);
        }
    }

    /// Test-only inline sync cycle: capture, write, fsync, publish —
    /// what `Topic::sync` does through the flusher plumbing.
    #[cfg(test)]
    fn test_sync(&mut self) {
        if let Some(b) = self.prepare_sync() {
            let s = self.store.as_ref().expect("durable log");
            sync_now(&b, &s.stats, &s.durable, &s.mark).expect("test sync");
        }
    }

    /// First retained offset whose record timestamp is `>= ts_us`, or the
    /// high watermark if every retained record is older (Kafka's
    /// `offsetsForTimes`). Binary search — segments by their max timestamp,
    /// then records within the hit segment — O(log n), assuming per-
    /// partition timestamps are non-decreasing (the same assumption
    /// Kafka's time index makes; every producer in this repo stamps
    /// monotonically).
    pub fn offset_for_timestamp(&self, ts_us: u64) -> Offset {
        // Trailing empty segment (a fresh active) has max_ts == 0 and would
        // break the predicate's monotonicity; it holds nothing anyway.
        let mut upper = self.segments.len();
        while upper > 0 && self.segments[upper - 1].count == 0 {
            upper -= 1;
        }
        let segs = &self.segments[..upper];
        let i = segs.partition_point(|s| s.max_ts < ts_us);
        let Some(seg) = segs.get(i) else {
            return self.high_watermark();
        };
        // max_ts >= ts_us, so some record in `seg` qualifies: j < count.
        let j = match &seg.disk {
            Some(d) if seg.is_evicted() => d.timestamps.partition_point(|&t| t < ts_us),
            _ => seg.records.partition_point(|r| r.timestamp_us < ts_us),
        };
        seg.base_offset + j as u64
    }

    /// Read up to `max` records starting at `offset`. An offset below
    /// `log_start` is [`ReadError::Trimmed`]; an offset at or above the
    /// high watermark returns an empty vec (nothing there *yet*); a cold
    /// segment whose file fails to read back is [`ReadError::Storage`].
    ///
    /// Resident segments clone records (a `Bytes` refcount bump); evicted
    /// segments are read back from their file in one buffered read — the
    /// page cache serves anything recent — and decoded zero-copy.
    pub fn read(&self, offset: Offset, max: usize) -> Result<Vec<Record>, ReadError> {
        if offset < self.log_start {
            return Err(ReadError::Trimmed(self.log_start));
        }
        let hwm = self.high_watermark();
        if offset >= hwm || max == 0 {
            return Ok(Vec::new());
        }
        // Binary search for the segment containing `offset`.
        let seg_idx = match self
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut out = Vec::with_capacity(max.min(1024));
        let mut idx = seg_idx;
        let mut pos = (offset - self.segments[seg_idx].base_offset) as usize;
        while out.len() < max && idx < self.segments.len() {
            let seg = &self.segments[idx];
            let take = (max - out.len()).min(seg.count - pos);
            if seg.is_evicted() {
                let disk = seg.disk.as_ref().expect("evicted segment has disk");
                out.extend(
                    disk.read_records(pos, take)
                        .map_err(|e| ReadError::Storage(e.to_string()))?,
                );
            } else {
                out.extend_from_slice(&seg.records[pos..pos + take]);
            }
            pos = 0;
            idx += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(n: usize) -> Record {
        Record::new(vec![0u8; n])
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pilot-log-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: PathBuf, retention: RetentionPolicy) -> PartitionLog {
        PartitionLog::open_durable(
            dir,
            retention,
            SyncPolicy::OsOnly,
            Arc::new(StoreStats::default()),
            Arc::new(AtomicU64::new(0)),
            Arc::new(DurableMark::default()),
        )
        .unwrap()
    }

    #[test]
    fn offsets_are_dense() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        for i in 0..10 {
            assert_eq!(log.append(rec(8)), i);
        }
        assert_eq!(log.high_watermark(), 10);
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn read_returns_requested_window() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        for _ in 0..100 {
            log.append(rec(8));
        }
        let recs = log.read(10, 5).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].offset, 10);
        assert_eq!(recs[4].offset, 14);
    }

    #[test]
    fn read_at_high_watermark_is_empty() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        log.append(rec(8));
        assert!(log.read(1, 10).unwrap().is_empty());
        assert!(log.read(100, 10).unwrap().is_empty());
    }

    #[test]
    fn read_spans_segments() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        let n = SEGMENT_RECORDS * 2 + 10;
        for _ in 0..n {
            log.append(rec(1));
        }
        let recs = log.read(SEGMENT_RECORDS as u64 - 5, 10).unwrap();
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, SEGMENT_RECORDS as u64 - 5 + i as u64);
        }
    }

    #[test]
    fn retention_trims_head_segments() {
        // Each record ~1 KB; cap at ~100 KB. Need multiple segments, so
        // append > SEGMENT_RECORDS records.
        let mut log = PartitionLog::new(RetentionPolicy::by_records(1500));
        for _ in 0..(SEGMENT_RECORDS * 3) {
            log.append(rec(8));
        }
        assert!(log.len() <= 1500 + SEGMENT_RECORDS as u64);
        assert!(log.log_start() > 0);
        // Offsets keep counting despite trimming.
        assert_eq!(log.high_watermark(), (SEGMENT_RECORDS * 3) as u64);
    }

    #[test]
    fn read_below_log_start_errors_with_new_start() {
        let mut log = PartitionLog::new(RetentionPolicy::by_records(SEGMENT_RECORDS as u64));
        for _ in 0..(SEGMENT_RECORDS * 2 + 1) {
            log.append(rec(8));
        }
        let start = log.log_start();
        assert!(start > 0);
        assert_eq!(log.read(0, 1), Err(ReadError::Trimmed(start)));
    }

    #[test]
    fn active_segment_never_dropped() {
        let mut log = PartitionLog::new(RetentionPolicy::by_bytes(1));
        log.append(rec(1000));
        log.append(rec(1000));
        // Both records live in the single active segment; policy exceeded
        // but nothing to trim.
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn zero_max_read_is_empty() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        log.append(rec(8));
        assert!(log.read(0, 0).unwrap().is_empty());
    }

    #[test]
    fn offset_for_timestamp_finds_first_at_or_after() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        for ts in [10u64, 20, 30, 40] {
            log.append(Record::new(vec![0u8; 4]).with_timestamp(ts));
        }
        assert_eq!(log.offset_for_timestamp(0), 0);
        assert_eq!(log.offset_for_timestamp(20), 1);
        assert_eq!(log.offset_for_timestamp(25), 2);
        assert_eq!(log.offset_for_timestamp(99), log.high_watermark());
    }

    #[test]
    fn offset_for_timestamp_spans_segments() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        let n = SEGMENT_RECORDS * 3 + 7;
        for i in 0..n {
            log.append(Record::new(vec![0u8; 4]).with_timestamp(i as u64 * 2));
        }
        // Exact hits, between-records hits, segment boundaries.
        for probe in [
            0u64,
            5,
            (SEGMENT_RECORDS as u64) * 2,
            (SEGMENT_RECORDS as u64) * 2 + 1,
            (n as u64 - 1) * 2,
        ] {
            let expect = probe.div_ceil(2).min(n as u64);
            assert_eq!(log.offset_for_timestamp(probe), expect, "probe {probe}");
        }
        assert_eq!(log.offset_for_timestamp(u64::MAX), log.high_watermark());
    }

    #[test]
    fn durable_log_reads_match_memory_log() {
        let dir = tmp_dir("parity");
        let mut mem = PartitionLog::new(RetentionPolicy::unbounded());
        let mut dur = open(dir.clone(), RetentionPolicy::unbounded());
        let n = SEGMENT_RECORDS * 3 + 100; // forces eviction of early segments
        for i in 0..n {
            let r = Record::new(vec![(i % 251) as u8; 1 + i % 60]).with_timestamp(i as u64);
            assert_eq!(mem.append(r.clone()), dur.append(r));
            if i % 512 == 511 {
                // Advance the durable watermark so the eviction gate opens
                // (resident records only drop once their bytes are synced).
                dur.test_sync();
            }
        }
        assert!(dur.resident_records() < n as u64, "cold segments evicted");
        for (offset, max) in [(0u64, 10usize), (500, 2000), (2047, 3), (0, n + 10)] {
            assert_eq!(
                mem.read(offset, max).unwrap(),
                dur.read(offset, max).unwrap(),
                "read({offset},{max})"
            );
        }
        assert_eq!(
            mem.offset_for_timestamp(1234),
            dur.offset_for_timestamp(1234)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_log_survives_reopen() {
        let dir = tmp_dir("reopen");
        let n = SEGMENT_RECORDS + 77;
        {
            let mut log = open(dir.clone(), RetentionPolicy::unbounded());
            for i in 0..n {
                log.append(Record::new(vec![i as u8; 33]).with_timestamp(i as u64));
            }
        } // drop flushes the writer buffer (clean shutdown)
        let log = open(dir.clone(), RetentionPolicy::unbounded());
        assert_eq!(log.high_watermark(), n as u64);
        assert_eq!(log.durable_watermark(), n as u64);
        assert_eq!(log.len(), n as u64);
        let recs = log.read(SEGMENT_RECORDS as u64 - 2, 5).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].offset, SEGMENT_RECORDS as u64 - 2);
        assert_eq!(
            recs[0].value.as_ref(),
            &[(SEGMENT_RECORDS - 2) as u8; 33][..]
        );
        assert_eq!(log.offset_for_timestamp(500), 500);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_retention_unlinks_segment_files() {
        let dir = tmp_dir("retention");
        let mut log = open(
            dir.clone(),
            RetentionPolicy::by_records(SEGMENT_RECORDS as u64),
        );
        for _ in 0..(SEGMENT_RECORDS * 3) {
            log.append(rec(8));
        }
        assert!(log.log_start() > 0);
        let files = std::fs::read_dir(&dir).unwrap().count();
        // Only the retained segments' files remain.
        assert!(
            files <= log.segment_count(),
            "{files} files on disk for {} segments",
            log.segment_count()
        );
        // Reopen sees the same trimmed log.
        drop(log);
        let log = open(dir.clone(), RetentionPolicy::unbounded());
        assert_eq!(log.high_watermark(), (SEGMENT_RECORDS * 3) as u64);
        assert!(log.log_start() > 0);
        assert_eq!(log.read(0, 1), Err(ReadError::Trimmed(log.log_start())));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_sync_requeues_no_hole_and_honest_watermark() {
        let dir = tmp_dir("requeue");
        let n = 10u64;
        {
            let mut log = open(dir.clone(), RetentionPolicy::unbounded());
            for i in 0..n {
                log.append(Record::new(vec![i as u8; 24]).with_timestamp(i));
            }
            // Simulate a failed cycle: the batch is captured but none of
            // its writes land (what sync_partition does on an I/O error).
            let batch = log.prepare_sync().expect("dirty");
            log.requeue_failed_sync(batch);
            assert_eq!(
                log.durable_watermark(),
                0,
                "a failed cycle must not publish durability"
            );
            for i in n..2 * n {
                log.append(Record::new(vec![i as u8; 24]).with_timestamp(i));
            }
            // The retry cycle covers the requeued bytes AND the new ones.
            log.test_sync();
            assert_eq!(log.durable_watermark(), 2 * n);
        }
        // Reopen: no hole — the full record set is a clean prefix.
        let log = open(dir.clone(), RetentionPolicy::unbounded());
        assert_eq!(log.high_watermark(), 2 * n);
        let recs = log.read(0, 2 * n as usize).unwrap();
        assert_eq!(recs.len(), 2 * n as usize);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
            assert_eq!(r.value.as_ref(), &[i as u8; 24][..]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn each_append_policy_is_immediately_durable() {
        let dir = tmp_dir("each-append");
        let durable = Arc::new(AtomicU64::new(0));
        let mut log = PartitionLog::open_durable(
            dir.clone(),
            RetentionPolicy::unbounded(),
            SyncPolicy::EachAppend,
            Arc::new(StoreStats::default()),
            Arc::clone(&durable),
            Arc::new(DurableMark::default()),
        )
        .unwrap();
        for i in 0..5u64 {
            log.append(rec(16));
            assert_eq!(durable.load(Ordering::Acquire), i + 1);
            assert_eq!(log.durable_watermark(), i + 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        /// Any sequence of appends yields dense offsets and reads return
        /// exactly the records asked for, in order.
        #[test]
        fn prop_append_read_consistent(sizes in proptest::collection::vec(1usize..64, 1..200)) {
            let mut log = PartitionLog::new(RetentionPolicy::unbounded());
            for (i, &s) in sizes.iter().enumerate() {
                let off = log.append(rec(s));
                prop_assert_eq!(off, i as u64);
            }
            let all = log.read(0, sizes.len()).unwrap();
            prop_assert_eq!(all.len(), sizes.len());
            for (i, r) in all.iter().enumerate() {
                prop_assert_eq!(r.offset, i as u64);
                prop_assert_eq!(r.value.len(), sizes[i]);
            }
        }

        /// Under any record-count retention, the high watermark is
        /// monotonic, log_start <= hwm, and reads from log_start succeed.
        #[test]
        fn prop_retention_invariants(
            n in 1usize..4000,
            cap in 1u64..2000,
        ) {
            let mut log = PartitionLog::new(RetentionPolicy::by_records(cap));
            let mut prev_hwm = 0;
            for _ in 0..n {
                log.append(rec(4));
                let hwm = log.high_watermark();
                prop_assert!(hwm > prev_hwm);
                prev_hwm = hwm;
                prop_assert!(log.log_start() <= hwm);
            }
            let from_start = log.read(log.log_start(), 10).unwrap();
            prop_assert!(!from_start.is_empty());
            prop_assert_eq!(from_start[0].offset, log.log_start());
        }

        /// Monotonic timestamps: the binary-search `offset_for_timestamp`
        /// agrees with a reference linear scan at every probe.
        #[test]
        fn prop_offset_for_timestamp_matches_linear_scan(
            gaps in proptest::collection::vec(0u64..5, 1..300),
            probes in proptest::collection::vec(0u64..800, 1..20),
        ) {
            let mut log = PartitionLog::new(RetentionPolicy::unbounded());
            let mut ts = 0u64;
            let mut stamps = Vec::new();
            for g in &gaps {
                ts += g; // non-decreasing, duplicates allowed
                stamps.push(ts);
                log.append(Record::new(vec![0u8; 4]).with_timestamp(ts));
            }
            for &probe in &probes {
                let linear = stamps
                    .iter()
                    .position(|&t| t >= probe)
                    .map_or(log.high_watermark(), |i| i as u64);
                prop_assert_eq!(log.offset_for_timestamp(probe), linear, "probe {}", probe);
            }
        }
    }
}
