//! The per-partition segmented commit log.
//!
//! A [`PartitionLog`] is an append-only sequence of [`Record`]s with dense
//! offsets, stored in fixed-capacity segments so retention can trim from
//! the head in O(1) amortised (whole segments are dropped, never spliced).

use crate::record::{Offset, Record};
use crate::retention::RetentionPolicy;

/// Records per segment. Small enough that retention is reasonably granular,
/// large enough that segment bookkeeping is negligible.
pub const SEGMENT_RECORDS: usize = 1024;

#[derive(Debug)]
struct Segment {
    base_offset: Offset,
    records: Vec<Record>,
    bytes: u64,
}

impl Segment {
    fn new(base_offset: Offset) -> Self {
        Self {
            base_offset,
            records: Vec::with_capacity(SEGMENT_RECORDS.min(64)),
            bytes: 0,
        }
    }

    fn next_offset(&self) -> Offset {
        self.base_offset + self.records.len() as u64
    }

    fn is_full(&self) -> bool {
        self.records.len() >= SEGMENT_RECORDS
    }
}

/// An append-only partition log with segment-level retention.
#[derive(Debug)]
pub struct PartitionLog {
    segments: Vec<Segment>,
    retention: RetentionPolicy,
    total_bytes: u64,
    total_records: u64,
    /// Offset of the first retained record.
    log_start: Offset,
}

impl PartitionLog {
    /// Create an empty log with the given retention policy.
    pub fn new(retention: RetentionPolicy) -> Self {
        Self {
            segments: vec![Segment::new(0)],
            retention,
            total_bytes: 0,
            total_records: 0,
            log_start: 0,
        }
    }

    /// Offset of the first retained record.
    pub fn log_start(&self) -> Offset {
        self.log_start
    }

    /// Offset one past the last record (next offset to be assigned).
    pub fn high_watermark(&self) -> Offset {
        self.segments
            .last()
            .map(|s| s.next_offset())
            .unwrap_or(self.log_start)
    }

    /// Retained records.
    pub fn len(&self) -> u64 {
        self.total_records
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Retained payload bytes.
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Append a record; the log assigns and returns its offset.
    pub fn append(&mut self, mut record: Record) -> Offset {
        let offset = self.high_watermark();
        record.offset = offset;
        let size = record.wire_size() as u64;
        if self.segments.last().is_none_or(|s| s.is_full()) {
            self.segments.push(Segment::new(offset));
        }
        let seg = self.segments.last_mut().expect("segment just ensured");
        seg.records.push(record);
        seg.bytes += size;
        self.total_bytes += size;
        self.total_records += 1;
        self.enforce_retention();
        offset
    }

    /// Drop head segments while the policy is exceeded. The active (last)
    /// segment is never dropped.
    fn enforce_retention(&mut self) {
        while self.segments.len() > 1
            && self
                .retention
                .exceeded(self.total_bytes, self.total_records)
        {
            let seg = self.segments.remove(0);
            self.total_bytes -= seg.bytes;
            self.total_records -= seg.records.len() as u64;
            self.log_start = self.segments[0].base_offset;
        }
    }

    /// First retained offset whose record timestamp is `>= ts_us`, or the
    /// high watermark if every retained record is older (Kafka's
    /// `offsetsForTimes`). Linear scan over retained records — retention
    /// bounds the cost.
    pub fn offset_for_timestamp(&self, ts_us: u64) -> Offset {
        for seg in &self.segments {
            for rec in &seg.records {
                if rec.timestamp_us >= ts_us {
                    return rec.offset;
                }
            }
        }
        self.high_watermark()
    }

    /// Read up to `max` records starting at `offset`. An offset below
    /// `log_start` is an error (data trimmed); an offset at or above the
    /// high watermark returns an empty vec (nothing there *yet*).
    pub fn read(&self, offset: Offset, max: usize) -> Result<Vec<Record>, Offset> {
        if offset < self.log_start {
            return Err(self.log_start);
        }
        let hwm = self.high_watermark();
        if offset >= hwm || max == 0 {
            return Ok(Vec::new());
        }
        // Binary search for the segment containing `offset`.
        let seg_idx = match self
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut out = Vec::with_capacity(max.min(1024));
        let mut idx = seg_idx;
        let mut pos = (offset - self.segments[seg_idx].base_offset) as usize;
        while out.len() < max && idx < self.segments.len() {
            let seg = &self.segments[idx];
            let take = (max - out.len()).min(seg.records.len() - pos);
            out.extend_from_slice(&seg.records[pos..pos + take]);
            pos = 0;
            idx += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(n: usize) -> Record {
        Record::new(vec![0u8; n])
    }

    #[test]
    fn offsets_are_dense() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        for i in 0..10 {
            assert_eq!(log.append(rec(8)), i);
        }
        assert_eq!(log.high_watermark(), 10);
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn read_returns_requested_window() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        for _ in 0..100 {
            log.append(rec(8));
        }
        let recs = log.read(10, 5).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].offset, 10);
        assert_eq!(recs[4].offset, 14);
    }

    #[test]
    fn read_at_high_watermark_is_empty() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        log.append(rec(8));
        assert!(log.read(1, 10).unwrap().is_empty());
        assert!(log.read(100, 10).unwrap().is_empty());
    }

    #[test]
    fn read_spans_segments() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        let n = SEGMENT_RECORDS * 2 + 10;
        for _ in 0..n {
            log.append(rec(1));
        }
        let recs = log.read(SEGMENT_RECORDS as u64 - 5, 10).unwrap();
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, SEGMENT_RECORDS as u64 - 5 + i as u64);
        }
    }

    #[test]
    fn retention_trims_head_segments() {
        // Each record ~1 KB; cap at ~100 KB. Need multiple segments, so
        // append > SEGMENT_RECORDS records.
        let mut log = PartitionLog::new(RetentionPolicy::by_records(1500));
        for _ in 0..(SEGMENT_RECORDS * 3) {
            log.append(rec(8));
        }
        assert!(log.len() <= 1500 + SEGMENT_RECORDS as u64);
        assert!(log.log_start() > 0);
        // Offsets keep counting despite trimming.
        assert_eq!(log.high_watermark(), (SEGMENT_RECORDS * 3) as u64);
    }

    #[test]
    fn read_below_log_start_errors_with_new_start() {
        let mut log = PartitionLog::new(RetentionPolicy::by_records(SEGMENT_RECORDS as u64));
        for _ in 0..(SEGMENT_RECORDS * 2 + 1) {
            log.append(rec(8));
        }
        let start = log.log_start();
        assert!(start > 0);
        assert_eq!(log.read(0, 1), Err(start));
    }

    #[test]
    fn active_segment_never_dropped() {
        let mut log = PartitionLog::new(RetentionPolicy::by_bytes(1));
        log.append(rec(1000));
        log.append(rec(1000));
        // Both records live in the single active segment; policy exceeded
        // but nothing to trim.
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn zero_max_read_is_empty() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        log.append(rec(8));
        assert!(log.read(0, 0).unwrap().is_empty());
    }

    #[test]
    fn offset_for_timestamp_finds_first_at_or_after() {
        let mut log = PartitionLog::new(RetentionPolicy::unbounded());
        for ts in [10u64, 20, 30, 40] {
            log.append(Record::new(vec![0u8; 4]).with_timestamp(ts));
        }
        assert_eq!(log.offset_for_timestamp(0), 0);
        assert_eq!(log.offset_for_timestamp(20), 1);
        assert_eq!(log.offset_for_timestamp(25), 2);
        assert_eq!(log.offset_for_timestamp(99), log.high_watermark());
    }

    proptest! {
        /// Any sequence of appends yields dense offsets and reads return
        /// exactly the records asked for, in order.
        #[test]
        fn prop_append_read_consistent(sizes in proptest::collection::vec(1usize..64, 1..200)) {
            let mut log = PartitionLog::new(RetentionPolicy::unbounded());
            for (i, &s) in sizes.iter().enumerate() {
                let off = log.append(rec(s));
                prop_assert_eq!(off, i as u64);
            }
            let all = log.read(0, sizes.len()).unwrap();
            prop_assert_eq!(all.len(), sizes.len());
            for (i, r) in all.iter().enumerate() {
                prop_assert_eq!(r.offset, i as u64);
                prop_assert_eq!(r.value.len(), sizes[i]);
            }
        }

        /// Under any record-count retention, the high watermark is
        /// monotonic, log_start <= hwm, and reads from log_start succeed.
        #[test]
        fn prop_retention_invariants(
            n in 1usize..4000,
            cap in 1u64..2000,
        ) {
            let mut log = PartitionLog::new(RetentionPolicy::by_records(cap));
            let mut prev_hwm = 0;
            for _ in 0..n {
                log.append(rec(4));
                let hwm = log.high_watermark();
                prop_assert!(hwm > prev_hwm);
                prev_hwm = hwm;
                prop_assert!(log.log_start() <= hwm);
            }
            let from_start = log.read(log.log_start(), 10).unwrap();
            prop_assert!(!from_start.is_empty());
            prop_assert_eq!(from_start[0].offset, log.log_start());
        }
    }
}
