//! Merge policies: how pushed updates combine with stored parameters.

use serde::{Deserialize, Serialize};

/// How [`crate::ParameterServer::update`] combines an incoming vector with
/// the stored one. All element-wise policies require matching lengths; a
/// mismatch falls back to `Assign` (the new model replaces the old — the
/// sensible behaviour when a model is re-architected at runtime).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MergePolicy {
    /// Overwrite the stored value.
    Assign,
    /// Element-wise mean of stored and incoming.
    Average,
    /// Exponential moving average: `new = alpha·incoming + (1−alpha)·stored`.
    Ema {
        /// Weight of the incoming update, in `[0, 1]`.
        alpha: f64,
    },
    /// Element-wise sum (gradient accumulation).
    Sum,
}

impl MergePolicy {
    /// Merge `incoming` into `stored`, producing the value to store.
    pub fn merge(&self, stored: &[f64], incoming: &[f64]) -> Vec<f64> {
        if stored.len() != incoming.len() {
            return incoming.to_vec();
        }
        match *self {
            MergePolicy::Assign => incoming.to_vec(),
            MergePolicy::Average => stored
                .iter()
                .zip(incoming)
                .map(|(&s, &i)| (s + i) / 2.0)
                .collect(),
            MergePolicy::Ema { alpha } => {
                let a = alpha.clamp(0.0, 1.0);
                stored
                    .iter()
                    .zip(incoming)
                    .map(|(&s, &i)| a * i + (1.0 - a) * s)
                    .collect()
            }
            MergePolicy::Sum => stored.iter().zip(incoming).map(|(&s, &i)| s + i).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_overwrites() {
        assert_eq!(
            MergePolicy::Assign.merge(&[1.0, 2.0], &[3.0, 4.0]),
            vec![3.0, 4.0]
        );
    }

    #[test]
    fn average_is_midpoint() {
        assert_eq!(
            MergePolicy::Average.merge(&[0.0, 10.0], &[10.0, 0.0]),
            vec![5.0, 5.0]
        );
    }

    #[test]
    fn ema_weights_incoming() {
        let m = MergePolicy::Ema { alpha: 0.25 };
        assert_eq!(m.merge(&[0.0], &[8.0]), vec![2.0]);
    }

    #[test]
    fn ema_alpha_clamped() {
        let m = MergePolicy::Ema { alpha: 2.0 };
        assert_eq!(m.merge(&[0.0], &[8.0]), vec![8.0]);
        let m = MergePolicy::Ema { alpha: -1.0 };
        assert_eq!(m.merge(&[3.0], &[8.0]), vec![3.0]);
    }

    #[test]
    fn sum_accumulates() {
        assert_eq!(
            MergePolicy::Sum.merge(&[1.0, 1.0], &[2.0, 3.0]),
            vec![3.0, 4.0]
        );
    }

    #[test]
    fn length_mismatch_falls_back_to_assign() {
        assert_eq!(
            MergePolicy::Average.merge(&[1.0], &[2.0, 3.0]),
            vec![2.0, 3.0]
        );
    }
}
