//! The sharded, versioned parameter store.

use crate::policy::MergePolicy;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing per-key version, starting at 1.
pub type Version = u64;

const SHARDS: usize = 16;

struct Entry {
    value: Arc<Vec<f64>>,
    version: Version,
}

/// Outcome of a conditional put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The value was stored; this is its new version.
    Stored(Version),
    /// The expected version did not match; this is the current version.
    Conflict(Version),
}

/// Operation counters (cheap, relaxed atomics).
#[derive(Debug, Default)]
pub struct ParamStats {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
}

/// # Example
///
/// ```
/// use pilot_params::{MergePolicy, ParameterServer};
///
/// let ps = ParameterServer::new();
/// let v1 = ps.put("model", vec![1.0, 2.0]);
/// ps.update("model", MergePolicy::Average, &[3.0, 4.0]);
/// let (weights, version) = ps.get("model").unwrap();
/// assert_eq!(&*weights, &[2.0, 3.0]);
/// assert_eq!(version, v1 + 1);
/// // Cheap freshness polling between messages:
/// assert!(ps.get_if_newer("model", version).is_none());
/// ```
/// A thread-safe parameter server. Clone handles freely (`Arc` inside).
#[derive(Clone)]
pub struct ParameterServer {
    shards: Arc<[Mutex<HashMap<String, Entry>>; SHARDS]>,
    stats: Arc<ParamStats>,
}

impl ParameterServer {
    /// Create an empty server.
    pub fn new() -> Self {
        Self {
            shards: Arc::new(std::array::from_fn(|_| Mutex::new(HashMap::new()))),
            stats: Arc::new(ParamStats::default()),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    /// Store `value` under `key`, unconditionally. Returns the new version.
    pub fn put(&self, key: &str, value: Vec<f64>) -> Version {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add((value.len() * 8) as u64, Ordering::Relaxed);
        let mut shard = self.shard(key).lock();
        let e = shard.entry(key.to_string()).or_insert(Entry {
            value: Arc::new(Vec::new()),
            version: 0,
        });
        e.version += 1;
        e.value = Arc::new(value);
        e.version
    }

    /// Fetch the value and version under `key`.
    pub fn get(&self, key: &str) -> Option<(Arc<Vec<f64>>, Version)> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(key).lock();
        shard.get(key).map(|e| {
            self.stats
                .bytes_out
                .fetch_add((e.value.len() * 8) as u64, Ordering::Relaxed);
            (Arc::clone(&e.value), e.version)
        })
    }

    /// Fetch only if the stored version is newer than `since`. The cheap
    /// polling primitive workers use between messages.
    pub fn get_if_newer(&self, key: &str, since: Version) -> Option<(Arc<Vec<f64>>, Version)> {
        let shard = self.shard(key).lock();
        match shard.get(key) {
            Some(e) if e.version > since => {
                self.stats.gets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_out
                    .fetch_add((e.value.len() * 8) as u64, Ordering::Relaxed);
                Some((Arc::clone(&e.value), e.version))
            }
            _ => None,
        }
    }

    /// Merge `incoming` into the stored value under `policy` (an absent key
    /// behaves as Assign). Returns the new version.
    pub fn update(&self, key: &str, policy: MergePolicy, incoming: &[f64]) -> Version {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add((incoming.len() * 8) as u64, Ordering::Relaxed);
        let mut shard = self.shard(key).lock();
        let e = shard.entry(key.to_string()).or_insert(Entry {
            value: Arc::new(Vec::new()),
            version: 0,
        });
        let merged = if e.version == 0 {
            incoming.to_vec()
        } else {
            policy.merge(&e.value, incoming)
        };
        e.version += 1;
        e.value = Arc::new(merged);
        e.version
    }

    /// Store only if the current version equals `expected` (0 = key absent).
    pub fn compare_and_put(&self, key: &str, expected: Version, value: Vec<f64>) -> PutOutcome {
        let mut shard = self.shard(key).lock();
        let e = shard.entry(key.to_string()).or_insert(Entry {
            value: Arc::new(Vec::new()),
            version: 0,
        });
        if e.version != expected {
            return PutOutcome::Conflict(e.version);
        }
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add((value.len() * 8) as u64, Ordering::Relaxed);
        e.version += 1;
        e.value = Arc::new(value);
        PutOutcome::Stored(e.version)
    }

    /// Remove a key; returns true if it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.shard(key).lock().remove(key).is_some()
    }

    /// All keys (unordered).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.lock().keys().cloned());
        }
        out
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    pub fn stats(&self) -> &ParamStats {
        &self.stats
    }
}

impl Default for ParameterServer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ParameterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParameterServer")
            .field("keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_get_roundtrip() {
        let ps = ParameterServer::new();
        let v1 = ps.put("model", vec![1.0, 2.0]);
        assert_eq!(v1, 1);
        let (val, ver) = ps.get("model").unwrap();
        assert_eq!(*val, vec![1.0, 2.0]);
        assert_eq!(ver, 1);
    }

    #[test]
    fn versions_increase_monotonically() {
        let ps = ParameterServer::new();
        assert_eq!(ps.put("k", vec![1.0]), 1);
        assert_eq!(ps.put("k", vec![2.0]), 2);
        assert_eq!(ps.update("k", MergePolicy::Sum, &[1.0]), 3);
    }

    #[test]
    fn get_missing_is_none() {
        let ps = ParameterServer::new();
        assert!(ps.get("nope").is_none());
    }

    #[test]
    fn get_if_newer_filters() {
        let ps = ParameterServer::new();
        ps.put("k", vec![1.0]);
        assert!(ps.get_if_newer("k", 0).is_some());
        assert!(ps.get_if_newer("k", 1).is_none());
        ps.put("k", vec![2.0]);
        let (v, ver) = ps.get_if_newer("k", 1).unwrap();
        assert_eq!(*v, vec![2.0]);
        assert_eq!(ver, 2);
    }

    #[test]
    fn update_on_absent_key_assigns() {
        let ps = ParameterServer::new();
        ps.update("k", MergePolicy::Average, &[4.0]);
        assert_eq!(*ps.get("k").unwrap().0, vec![4.0]);
    }

    #[test]
    fn update_merges_with_policy() {
        let ps = ParameterServer::new();
        ps.put("k", vec![0.0, 10.0]);
        ps.update("k", MergePolicy::Average, &[10.0, 0.0]);
        assert_eq!(*ps.get("k").unwrap().0, vec![5.0, 5.0]);
    }

    #[test]
    fn compare_and_put_detects_conflict() {
        let ps = ParameterServer::new();
        assert_eq!(ps.compare_and_put("k", 0, vec![1.0]), PutOutcome::Stored(1));
        assert_eq!(
            ps.compare_and_put("k", 0, vec![2.0]),
            PutOutcome::Conflict(1)
        );
        assert_eq!(ps.compare_and_put("k", 1, vec![2.0]), PutOutcome::Stored(2));
        assert_eq!(*ps.get("k").unwrap().0, vec![2.0]);
    }

    #[test]
    fn delete_removes() {
        let ps = ParameterServer::new();
        ps.put("k", vec![1.0]);
        assert!(ps.delete("k"));
        assert!(!ps.delete("k"));
        assert!(ps.get("k").is_none());
        assert!(ps.is_empty());
    }

    #[test]
    fn keys_and_len() {
        let ps = ParameterServer::new();
        ps.put("a", vec![]);
        ps.put("b", vec![]);
        let mut keys = ps.keys();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn stats_count_traffic() {
        let ps = ParameterServer::new();
        ps.put("k", vec![0.0; 10]);
        ps.get("k");
        assert_eq!(ps.stats().puts.load(Ordering::Relaxed), 1);
        assert_eq!(ps.stats().gets.load(Ordering::Relaxed), 1);
        assert_eq!(ps.stats().bytes_in.load(Ordering::Relaxed), 80);
        assert_eq!(ps.stats().bytes_out.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn concurrent_updates_none_lost() {
        let ps = ParameterServer::new();
        ps.put("k", vec![0.0]);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ps = ps.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    ps.update("k", MergePolicy::Sum, &[1.0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (v, ver) = ps.get("k").unwrap();
        assert_eq!(v[0], 8000.0);
        assert_eq!(ver, 8001);
    }

    proptest! {
        /// put-then-get is always identity, and versions only increase.
        #[test]
        fn prop_put_get_identity(values in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
            let ps = ParameterServer::new();
            let mut last_ver = 0;
            for _ in 0..3 {
                let ver = ps.put("k", values.clone());
                prop_assert!(ver > last_ver);
                last_ver = ver;
                let (got, v) = ps.get("k").unwrap();
                prop_assert_eq!(&*got, &values);
                prop_assert_eq!(v, ver);
            }
        }
    }
}
