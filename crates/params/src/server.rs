//! The sharded, versioned parameter store.

use crate::policy::MergePolicy;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing per-key version, starting at 1.
pub type Version = u64;

const SHARDS: usize = 16;

struct Entry {
    value: Arc<Vec<f64>>,
    version: Version,
}

/// Outcome of a conditional put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The value was stored; this is its new version.
    Stored(Version),
    /// The expected version did not match; this is the current version.
    Conflict(Version),
}

/// Operation counters (cheap, relaxed atomics).
#[derive(Debug, Default)]
pub struct ParamStats {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
}

/// # Example
///
/// ```
/// use pilot_params::{MergePolicy, ParameterServer};
///
/// let ps = ParameterServer::new();
/// let v1 = ps.put("model", vec![1.0, 2.0]);
/// ps.update("model", MergePolicy::Average, &[3.0, 4.0]);
/// let (weights, version) = ps.get("model").unwrap();
/// assert_eq!(&*weights, &[2.0, 3.0]);
/// assert_eq!(version, v1 + 1);
/// // Cheap freshness polling between messages:
/// assert!(ps.get_if_newer("model", version).is_none());
/// ```
/// A thread-safe parameter server. Clone handles freely (`Arc` inside).
#[derive(Clone)]
pub struct ParameterServer {
    shards: Arc<[Mutex<HashMap<String, Entry>>; SHARDS]>,
    stats: Arc<ParamStats>,
}

impl ParameterServer {
    /// Create an empty server.
    pub fn new() -> Self {
        Self {
            shards: Arc::new(std::array::from_fn(|_| Mutex::new(HashMap::new()))),
            stats: Arc::new(ParamStats::default()),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    /// Store `value` under `key`, unconditionally. Returns the new version.
    pub fn put(&self, key: &str, value: Vec<f64>) -> Version {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add((value.len() * 8) as u64, Ordering::Relaxed);
        let mut shard = self.shard(key).lock();
        let e = shard.entry(key.to_string()).or_insert(Entry {
            value: Arc::new(Vec::new()),
            version: 0,
        });
        e.version += 1;
        e.value = Arc::new(value);
        e.version
    }

    /// Fetch the value and version under `key`.
    pub fn get(&self, key: &str) -> Option<(Arc<Vec<f64>>, Version)> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(key).lock();
        shard.get(key).map(|e| {
            self.stats
                .bytes_out
                .fetch_add((e.value.len() * 8) as u64, Ordering::Relaxed);
            (Arc::clone(&e.value), e.version)
        })
    }

    /// Fetch only if the stored version is newer than `since`. The cheap
    /// polling primitive workers use between messages.
    pub fn get_if_newer(&self, key: &str, since: Version) -> Option<(Arc<Vec<f64>>, Version)> {
        let shard = self.shard(key).lock();
        match shard.get(key) {
            Some(e) if e.version > since => {
                self.stats.gets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_out
                    .fetch_add((e.value.len() * 8) as u64, Ordering::Relaxed);
                Some((Arc::clone(&e.value), e.version))
            }
            _ => None,
        }
    }

    /// Shard index for a key (stable for the server's lifetime).
    fn shard_index(&self, key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % SHARDS as u64) as usize
    }

    /// Batched fetch: results come back in input order. The batch is
    /// grouped by shard so each shard lock is acquired **once per batch**
    /// (not once per key), and the op/byte counters are updated with a
    /// single atomic add each — the federation merge loop's read path.
    pub fn get_many<K: AsRef<str>>(&self, keys: &[K]) -> Vec<Option<(Arc<Vec<f64>>, Version)>> {
        let mut out: Vec<Option<(Arc<Vec<f64>>, Version)>> = Vec::with_capacity(keys.len());
        out.resize_with(keys.len(), || None);
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, key) in keys.iter().enumerate() {
            by_shard[self.shard_index(key.as_ref())].push(i);
        }
        let mut bytes_out = 0u64;
        for (s, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = self.shards[s].lock();
            for &i in indices {
                if let Some(e) = shard.get(keys[i].as_ref()) {
                    bytes_out += (e.value.len() * 8) as u64;
                    out[i] = Some((Arc::clone(&e.value), e.version));
                }
            }
        }
        self.stats
            .gets
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.stats.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        out
    }

    /// Batched conditional fetch: for each `(key, since)` pair, the value
    /// and version only if the stored version is newer than `since`. Same
    /// one-lock-per-shard-per-batch discipline as [`Self::get_many`];
    /// version checks happen under the already-held lock, so a k-key poll
    /// costs at most `SHARDS` lock rounds however many cells share a shard.
    pub fn get_many_if_newer<K: AsRef<str>>(
        &self,
        reqs: &[(K, Version)],
    ) -> Vec<Option<(Arc<Vec<f64>>, Version)>> {
        let mut out: Vec<Option<(Arc<Vec<f64>>, Version)>> = Vec::with_capacity(reqs.len());
        out.resize_with(reqs.len(), || None);
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, (key, _)) in reqs.iter().enumerate() {
            by_shard[self.shard_index(key.as_ref())].push(i);
        }
        let mut hits = 0u64;
        let mut bytes_out = 0u64;
        for (s, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = self.shards[s].lock();
            for &i in indices {
                let (key, since) = &reqs[i];
                if let Some(e) = shard.get(key.as_ref()) {
                    if e.version > *since {
                        hits += 1;
                        bytes_out += (e.value.len() * 8) as u64;
                        out[i] = Some((Arc::clone(&e.value), e.version));
                    }
                }
            }
        }
        if hits > 0 {
            self.stats.gets.fetch_add(hits, Ordering::Relaxed);
            self.stats.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        }
        out
    }

    /// Batched store: writes every entry and returns the new versions in
    /// input order, acquiring each shard lock once per batch — the
    /// federation merge loop's publish path (one region's worth of cell
    /// models lands in one lock round per shard, not one per key).
    pub fn put_many(&self, entries: Vec<(String, Vec<f64>)>) -> Vec<Version> {
        let n = entries.len() as u64;
        let bytes_in: u64 = entries.iter().map(|(_, v)| (v.len() * 8) as u64).sum();
        let mut out = vec![0; entries.len()];
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        let mut entries: Vec<Option<(String, Vec<f64>)>> = entries.into_iter().map(Some).collect();
        for (i, e) in entries.iter().enumerate() {
            let key = &e.as_ref().expect("unconsumed entry").0;
            by_shard[self.shard_index(key)].push(i);
        }
        for (s, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].lock();
            for &i in indices {
                let (key, value) = entries[i].take().expect("entry consumed twice");
                let e = shard.entry(key).or_insert(Entry {
                    value: Arc::new(Vec::new()),
                    version: 0,
                });
                e.version += 1;
                e.value = Arc::new(value);
                out[i] = e.version;
            }
        }
        self.stats.puts.fetch_add(n, Ordering::Relaxed);
        self.stats.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        out
    }

    /// Merge `incoming` into the stored value under `policy` (an absent key
    /// behaves as Assign). Returns the new version.
    pub fn update(&self, key: &str, policy: MergePolicy, incoming: &[f64]) -> Version {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add((incoming.len() * 8) as u64, Ordering::Relaxed);
        let mut shard = self.shard(key).lock();
        let e = shard.entry(key.to_string()).or_insert(Entry {
            value: Arc::new(Vec::new()),
            version: 0,
        });
        let merged = if e.version == 0 {
            incoming.to_vec()
        } else {
            policy.merge(&e.value, incoming)
        };
        e.version += 1;
        e.value = Arc::new(merged);
        e.version
    }

    /// Store only if the current version equals `expected` (0 = key absent).
    pub fn compare_and_put(&self, key: &str, expected: Version, value: Vec<f64>) -> PutOutcome {
        let mut shard = self.shard(key).lock();
        let e = shard.entry(key.to_string()).or_insert(Entry {
            value: Arc::new(Vec::new()),
            version: 0,
        });
        if e.version != expected {
            return PutOutcome::Conflict(e.version);
        }
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add((value.len() * 8) as u64, Ordering::Relaxed);
        e.version += 1;
        e.value = Arc::new(value);
        PutOutcome::Stored(e.version)
    }

    /// Remove a key; returns true if it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.shard(key).lock().remove(key).is_some()
    }

    /// All keys (unordered).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.lock().keys().cloned());
        }
        out
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    pub fn stats(&self) -> &ParamStats {
        &self.stats
    }
}

impl Default for ParameterServer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ParameterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParameterServer")
            .field("keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_get_roundtrip() {
        let ps = ParameterServer::new();
        let v1 = ps.put("model", vec![1.0, 2.0]);
        assert_eq!(v1, 1);
        let (val, ver) = ps.get("model").unwrap();
        assert_eq!(*val, vec![1.0, 2.0]);
        assert_eq!(ver, 1);
    }

    #[test]
    fn versions_increase_monotonically() {
        let ps = ParameterServer::new();
        assert_eq!(ps.put("k", vec![1.0]), 1);
        assert_eq!(ps.put("k", vec![2.0]), 2);
        assert_eq!(ps.update("k", MergePolicy::Sum, &[1.0]), 3);
    }

    #[test]
    fn get_missing_is_none() {
        let ps = ParameterServer::new();
        assert!(ps.get("nope").is_none());
    }

    #[test]
    fn get_if_newer_filters() {
        let ps = ParameterServer::new();
        ps.put("k", vec![1.0]);
        assert!(ps.get_if_newer("k", 0).is_some());
        assert!(ps.get_if_newer("k", 1).is_none());
        ps.put("k", vec![2.0]);
        let (v, ver) = ps.get_if_newer("k", 1).unwrap();
        assert_eq!(*v, vec![2.0]);
        assert_eq!(ver, 2);
    }

    #[test]
    fn update_on_absent_key_assigns() {
        let ps = ParameterServer::new();
        ps.update("k", MergePolicy::Average, &[4.0]);
        assert_eq!(*ps.get("k").unwrap().0, vec![4.0]);
    }

    #[test]
    fn update_merges_with_policy() {
        let ps = ParameterServer::new();
        ps.put("k", vec![0.0, 10.0]);
        ps.update("k", MergePolicy::Average, &[10.0, 0.0]);
        assert_eq!(*ps.get("k").unwrap().0, vec![5.0, 5.0]);
    }

    #[test]
    fn compare_and_put_detects_conflict() {
        let ps = ParameterServer::new();
        assert_eq!(ps.compare_and_put("k", 0, vec![1.0]), PutOutcome::Stored(1));
        assert_eq!(
            ps.compare_and_put("k", 0, vec![2.0]),
            PutOutcome::Conflict(1)
        );
        assert_eq!(ps.compare_and_put("k", 1, vec![2.0]), PutOutcome::Stored(2));
        assert_eq!(*ps.get("k").unwrap().0, vec![2.0]);
    }

    #[test]
    fn delete_removes() {
        let ps = ParameterServer::new();
        ps.put("k", vec![1.0]);
        assert!(ps.delete("k"));
        assert!(!ps.delete("k"));
        assert!(ps.get("k").is_none());
        assert!(ps.is_empty());
    }

    #[test]
    fn keys_and_len() {
        let ps = ParameterServer::new();
        ps.put("a", vec![]);
        ps.put("b", vec![]);
        let mut keys = ps.keys();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn stats_count_traffic() {
        let ps = ParameterServer::new();
        ps.put("k", vec![0.0; 10]);
        ps.get("k");
        assert_eq!(ps.stats().puts.load(Ordering::Relaxed), 1);
        assert_eq!(ps.stats().gets.load(Ordering::Relaxed), 1);
        assert_eq!(ps.stats().bytes_in.load(Ordering::Relaxed), 80);
        assert_eq!(ps.stats().bytes_out.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn concurrent_updates_none_lost() {
        let ps = ParameterServer::new();
        ps.put("k", vec![0.0]);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ps = ps.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    ps.update("k", MergePolicy::Sum, &[1.0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (v, ver) = ps.get("k").unwrap();
        assert_eq!(v[0], 8000.0);
        assert_eq!(ver, 8001);
    }

    #[test]
    fn get_many_preserves_input_order_and_misses() {
        let ps = ParameterServer::new();
        ps.put("a", vec![1.0]);
        ps.put("c", vec![3.0]);
        let got = ps.get_many(&["a", "missing", "c", "a"]);
        assert_eq!(*got[0].as_ref().unwrap().0, vec![1.0]);
        assert!(got[1].is_none());
        assert_eq!(*got[2].as_ref().unwrap().0, vec![3.0]);
        assert_eq!(*got[3].as_ref().unwrap().0, vec![1.0]);
    }

    #[test]
    fn put_many_versions_in_input_order() {
        let ps = ParameterServer::new();
        ps.put("b", vec![0.0]);
        let versions = ps.put_many(vec![
            ("a".to_string(), vec![1.0]),
            ("b".to_string(), vec![2.0]),
            ("a".to_string(), vec![3.0]),
        ]);
        // "a" was fresh (v1 then v3 via the duplicate), "b" had v1 already.
        assert_eq!(versions, vec![1, 2, 2]);
        assert_eq!(*ps.get("a").unwrap().0, vec![3.0]);
        assert_eq!(*ps.get("b").unwrap().0, vec![2.0]);
    }

    #[test]
    fn get_many_if_newer_filters_per_key() {
        let ps = ParameterServer::new();
        ps.put("a", vec![1.0]);
        ps.put("b", vec![2.0]);
        ps.put("b", vec![3.0]); // b is now v2
        let got = ps.get_many_if_newer(&[("a", 1), ("b", 1), ("missing", 0)]);
        assert!(got[0].is_none(), "a has not moved past v1");
        let (v, ver) = got[1].as_ref().unwrap();
        assert_eq!(**v, vec![3.0]);
        assert_eq!(*ver, 2);
        assert!(got[2].is_none());
    }

    #[test]
    fn batched_ops_amortize_stats() {
        let ps = ParameterServer::new();
        ps.put_many(vec![
            ("a".to_string(), vec![0.0; 4]),
            ("b".to_string(), vec![0.0; 6]),
        ]);
        assert_eq!(ps.stats().puts.load(Ordering::Relaxed), 2);
        assert_eq!(ps.stats().bytes_in.load(Ordering::Relaxed), 80);
        ps.get_many(&["a", "b", "nope"]);
        assert_eq!(ps.stats().gets.load(Ordering::Relaxed), 3);
        assert_eq!(ps.stats().bytes_out.load(Ordering::Relaxed), 80);
    }

    proptest! {
        /// Batched ops agree with the per-key ops on any key/value mix
        /// (keys drawn from a small pool so duplicates and shard
        /// collisions are exercised).
        #[test]
        fn prop_batched_matches_per_key(
            raw in proptest::collection::vec(
                (0usize..6, proptest::collection::vec(-1e6f64..1e6, 0..8)),
                1..16,
            )
        ) {
            const KEYS: [&str; 6] = ["a", "b", "cc", "dd", "e1", "f2"];
            let entries: Vec<(String, Vec<f64>)> = raw
                .into_iter()
                .map(|(i, v)| (KEYS[i].to_string(), v))
                .collect();
            let batched = ParameterServer::new();
            let serial = ParameterServer::new();
            let versions = batched.put_many(entries.clone());
            let mut expect = Vec::new();
            for (k, v) in &entries {
                expect.push(serial.put(k, v.clone()));
            }
            prop_assert_eq!(versions, expect);
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            let got = batched.get_many(&keys);
            for (i, k) in keys.iter().enumerate() {
                let per_key = serial.get(k);
                let batch = got[i].clone();
                prop_assert_eq!(
                    batch.map(|(v, ver)| ((*v).clone(), ver)),
                    per_key.map(|(v, ver)| ((*v).clone(), ver))
                );
            }
        }

        /// put-then-get is always identity, and versions only increase.
        #[test]
        fn prop_put_get_identity(values in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
            let ps = ParameterServer::new();
            let mut last_ver = 0;
            for _ in 0..3 {
                let ver = ps.put("k", values.clone());
                prop_assert!(ver > last_ver);
                last_ver = ver;
                let (got, v) = ps.get("k").unwrap();
                prop_assert_eq!(&*got, &values);
                prop_assert_eq!(v, ver);
            }
        }
    }
}
