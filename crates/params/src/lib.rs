//! # pilot-params — a parameter server for model sharing
//!
//! Pilot-Edge "provides a Redis-based parameter server for sharing model
//! weights across the continuum" (paper Section II-B): processing tasks on
//! different pilots push and pull model state (k-means centroids,
//! auto-encoder weights) keyed by job, and "model updates are managed via
//! the parameter service" (Section III.2). Redis is not available here, so
//! this crate provides the equivalent semantics in-process:
//!
//! * a sharded, versioned key→weight-vector store ([`ParameterServer`]) with
//!   optimistic concurrency (`compare_and_put`) and monotonically increasing
//!   per-key versions, so workers can cheaply check "is there a newer model
//!   than the one I have?" ([`ParameterServer::get_if_newer`]);
//! * [`MergePolicy`] — how a pushed update combines with the stored value:
//!   overwrite, element-wise average, exponential moving average, or sum —
//!   the standard parameter-server aggregation modes for distributed
//!   training;
//! * operation counters, so the pipeline's monitoring can report parameter
//!   traffic alongside broker traffic.
//!
//! Like Redis, the server itself is transport-agnostic: the Pilot-Edge
//! runtime charges a `pilot-netsim` link around each call when the caller
//! is on a different site.

pub mod policy;
pub mod server;

pub use policy::MergePolicy;
pub use server::{ParamStats, ParameterServer, PutOutcome, Version};
