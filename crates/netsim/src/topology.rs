//! Topologies: sites connected by links, with shortest-path routing.
//!
//! The paper's evaluation uses a two-site topology (edge site + cloud site),
//! but its future-work section asks for "arbitrary architectures and
//! topologies of resources". [`Topology`] supports any site graph;
//! [`Topology::route`] finds the minimum-expected-latency path (Dijkstra over
//! mean link cost for a reference payload) and [`Topology::transfer`] charges
//! every hop on the path.

use crate::link::{Link, LinkSpec, TransferReceipt};
use crate::site::{Site, SiteId};
use std::collections::{BinaryHeap, HashMap};

/// A graph of sites and links.
#[derive(Debug, Default)]
pub struct Topology {
    sites: Vec<Site>,
    /// adjacency: site → (neighbour, link index)
    adj: HashMap<SiteId, Vec<(SiteId, usize)>>,
    links: Vec<Link>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a site, returning its id.
    pub fn add_site(&mut self, site: Site) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(site);
        self.adj.entry(id).or_default();
        id
    }

    /// Add a bidirectional link between two sites.
    ///
    /// # Panics
    /// Panics if either site id is not part of this topology.
    pub fn connect(&mut self, a: SiteId, b: SiteId, spec: LinkSpec) -> &Link {
        assert!((a.0 as usize) < self.sites.len(), "unknown site {a}");
        assert!((b.0 as usize) < self.sites.len(), "unknown site {b}");
        let idx = self.links.len();
        self.links.push(spec.build());
        self.adj.entry(a).or_default().push((b, idx));
        self.adj.entry(b).or_default().push((a, idx));
        &self.links[idx]
    }

    /// Site metadata.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0 as usize]
    }

    /// Find a site id by name.
    pub fn find(&self, name: &str) -> Option<SiteId> {
        self.sites
            .iter()
            .position(|s| s.name == name)
            .map(|i| SiteId(i as u32))
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the topology has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Minimum-cost route from `a` to `b` as a sequence of links, using each
    /// link's expected cost for a 64 KiB reference payload as the edge
    /// weight. Returns `None` if unreachable; `Some(vec![])` when `a == b`.
    pub fn route(&self, a: SiteId, b: SiteId) -> Option<Vec<Link>> {
        if a == b {
            return Some(Vec::new());
        }
        const REF_BYTES: u64 = 64 * 1024;
        // Dijkstra over f64 costs; BinaryHeap is a max-heap, so order by
        // negated cost through `std::cmp::Reverse` on integer nanoseconds.
        let mut dist: HashMap<SiteId, (f64, Option<(SiteId, usize)>)> = HashMap::new();
        dist.insert(a, (0.0, None));
        let mut heap = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, a)));
        while let Some(std::cmp::Reverse((d_ns, u))) = heap.pop() {
            let d = d_ns as f64 / 1e9;
            if let Some(&(best, _)) = dist.get(&u) {
                if d > best + 1e-12 {
                    continue;
                }
            }
            if u == b {
                break;
            }
            for &(v, li) in self.adj.get(&u).into_iter().flatten() {
                let w = self.links[li].spec().expected_secs(REF_BYTES);
                let nd = d + w;
                let better = dist.get(&v).map(|&(dv, _)| nd < dv).unwrap_or(true);
                if better {
                    dist.insert(v, (nd, Some((u, li))));
                    heap.push(std::cmp::Reverse(((nd * 1e9) as u64, v)));
                }
            }
        }
        // Reconstruct path b → a.
        let mut path = Vec::new();
        let mut cur = b;
        while cur != a {
            let &(_, prev) = dist.get(&cur)?;
            let (p, li) = prev?;
            path.push(self.links[li].clone());
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Transfer `bytes` from `a` to `b` along the minimum-cost route,
    /// blocking for the simulated time of every hop. Returns per-hop
    /// receipts, or `None` if the sites are not connected.
    pub fn transfer(&self, a: SiteId, b: SiteId, bytes: u64) -> Option<Vec<TransferReceipt>> {
        let path = self.route(a, b)?;
        Some(path.iter().map(|l| l.transfer(bytes)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Tier;

    fn spec(name: &str, ms: f64) -> LinkSpec {
        LinkSpec::fixed(name, ms, 1e12)
    }

    fn three_site() -> (Topology, SiteId, SiteId, SiteId) {
        let mut t = Topology::new();
        let e = t.add_site(Site::new("edge", Tier::Edge, "us"));
        let f = t.add_site(Site::new("fog", Tier::Fog, "us"));
        let c = t.add_site(Site::new("cloud", Tier::Cloud, "eu"));
        (t, e, f, c)
    }

    #[test]
    fn route_to_self_is_empty() {
        let (mut t, e, _, _) = three_site();
        let _ = t.connect(e, e, spec("self", 1.0));
        assert_eq!(t.route(e, e).unwrap().len(), 0);
    }

    #[test]
    fn unreachable_site_returns_none() {
        let (t, e, _, c) = three_site();
        assert!(t.route(e, c).is_none());
    }

    #[test]
    fn direct_route_found() {
        let (mut t, e, _, c) = three_site();
        t.connect(e, c, spec("wan", 75.0));
        let r = t.route(e, c).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name(), "wan");
    }

    #[test]
    fn shortest_path_prefers_cheaper_two_hop() {
        let (mut t, e, f, c) = three_site();
        t.connect(e, c, spec("direct", 200.0));
        t.connect(e, f, spec("hop1", 10.0));
        t.connect(f, c, spec("hop2", 10.0));
        let r = t.route(e, c).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].name(), "hop1");
        assert_eq!(r[1].name(), "hop2");
    }

    #[test]
    fn transfer_charges_every_hop() {
        let (mut t, e, f, c) = three_site();
        t.connect(e, f, spec("hop1", 5.0));
        t.connect(f, c, spec("hop2", 7.0));
        let receipts = t.transfer(e, c, 1024).unwrap();
        assert_eq!(receipts.len(), 2);
        let total_ms: f64 = receipts.iter().map(|r| r.total().as_secs_f64() * 1e3).sum();
        assert!((total_ms - 12.0).abs() < 1.0, "total={total_ms}");
    }

    #[test]
    fn find_by_name() {
        let (t, _, f, _) = three_site();
        assert_eq!(t.find("fog"), Some(f));
        assert_eq!(t.find("nope"), None);
    }

    #[test]
    fn len_and_is_empty() {
        let t = Topology::new();
        assert!(t.is_empty());
        let (t, ..) = three_site();
        assert_eq!(t.len(), 3);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force all-pairs shortest path (Floyd–Warshall) over the
        /// same expected-cost edge weights `Topology::route` uses.
        fn floyd(n: usize, edges: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
            let mut d = vec![vec![f64::INFINITY; n]; n];
            for (i, row) in d.iter_mut().enumerate() {
                row[i] = 0.0;
            }
            for &(a, b, w) in edges {
                d[a][b] = d[a][b].min(w);
                d[b][a] = d[b][a].min(w);
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        if d[i][k] + d[k][j] < d[i][j] {
                            d[i][j] = d[i][k] + d[k][j];
                        }
                    }
                }
            }
            d
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Dijkstra routing returns a minimum-cost path on arbitrary
            /// random graphs (validated against Floyd–Warshall), and
            /// returns None exactly when Floyd–Warshall says unreachable.
            #[test]
            fn prop_route_is_shortest(
                n in 2usize..8,
                raw_edges in proptest::collection::vec((0usize..8, 0usize..8, 1u32..500), 0..20),
            ) {
                let mut topo = Topology::new();
                for i in 0..n {
                    topo.add_site(Site::new(&format!("s{i}"), Tier::Cloud, "r"));
                }
                let mut edges = Vec::new();
                for (idx, &(a, b, ms)) in raw_edges.iter().enumerate() {
                    let (a, b) = (a % n, b % n);
                    if a == b {
                        continue;
                    }
                    let spec = LinkSpec::fixed(&format!("l{idx}"), ms as f64, 1e12);
                    let w = spec.expected_secs(64 * 1024);
                    topo.connect(SiteId(a as u32), SiteId(b as u32), spec);
                    edges.push((a, b, w));
                }
                let dist = floyd(n, &edges);
                for (i, dist_row) in dist.iter().enumerate() {
                    for (j, &optimal) in dist_row.iter().enumerate() {
                        let route = topo.route(SiteId(i as u32), SiteId(j as u32));
                        if i == j {
                            prop_assert_eq!(route.unwrap().len(), 0);
                            continue;
                        }
                        match route {
                            None => prop_assert!(
                                optimal.is_infinite(),
                                "route says unreachable but FW cost is {optimal}"
                            ),
                            Some(path) => {
                                let cost: f64 = path
                                    .iter()
                                    .map(|l| l.spec().expected_secs(64 * 1024))
                                    .sum();
                                prop_assert!(
                                    (cost - optimal).abs() < 1e-9,
                                    "route cost {cost} vs optimal {optimal}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
