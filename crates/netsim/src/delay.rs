//! Propagation-delay sampling models.
//!
//! The paper reports *ranges* for its WAN characteristics (140–160 ms RTT,
//! 60–100 Mbit/s), so the simulator samples per-transfer values from
//! configurable distributions rather than using constants. Normal sampling
//! uses the Box–Muller transform (no external distribution crate needed).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A delay model sampled once per transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delay {
    /// No delay at all (loopback).
    None,
    /// Always exactly this many milliseconds.
    FixedMs(f64),
    /// Uniformly distributed in `[min_ms, max_ms]`.
    UniformMs { min_ms: f64, max_ms: f64 },
    /// Normally distributed with the given mean/stddev (ms), truncated at 0.
    NormalMs { mean_ms: f64, std_ms: f64 },
}

impl Delay {
    /// Sample one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let ms = match *self {
            Delay::None => 0.0,
            Delay::FixedMs(ms) => ms,
            Delay::UniformMs { min_ms, max_ms } => {
                debug_assert!(max_ms >= min_ms, "max < min in UniformMs");
                if max_ms <= min_ms {
                    min_ms
                } else {
                    rng.random_range(min_ms..=max_ms)
                }
            }
            Delay::NormalMs { mean_ms, std_ms } => mean_ms + std_ms * standard_normal(rng),
        };
        Duration::from_secs_f64((ms.max(0.0)) / 1e3)
    }

    /// The expected value of the delay, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            Delay::None => 0.0,
            Delay::FixedMs(ms) => ms,
            Delay::UniformMs { min_ms, max_ms } => (min_ms + max_ms) / 2.0,
            Delay::NormalMs { mean_ms, .. } => mean_ms,
        }
    }
}

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Delay::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(Delay::None.mean_ms(), 0.0);
    }

    #[test]
    fn fixed_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Delay::FixedMs(12.5).sample(&mut rng);
        assert!((d.as_secs_f64() - 0.0125).abs() < 1e-12);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let model = Delay::UniformMs {
            min_ms: 140.0,
            max_ms: 160.0,
        };
        for _ in 0..1000 {
            let d = model.sample(&mut rng).as_secs_f64() * 1e3;
            assert!((140.0..=160.0).contains(&d), "d={d}");
        }
        assert_eq!(model.mean_ms(), 150.0);
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = Delay::UniformMs {
            min_ms: 5.0,
            max_ms: 5.0,
        };
        assert!((model.sample(&mut rng).as_secs_f64() * 1e3 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn normal_truncated_at_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Delay::NormalMs {
            mean_ms: 0.1,
            std_ms: 10.0,
        };
        for _ in 0..1000 {
            assert!(model.sample(&mut rng) >= Duration::ZERO);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn normal_mean_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Delay::NormalMs {
            mean_ms: 75.0,
            std_ms: 5.0,
        };
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| model.sample(&mut rng).as_secs_f64() * 1e3)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 75.0).abs() < 0.5, "mean={mean}");
    }
}
