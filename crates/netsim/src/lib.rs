//! # pilot-netsim — network simulation for the edge-to-cloud continuum
//!
//! The Pilot-Edge paper evaluates its framework on *geographically
//! distributed* infrastructure: edge data generators on XSEDE Jetstream (US)
//! and processing on the LRZ cloud (Germany), with a measured inter-site
//! latency of 140–160 ms (RTT) and bandwidth fluctuating between 60 and
//! 100 Mbit/s (Section III.2). That testbed is not available here, so this
//! crate implements the closest synthetic equivalent: a **link model** that
//! charges every byte moved between sites a propagation delay (sampled from a
//! configurable distribution) plus a serialization delay (bytes ÷ a sampled
//! bandwidth), with queueing when multiple transfers contend for the same
//! link.
//!
//! Why this substitution preserves the paper's behaviour: the
//! geographic-distribution results in Fig. 3 are purely a function of the
//! RTT floor on per-message latency and the bandwidth ceiling on throughput —
//! both of which the link model reproduces quantitatively, jittered within
//! the paper's measured ranges.
//!
//! Main types:
//!
//! * [`Delay`] — a sampling model for propagation latency (fixed, uniform,
//!   or normal, implemented without external distribution crates).
//! * [`LinkSpec`] / [`Link`] — a shared, thread-safe simulated link. Calling
//!   [`Link::transfer`] blocks the caller for the simulated duration and
//!   returns a [`TransferReceipt`] describing queueing, transit, and
//!   propagation components. [`Link::reserve`] / [`Link::reserve_batch`]
//!   split a transfer into a non-blocking FIFO reservation and a deferred
//!   [`Reservation::wait`], so pipelined transports can overlap flight time
//!   with compute (batches pay propagation once).
//! * [`Site`] / [`Topology`] — named sites with tiers (edge/fog/cloud/HPC)
//!   and links between them, including multi-hop routing for the paper's
//!   future-work "arbitrary topologies" extension.
//! * [`profiles`] — presets matching the paper's setups: loopback,
//!   cloud-local (LRZ), and transatlantic (Jetstream→LRZ).

pub mod delay;
pub mod link;
pub mod outage;
pub mod profiles;
pub mod site;
pub mod topology;

pub use delay::Delay;
pub use link::{Link, LinkSpec, Reservation, TransferReceipt};
pub use outage::{FlakyLink, Outage};
pub use site::{Site, SiteId, Tier};
pub use topology::Topology;
