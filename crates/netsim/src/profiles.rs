//! Link presets matching the paper's measured environments.

use crate::delay::Delay;
use crate::link::LinkSpec;

/// Zero-cost in-process link (components co-located in one process).
pub fn loopback(name: &str) -> LinkSpec {
    LinkSpec {
        name: name.to_string(),
        latency: Delay::None,
        bw_min_bps: f64::INFINITY,
        bw_max_bps: f64::INFINITY,
        seed: 0,
    }
}

/// A data-centre LAN: sub-millisecond latency, 10 Gbit/s.
pub fn lan(name: &str, seed: u64) -> LinkSpec {
    LinkSpec {
        name: name.to_string(),
        latency: Delay::UniformMs {
            min_ms: 0.05,
            max_ms: 0.3,
        },
        bw_min_bps: 10e9,
        bw_max_bps: 10e9,
        seed,
    }
}

/// Intra-cloud networking at LRZ (the paper's "baseline" deployment: data
/// source, broker and processing all on the LRZ cloud). VM-to-VM latency in
/// one OpenStack cloud is typically 0.2–1 ms with multi-Gbit/s throughput.
pub fn cloud_local(name: &str, seed: u64) -> LinkSpec {
    LinkSpec {
        name: name.to_string(),
        latency: Delay::UniformMs {
            min_ms: 0.2,
            max_ms: 1.0,
        },
        bw_min_bps: 4e9,
        bw_max_bps: 8e9,
        seed,
    }
}

/// The paper's transatlantic path: XSEDE Jetstream (US) → LRZ (Germany).
/// Measured: "latency between both locations varied between 140 and 160 msec;
/// bandwidth fluctuated between 60 to 100 MBits/sec (iPerf measurement)".
/// The 140–160 ms figure is a ping round-trip time; one-way message delivery
/// is modelled as RTT/2 = 70–80 ms.
pub fn transatlantic(name: &str, seed: u64) -> LinkSpec {
    LinkSpec {
        name: name.to_string(),
        latency: Delay::UniformMs {
            min_ms: 70.0,
            max_ms: 80.0,
        },
        bw_min_bps: 60e6,
        bw_max_bps: 100e6,
        seed,
    }
}

/// A last-mile edge uplink (e.g. a RasPi on WiFi/LTE behind a home router):
/// 5–30 ms latency, 20–50 Mbit/s. Used by edge-centric deployment examples.
pub fn edge_uplink(name: &str, seed: u64) -> LinkSpec {
    LinkSpec {
        name: name.to_string(),
        latency: Delay::UniformMs {
            min_ms: 5.0,
            max_ms: 30.0,
        },
        bw_min_bps: 20e6,
        bw_max_bps: 50e6,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transatlantic_matches_paper_ranges() {
        let spec = transatlantic("wan", 1);
        match spec.latency {
            Delay::UniformMs { min_ms, max_ms } => {
                // RTT/2 of the paper's 140–160 ms.
                assert_eq!(min_ms, 70.0);
                assert_eq!(max_ms, 80.0);
            }
            other => panic!("unexpected latency model {other:?}"),
        }
        assert_eq!(spec.bw_min_bps, 60e6);
        assert_eq!(spec.bw_max_bps, 100e6);
    }

    #[test]
    fn probe_latency_within_transatlantic_range() {
        let link = transatlantic("wan", 7).build();
        for _ in 0..20 {
            let ms = link.probe_latency().as_secs_f64() * 1e3;
            assert!((70.0..=80.0).contains(&ms), "ms={ms}");
        }
    }

    #[test]
    fn ordering_of_profiles_by_cost() {
        // For a 1 MB payload: loopback < lan < cloud_local < transatlantic.
        let b = 1_000_000;
        let lo = loopback("a").expected_secs(b);
        let la = lan("b", 0).expected_secs(b);
        let cl = cloud_local("c", 0).expected_secs(b);
        let ta = transatlantic("d", 0).expected_secs(b);
        assert!(lo < la && la < cl && cl < ta, "{lo} {la} {cl} {ta}");
    }

    #[test]
    fn loopback_is_instant() {
        assert_eq!(loopback("x").expected_secs(u64::MAX), 0.0);
    }
}
