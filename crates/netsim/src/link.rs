//! The simulated link: latency + bandwidth + queueing.
//!
//! A [`Link`] models a single shared pipe between two sites. Each transfer
//! pays:
//!
//! 1. **queueing** — if earlier transfers have reserved the pipe, the new
//!    transfer waits until the pipe frees up (FIFO reservation);
//! 2. **transit** — serialization delay: `bytes ÷ bandwidth`, with the
//!    bandwidth sampled per transfer from `[bw_min, bw_max]` to reproduce the
//!    paper's fluctuating 60–100 Mbit/s measurement;
//! 3. **propagation** — a latency sample from the link's [`Delay`] model.
//!    Propagation overlaps for concurrent transfers (it is not capacity), so
//!    it is added after the reservation, per transfer.
//!
//! [`Link::transfer`] *actually blocks* the calling thread for the simulated
//! total, so pipelines built on the simulator experience real backpressure —
//! which is what makes the throughput crossovers of Fig. 3 emerge rather
//! than being computed.

use crate::delay::Delay;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Static description of a link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name, used in metric span labels (`net:<name>`).
    pub name: String,
    /// One-way propagation latency model. Note: the paper reports 140–160 ms
    /// as a ping RTT; one-way delivery latency is modelled as RTT/2 (see
    /// [`crate::profiles::transatlantic`]).
    pub latency: Delay,
    /// Minimum bandwidth in bits per second.
    pub bw_min_bps: f64,
    /// Maximum bandwidth in bits per second. Sampled uniformly per transfer.
    pub bw_max_bps: f64,
    /// RNG seed so experiments are reproducible.
    pub seed: u64,
}

impl LinkSpec {
    /// A link with fixed bandwidth and a fixed latency.
    pub fn fixed(name: &str, latency_ms: f64, bw_bps: f64) -> Self {
        Self {
            name: name.to_string(),
            latency: if latency_ms == 0.0 {
                Delay::None
            } else {
                Delay::FixedMs(latency_ms)
            },
            bw_min_bps: bw_bps,
            bw_max_bps: bw_bps,
            seed: 0,
        }
    }

    /// Build the shareable runtime link.
    pub fn build(self) -> Link {
        Link::new(self)
    }

    /// Mean time for a transfer of `bytes` with no contention, in seconds.
    pub fn expected_secs(&self, bytes: u64) -> f64 {
        let bw = (self.bw_min_bps + self.bw_max_bps) / 2.0;
        let transit = if bw > 0.0 {
            (bytes as f64 * 8.0) / bw
        } else {
            0.0
        };
        transit + self.latency.mean_ms() / 1e3
    }
}

/// What one transfer actually cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReceipt {
    /// Time spent waiting for earlier transfers to release the pipe.
    pub queueing: Duration,
    /// Serialization time: bytes ÷ sampled bandwidth.
    pub transit: Duration,
    /// Propagation latency sample.
    pub propagation: Duration,
}

impl TransferReceipt {
    /// Total simulated transfer duration.
    pub fn total(&self) -> Duration {
        self.queueing + self.transit + self.propagation
    }
}

struct LinkState {
    /// FIFO reservation horizon: the instant at which the pipe frees up.
    next_free: Instant,
    rng: StdRng,
}

/// # Example
///
/// ```
/// use pilot_netsim::profiles;
///
/// // The paper's measured transatlantic path: 70-80 ms one-way,
/// // 60-100 Mbit/s.
/// let link = profiles::transatlantic("us->eu", 7).build();
/// let receipt = link.transfer(250_000); // one 250 KB message
/// assert!(receipt.propagation.as_millis() >= 70);
/// assert!(receipt.transit.as_millis() >= 20); // >= 2 Mbit / 100 Mbit/s
/// ```
/// A shared, thread-safe simulated link. Clone handles freely.
#[derive(Clone)]
pub struct Link {
    spec: Arc<LinkSpec>,
    state: Arc<Mutex<LinkState>>,
}

impl Link {
    /// Create a link from its spec.
    pub fn new(spec: LinkSpec) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
        Self {
            spec: Arc::new(spec),
            state: Arc::new(Mutex::new(LinkState {
                next_free: Instant::now(),
                rng,
            })),
        }
    }

    /// A zero-cost loopback link (no latency, effectively infinite bandwidth).
    pub fn loopback() -> Self {
        Link::new(LinkSpec {
            name: "loopback".to_string(),
            latency: Delay::None,
            bw_min_bps: f64::INFINITY,
            bw_max_bps: f64::INFINITY,
            seed: 0,
        })
    }

    /// The link's spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// The link's name (used in metric labels).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Compute the cost of transferring `bytes` **without** blocking or
    /// reserving capacity. Queueing is reported as zero.
    pub fn estimate(&self, bytes: u64) -> TransferReceipt {
        let mut st = self.state.lock();
        let (transit, propagation) = self.sample_costs(bytes, &mut st.rng);
        TransferReceipt {
            queueing: Duration::ZERO,
            transit,
            propagation,
        }
    }

    fn sample_costs(&self, bytes: u64, rng: &mut StdRng) -> (Duration, Duration) {
        let bw = if self.spec.bw_max_bps <= self.spec.bw_min_bps {
            self.spec.bw_min_bps
        } else {
            rng.random_range(self.spec.bw_min_bps..=self.spec.bw_max_bps)
        };
        let transit = if bw.is_finite() && bw > 0.0 {
            Duration::from_secs_f64(bytes as f64 * 8.0 / bw)
        } else {
            Duration::ZERO
        };
        let propagation = self.spec.latency.sample(rng);
        (transit, propagation)
    }

    /// Transfer `bytes` over the link, blocking the calling thread for the
    /// simulated duration (queueing + transit + propagation). Returns a
    /// receipt describing the cost components.
    pub fn transfer(&self, bytes: u64) -> TransferReceipt {
        let now = Instant::now();
        let (queueing, transit, propagation) = {
            let mut st = self.state.lock();
            let (transit, propagation) = self.sample_costs(bytes, &mut st.rng);
            // FIFO reservation of the pipe: transit consumes capacity,
            // propagation does not.
            let start = st.next_free.max(now);
            st.next_free = start + transit;
            (start.duration_since(now), transit, propagation)
        };
        let total = queueing + transit + propagation;
        if total > Duration::ZERO {
            // Sleep off whatever simulated time has not already elapsed
            // while we held the lock.
            let elapsed = now.elapsed();
            if total > elapsed {
                std::thread::sleep(total - elapsed);
            }
        }
        TransferReceipt {
            queueing,
            transit,
            propagation,
        }
    }

    /// Observed one-way latency for a zero-byte probe (an `iPerf`-style
    /// measurement helper used by the `netperf` harness binary).
    pub fn probe_latency(&self) -> Duration {
        self.transfer(0).propagation
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link").field("spec", &*self.spec).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_free() {
        let l = Link::loopback();
        let r = l.transfer(1 << 20);
        assert_eq!(r.total(), Duration::ZERO);
    }

    #[test]
    fn transit_matches_bandwidth() {
        // 1 MB over 80 Mbit/s = 0.1 s.
        let l = LinkSpec::fixed("t", 0.0, 80e6).build();
        let start = Instant::now();
        let r = l.transfer(1_000_000);
        let wall = start.elapsed();
        assert!((r.transit.as_secs_f64() - 0.1).abs() < 1e-6);
        assert!(wall.as_secs_f64() >= 0.099, "wall={wall:?}");
    }

    #[test]
    fn propagation_added_once() {
        let l = LinkSpec::fixed("t", 50.0, f64::INFINITY).build();
        let r = l.transfer(1_000);
        assert!((r.propagation.as_secs_f64() - 0.05).abs() < 1e-9);
        assert_eq!(r.transit, Duration::ZERO);
    }

    #[test]
    fn concurrent_transfers_queue_fifo() {
        // Two concurrent 0.05 s transfers on a shared pipe: combined wall
        // time must be ~0.1 s because transit serialises.
        let l = LinkSpec::fixed("t", 0.0, 160e6).build(); // 1 MB = 0.05 s
        let l2 = l.clone();
        let start = Instant::now();
        let h = std::thread::spawn(move || l2.transfer(1_000_000));
        let r1 = l.transfer(1_000_000);
        let r2 = h.join().unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert!(wall >= 0.095, "wall={wall}");
        // One of the two must have queued behind the other.
        let queued = r1.queueing.max(r2.queueing);
        assert!(queued.as_secs_f64() > 0.03, "queued={queued:?}");
    }

    #[test]
    fn bandwidth_sampled_within_range() {
        let l = LinkSpec {
            name: "wan".into(),
            latency: Delay::None,
            bw_min_bps: 60e6,
            bw_max_bps: 100e6,
            seed: 11,
        }
        .build();
        for _ in 0..50 {
            let r = l.estimate(1_000_000);
            let bps = 8e6 / r.transit.as_secs_f64();
            assert!((59.9e6..=100.1e6).contains(&bps), "bps={bps}");
        }
    }

    #[test]
    fn estimate_does_not_reserve_capacity() {
        let l = LinkSpec::fixed("t", 0.0, 8e6).build(); // 1 B = 1 µs
        for _ in 0..100 {
            l.estimate(1_000_000);
        }
        // After many estimates, a real transfer still has no queueing.
        let r = l.transfer(1_000);
        assert_eq!(r.queueing, Duration::ZERO);
    }

    #[test]
    fn expected_secs_combines_components() {
        let spec = LinkSpec {
            name: "wan".into(),
            latency: Delay::FixedMs(75.0),
            bw_min_bps: 60e6,
            bw_max_bps: 100e6,
            seed: 0,
        };
        // 1 MB at mean 80 Mbit/s = 0.1 s + 0.075 s latency.
        assert!((spec.expected_secs(1_000_000) - 0.175).abs() < 1e-9);
    }

    #[test]
    fn seeded_links_are_reproducible() {
        let mk = || {
            LinkSpec {
                name: "wan".into(),
                latency: Delay::UniformMs {
                    min_ms: 70.0,
                    max_ms: 80.0,
                },
                bw_min_bps: 60e6,
                bw_max_bps: 100e6,
                seed: 1234,
            }
            .build()
        };
        let a = mk();
        let b = mk();
        for _ in 0..10 {
            assert_eq!(a.estimate(1 << 16), b.estimate(1 << 16));
        }
    }
}
