//! The simulated link: latency + bandwidth + queueing.
//!
//! A [`Link`] models a single shared pipe between two sites. Each transfer
//! pays:
//!
//! 1. **queueing** — if earlier transfers have reserved the pipe, the new
//!    transfer waits until the pipe frees up (FIFO reservation);
//! 2. **transit** — serialization delay: `bytes ÷ bandwidth`, with the
//!    bandwidth sampled per transfer from `[bw_min, bw_max]` to reproduce the
//!    paper's fluctuating 60–100 Mbit/s measurement;
//! 3. **propagation** — a latency sample from the link's [`Delay`] model.
//!    Propagation overlaps for concurrent transfers (it is not capacity), so
//!    it is added after the reservation, per transfer.
//!
//! [`Link::transfer`] *actually blocks* the calling thread for the simulated
//! total, so pipelines built on the simulator experience real backpressure —
//! which is what makes the throughput crossovers of Fig. 3 emerge rather
//! than being computed.
//!
//! For pipelined transports, [`Link::reserve`] splits a transfer into a
//! non-blocking **reservation** (which charges the FIFO capacity horizon
//! immediately and fixes the completion deadline) and a separate
//! [`Reservation::wait`]. A sender can therefore overlap encoding or
//! processing with in-flight transfers while the link still applies exact
//! queueing/backpressure. [`Link::reserve_batch`] additionally amortizes
//! propagation: a batch pays transit for the summed bytes but propagation
//! only once — the simulated equivalent of Kafka's `linger.ms`/`batch.size`
//! producer batching.

use crate::delay::Delay;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Static description of a link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name, used in metric span labels (`net:<name>`).
    pub name: String,
    /// One-way propagation latency model. Note: the paper reports 140–160 ms
    /// as a ping RTT; one-way delivery latency is modelled as RTT/2 (see
    /// [`crate::profiles::transatlantic`]).
    pub latency: Delay,
    /// Minimum bandwidth in bits per second.
    pub bw_min_bps: f64,
    /// Maximum bandwidth in bits per second. Sampled uniformly per transfer.
    pub bw_max_bps: f64,
    /// RNG seed so experiments are reproducible.
    pub seed: u64,
}

impl LinkSpec {
    /// A link with fixed bandwidth and a fixed latency.
    pub fn fixed(name: &str, latency_ms: f64, bw_bps: f64) -> Self {
        Self {
            name: name.to_string(),
            latency: if latency_ms == 0.0 {
                Delay::None
            } else {
                Delay::FixedMs(latency_ms)
            },
            bw_min_bps: bw_bps,
            bw_max_bps: bw_bps,
            seed: 0,
        }
    }

    /// Build the shareable runtime link.
    pub fn build(self) -> Link {
        Link::new(self)
    }

    /// Mean time for a transfer of `bytes` with no contention, in seconds.
    pub fn expected_secs(&self, bytes: u64) -> f64 {
        let bw = (self.bw_min_bps + self.bw_max_bps) / 2.0;
        let transit = if bw > 0.0 {
            (bytes as f64 * 8.0) / bw
        } else {
            0.0
        };
        transit + self.latency.mean_ms() / 1e3
    }
}

/// What one transfer actually cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReceipt {
    /// Time spent waiting for earlier transfers to release the pipe.
    pub queueing: Duration,
    /// Serialization time: bytes ÷ sampled bandwidth.
    pub transit: Duration,
    /// Propagation latency sample.
    pub propagation: Duration,
}

impl TransferReceipt {
    /// Total simulated transfer duration.
    pub fn total(&self) -> Duration {
        self.queueing + self.transit + self.propagation
    }
}

struct LinkState {
    /// FIFO reservation horizon: the instant at which the pipe frees up.
    next_free: Instant,
    rng: StdRng,
    /// Cumulative transit time reserved on the pipe since creation, µs.
    /// (Capacity actually consumed — the link's busy-time integral.)
    busy_us: u64,
    /// Reservations issued since creation (transfers + estimates excluded).
    reservations: u64,
}

/// A non-blocking claim on link capacity: the transfer's place in the FIFO
/// queue and its completion deadline are fixed at [`Link::reserve`] time;
/// the caller decides when (and whether) to block via [`Reservation::wait`].
///
/// Dropping a reservation without waiting does **not** release the reserved
/// capacity — the bytes were committed to the pipe, exactly as a real NIC
/// send queue would have accepted them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reservation {
    /// Time the transfer spends queued behind earlier reservations.
    pub queueing: Duration,
    /// Serialization time: bytes ÷ sampled bandwidth.
    pub transit: Duration,
    /// Propagation latency sample (once per reservation).
    pub propagation: Duration,
    /// Wall-clock instant at which the transfer completes (delivery).
    deadline: Instant,
}

impl Reservation {
    /// The instant the transfer completes (queueing + transit + propagation
    /// past the reservation call).
    pub fn deadline(&self) -> Instant {
        self.deadline
    }

    /// Whether the simulated transfer has already completed.
    pub fn is_complete(&self) -> bool {
        Instant::now() >= self.deadline
    }

    /// The receipt this reservation resolves to.
    pub fn receipt(&self) -> TransferReceipt {
        TransferReceipt {
            queueing: self.queueing,
            transit: self.transit,
            propagation: self.propagation,
        }
    }

    /// Block until the transfer completes. Work done between `reserve` and
    /// `wait` overlaps with the simulated flight time — only the remainder
    /// is slept off.
    pub fn wait(self) -> TransferReceipt {
        let now = Instant::now();
        if self.deadline > now {
            std::thread::sleep(self.deadline - now);
        }
        self.receipt()
    }
}

/// # Example
///
/// ```
/// use pilot_netsim::profiles;
///
/// // The paper's measured transatlantic path: 70-80 ms one-way,
/// // 60-100 Mbit/s.
/// let link = profiles::transatlantic("us->eu", 7).build();
/// let receipt = link.transfer(250_000); // one 250 KB message
/// assert!(receipt.propagation.as_millis() >= 70);
/// assert!(receipt.transit.as_millis() >= 20); // >= 2 Mbit / 100 Mbit/s
/// ```
/// A shared, thread-safe simulated link. Clone handles freely.
#[derive(Clone)]
pub struct Link {
    spec: Arc<LinkSpec>,
    state: Arc<Mutex<LinkState>>,
}

impl Link {
    /// Create a link from its spec.
    pub fn new(spec: LinkSpec) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
        Self {
            spec: Arc::new(spec),
            state: Arc::new(Mutex::new(LinkState {
                next_free: Instant::now(),
                rng,
                busy_us: 0,
                reservations: 0,
            })),
        }
    }

    /// A zero-cost loopback link (no latency, effectively infinite bandwidth).
    pub fn loopback() -> Self {
        Link::new(LinkSpec {
            name: "loopback".to_string(),
            latency: Delay::None,
            bw_min_bps: f64::INFINITY,
            bw_max_bps: f64::INFINITY,
            seed: 0,
        })
    }

    /// The link's spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// The link's name (used in metric labels).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Compute the cost of transferring `bytes` **without** blocking or
    /// reserving capacity. Queueing is reported as zero.
    pub fn estimate(&self, bytes: u64) -> TransferReceipt {
        let mut st = self.state.lock();
        let (transit, propagation) = self.sample_costs(bytes, &mut st.rng);
        TransferReceipt {
            queueing: Duration::ZERO,
            transit,
            propagation,
        }
    }

    fn sample_costs(&self, bytes: u64, rng: &mut StdRng) -> (Duration, Duration) {
        let bw = if self.spec.bw_max_bps <= self.spec.bw_min_bps {
            self.spec.bw_min_bps
        } else {
            rng.random_range(self.spec.bw_min_bps..=self.spec.bw_max_bps)
        };
        let transit = if bw.is_finite() && bw > 0.0 {
            Duration::from_secs_f64(bytes as f64 * 8.0 / bw)
        } else {
            Duration::ZERO
        };
        let propagation = self.spec.latency.sample(rng);
        (transit, propagation)
    }

    /// Reserve capacity for `bytes` without blocking. The transfer's FIFO
    /// position is claimed now (later reservations queue behind it); the
    /// returned [`Reservation`] carries the completion deadline. One
    /// bandwidth sample and one propagation sample are drawn, in the same
    /// order as [`Link::transfer`], so a `reserve` + `wait` pair is
    /// schedule-identical to a blocking transfer.
    pub fn reserve(&self, bytes: u64) -> Reservation {
        let now = Instant::now();
        let mut st = self.state.lock();
        let (transit, propagation) = self.sample_costs(bytes, &mut st.rng);
        // FIFO reservation of the pipe: transit consumes capacity,
        // propagation does not.
        let start = st.next_free.max(now);
        st.next_free = start + transit;
        st.busy_us += transit.as_micros() as u64;
        st.reservations += 1;
        Reservation {
            queueing: start.duration_since(now),
            transit,
            propagation,
            deadline: start + transit + propagation,
        }
    }

    /// Reserve capacity for a batch of messages shipped back-to-back: one
    /// bandwidth sample, transit charged for the **summed** bytes, and
    /// propagation charged **once** for the whole batch (the messages share
    /// the wire like one framed send, which is how producer batching
    /// amortizes WAN latency). A one-element batch draws the same RNG
    /// samples as [`Link::reserve`] of that size.
    pub fn reserve_batch(&self, sizes: &[u64]) -> Reservation {
        let total: u64 = sizes.iter().sum();
        self.reserve(total)
    }

    /// Transfer `bytes` over the link, blocking the calling thread for the
    /// simulated duration (queueing + transit + propagation). Returns a
    /// receipt describing the cost components. Equivalent to
    /// `reserve(bytes).wait()`.
    pub fn transfer(&self, bytes: u64) -> TransferReceipt {
        self.reserve(bytes).wait()
    }

    /// Observed one-way latency for a zero-byte probe (an `iPerf`-style
    /// measurement helper used by the `netperf` harness binary).
    pub fn probe_latency(&self) -> Duration {
        self.transfer(0).propagation
    }

    /// Remaining depth of the FIFO reservation queue in microseconds: how
    /// far ahead of *now* the pipe is already committed (0 when idle).
    /// This is the telemetry gauge for "how backed up is the WAN".
    pub fn pending_us(&self) -> u64 {
        let next_free = self.state.lock().next_free;
        next_free
            .saturating_duration_since(Instant::now())
            .as_micros() as u64
    }

    /// Cumulative transit time reserved on the pipe since creation, in
    /// microseconds — the busy-time integral a sampler differentiates into
    /// link utilization.
    pub fn busy_us(&self) -> u64 {
        self.state.lock().busy_us
    }

    /// Number of reservations issued since creation (blocking transfers
    /// included; estimates excluded).
    pub fn reservations(&self) -> u64 {
        self.state.lock().reservations
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link").field("spec", &*self.spec).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_free() {
        let l = Link::loopback();
        let r = l.transfer(1 << 20);
        assert_eq!(r.total(), Duration::ZERO);
    }

    #[test]
    fn transit_matches_bandwidth() {
        // 1 MB over 80 Mbit/s = 0.1 s.
        let l = LinkSpec::fixed("t", 0.0, 80e6).build();
        let start = Instant::now();
        let r = l.transfer(1_000_000);
        let wall = start.elapsed();
        assert!((r.transit.as_secs_f64() - 0.1).abs() < 1e-6);
        assert!(wall.as_secs_f64() >= 0.099, "wall={wall:?}");
    }

    #[test]
    fn propagation_added_once() {
        let l = LinkSpec::fixed("t", 50.0, f64::INFINITY).build();
        let r = l.transfer(1_000);
        assert!((r.propagation.as_secs_f64() - 0.05).abs() < 1e-9);
        assert_eq!(r.transit, Duration::ZERO);
    }

    #[test]
    fn concurrent_transfers_queue_fifo() {
        // Two concurrent 0.05 s transfers on a shared pipe: combined wall
        // time must be ~0.1 s because transit serialises.
        let l = LinkSpec::fixed("t", 0.0, 160e6).build(); // 1 MB = 0.05 s
        let l2 = l.clone();
        let start = Instant::now();
        let h = std::thread::spawn(move || l2.transfer(1_000_000));
        let r1 = l.transfer(1_000_000);
        let r2 = h.join().unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert!(wall >= 0.095, "wall={wall}");
        // One of the two must have queued behind the other.
        let queued = r1.queueing.max(r2.queueing);
        assert!(queued.as_secs_f64() > 0.03, "queued={queued:?}");
    }

    #[test]
    fn bandwidth_sampled_within_range() {
        let l = LinkSpec {
            name: "wan".into(),
            latency: Delay::None,
            bw_min_bps: 60e6,
            bw_max_bps: 100e6,
            seed: 11,
        }
        .build();
        for _ in 0..50 {
            let r = l.estimate(1_000_000);
            let bps = 8e6 / r.transit.as_secs_f64();
            assert!((59.9e6..=100.1e6).contains(&bps), "bps={bps}");
        }
    }

    #[test]
    fn estimate_does_not_reserve_capacity() {
        let l = LinkSpec::fixed("t", 0.0, 8e6).build(); // 1 B = 1 µs
        for _ in 0..100 {
            l.estimate(1_000_000);
        }
        // After many estimates, a real transfer still has no queueing.
        let r = l.transfer(1_000);
        assert_eq!(r.queueing, Duration::ZERO);
    }

    #[test]
    fn expected_secs_combines_components() {
        let spec = LinkSpec {
            name: "wan".into(),
            latency: Delay::FixedMs(75.0),
            bw_min_bps: 60e6,
            bw_max_bps: 100e6,
            seed: 0,
        };
        // 1 MB at mean 80 Mbit/s = 0.1 s + 0.075 s latency.
        assert!((spec.expected_secs(1_000_000) - 0.175).abs() < 1e-9);
    }

    #[test]
    fn reserve_matches_transfer_schedule() {
        // A seeded link driven by reserve+wait must produce the exact same
        // receipts as the same link driven by blocking transfers.
        let mk = || {
            LinkSpec {
                name: "wan".into(),
                latency: Delay::UniformMs {
                    min_ms: 1.0,
                    max_ms: 2.0,
                },
                bw_min_bps: 4e9,
                bw_max_bps: 8e9,
                seed: 99,
            }
            .build()
        };
        let (a, b) = (mk(), mk());
        for _ in 0..5 {
            let via_reserve = a.reserve(100_000).wait();
            let via_transfer = b.transfer(100_000);
            assert_eq!(via_reserve.transit, via_transfer.transit);
            assert_eq!(via_reserve.propagation, via_transfer.propagation);
        }
    }

    #[test]
    fn reservations_queue_fifo() {
        // Three back-to-back reservations on an idle pipe: each queues
        // behind the previous one's transit, and deadlines are ordered.
        let l = LinkSpec::fixed("t", 0.0, 160e6).build(); // 1 MB = 0.05 s
        let r1 = l.reserve(1_000_000);
        let r2 = l.reserve(1_000_000);
        let r3 = l.reserve(1_000_000);
        assert!(r1.queueing < Duration::from_millis(5));
        assert!(
            r2.queueing >= Duration::from_millis(45),
            "{:?}",
            r2.queueing
        );
        assert!(
            r3.queueing >= Duration::from_millis(95),
            "{:?}",
            r3.queueing
        );
        assert!(r1.deadline() < r2.deadline() && r2.deadline() < r3.deadline());
        // Waiting out of order still resolves to the FIFO deadlines.
        let t3 = r3.wait();
        assert!(r1.is_complete() && r2.is_complete());
        assert!(t3.queueing >= Duration::from_millis(95));
    }

    #[test]
    fn reserve_overlaps_compute_with_flight() {
        // Work done between reserve and wait is absorbed by the flight
        // time: the wait itself only sleeps the remainder.
        let l = LinkSpec::fixed("t", 40.0, f64::INFINITY).build();
        let r = l.reserve(1_000);
        std::thread::sleep(Duration::from_millis(20)); // overlapped "compute"
        let start = Instant::now();
        r.wait();
        let waited = start.elapsed();
        assert!(waited < Duration::from_millis(35), "waited {waited:?}");
    }

    #[test]
    fn batch_charges_propagation_once() {
        let l = LinkSpec::fixed("t", 50.0, 80e6).build();
        // 4 × 1 MB batched: transit for 4 MB, one 50 ms propagation.
        let r = l.reserve_batch(&[1_000_000; 4]);
        assert!((r.transit.as_secs_f64() - 0.4).abs() < 1e-6);
        assert!((r.propagation.as_secs_f64() - 0.05).abs() < 1e-9);
        // Serial equivalent pays propagation four times.
        let serial = LinkSpec::fixed("t", 50.0, 80e6).build();
        let mut total = Duration::ZERO;
        for _ in 0..4 {
            let r = serial.reserve(1_000_000);
            total += r.transit + r.propagation;
        }
        assert!(total > r.transit + r.propagation + Duration::from_millis(100));
    }

    #[test]
    fn seeded_reservations_are_reproducible() {
        // Identical seeds + identical reservation sequences → identical
        // transfer schedules (transit and propagation of every message),
        // whether issued per message or per batch.
        let mk = || {
            LinkSpec {
                name: "wan".into(),
                latency: Delay::UniformMs {
                    min_ms: 70.0,
                    max_ms: 80.0,
                },
                bw_min_bps: 60e6,
                bw_max_bps: 100e6,
                seed: 4242,
            }
            .build()
        };
        let (a, b) = (mk(), mk());
        for i in 0..10 {
            let (ra, rb) = if i % 2 == 0 {
                (a.reserve(1 << 18), b.reserve(1 << 18))
            } else {
                (
                    a.reserve_batch(&[1 << 16; 8]),
                    b.reserve_batch(&[1 << 16; 8]),
                )
            };
            assert_eq!(ra.transit, rb.transit);
            assert_eq!(ra.propagation, rb.propagation);
        }
    }

    #[test]
    fn busy_and_pending_track_reservations() {
        let l = LinkSpec::fixed("t", 0.0, 80e6).build(); // 1 MB = 0.1 s
        assert_eq!(l.busy_us(), 0);
        assert_eq!(l.pending_us(), 0);
        assert_eq!(l.reservations(), 0);
        let _r1 = l.reserve(1_000_000);
        let _r2 = l.reserve(1_000_000);
        assert_eq!(l.reservations(), 2);
        // 2 × 0.1 s of transit accumulated.
        assert!(
            (l.busy_us() as i64 - 200_000).abs() < 100,
            "{}",
            l.busy_us()
        );
        // Pipe committed ~0.2 s ahead of now.
        let pending = l.pending_us();
        assert!((150_000..=200_000).contains(&pending), "{pending}");
        // Pending decays back to zero as simulated time passes; busy does not.
        std::thread::sleep(Duration::from_millis(210));
        assert_eq!(l.pending_us(), 0);
        assert!(l.busy_us() >= 199_000);
    }

    #[test]
    fn estimates_do_not_count_as_reservations() {
        let l = LinkSpec::fixed("t", 0.0, 8e6).build();
        l.estimate(1_000_000);
        assert_eq!(l.reservations(), 0);
        assert_eq!(l.busy_us(), 0);
    }

    #[test]
    fn seeded_links_are_reproducible() {
        let mk = || {
            LinkSpec {
                name: "wan".into(),
                latency: Delay::UniformMs {
                    min_ms: 70.0,
                    max_ms: 80.0,
                },
                bw_min_bps: 60e6,
                bw_max_bps: 100e6,
                seed: 1234,
            }
            .build()
        };
        let a = mk();
        let b = mk();
        for _ in 0..10 {
            assert_eq!(a.estimate(1 << 16), b.estimate(1 << 16));
        }
    }
}
