//! Link failure injection.
//!
//! The paper motivates adaptation with "failures and other external
//! events" and "resource failures" (Section I). [`FlakyLink`] wraps a
//! [`Link`] with scheduled outage windows: transfers attempted during an
//! outage block until the link recovers (modelling TCP retransmission
//! riding out a routing flap) and the extra stall is reported in the
//! receipt's `queueing` component, so outages show up in pipeline latency
//! exactly where a real WAN blip would.

use crate::link::{Link, TransferReceipt};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// An outage window relative to the link's creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Outage start, relative to [`FlakyLink::new`].
    pub start: Duration,
    /// Outage length.
    pub len: Duration,
}

/// A link with scheduled outages.
pub struct FlakyLink {
    inner: Link,
    epoch: Instant,
    outages: Mutex<Vec<Outage>>,
}

impl FlakyLink {
    /// Wrap `link` with the given outage schedule.
    pub fn new(link: Link, outages: Vec<Outage>) -> Self {
        Self {
            inner: link,
            epoch: Instant::now(),
            outages: Mutex::new(outages),
        }
    }

    /// The wrapped link.
    pub fn inner(&self) -> &Link {
        &self.inner
    }

    /// Is the link down right now?
    pub fn is_down(&self) -> bool {
        self.remaining_outage().is_some()
    }

    /// If currently in an outage, how long until it ends?
    fn remaining_outage(&self) -> Option<Duration> {
        let now = self.epoch.elapsed();
        self.outages
            .lock()
            .iter()
            .find(|o| now >= o.start && now < o.start + o.len)
            .map(|o| o.start + o.len - now)
    }

    /// Inject an additional outage starting now.
    pub fn fail_for(&self, len: Duration) {
        self.outages.lock().push(Outage {
            start: self.epoch.elapsed(),
            len,
        });
    }

    /// Transfer, stalling through any outage first. The stall is added to
    /// the receipt's queueing time.
    pub fn transfer(&self, bytes: u64) -> TransferReceipt {
        let mut stalled = Duration::ZERO;
        while let Some(rest) = self.remaining_outage() {
            std::thread::sleep(rest.min(Duration::from_millis(20)));
            stalled += rest.min(Duration::from_millis(20));
        }
        let receipt = self.inner.transfer(bytes);
        TransferReceipt {
            queueing: receipt.queueing + stalled,
            transit: receipt.transit,
            propagation: receipt.propagation,
        }
    }
}

impl std::fmt::Debug for FlakyLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyLink")
            .field("link", &self.inner)
            .field("down", &self.is_down())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    #[test]
    fn no_outages_is_transparent() {
        let flaky = FlakyLink::new(LinkSpec::fixed("l", 0.0, 8e9).build(), vec![]);
        let r = flaky.transfer(1_000);
        assert!(r.queueing < Duration::from_millis(1));
        assert!(!flaky.is_down());
    }

    #[test]
    fn transfer_stalls_through_outage() {
        let flaky = FlakyLink::new(
            LinkSpec::fixed("l", 0.0, f64::INFINITY).build(),
            vec![Outage {
                start: Duration::ZERO,
                len: Duration::from_millis(80),
            }],
        );
        assert!(flaky.is_down());
        let t0 = Instant::now();
        let r = flaky.transfer(100);
        let wall = t0.elapsed();
        assert!(wall >= Duration::from_millis(70), "wall={wall:?}");
        assert!(r.queueing >= Duration::from_millis(60), "{r:?}");
        assert!(!flaky.is_down());
    }

    #[test]
    fn transfer_after_outage_window_is_clean() {
        let flaky = FlakyLink::new(
            LinkSpec::fixed("l", 0.0, f64::INFINITY).build(),
            vec![Outage {
                start: Duration::ZERO,
                len: Duration::from_millis(30),
            }],
        );
        std::thread::sleep(Duration::from_millis(40));
        let r = flaky.transfer(100);
        assert!(r.queueing < Duration::from_millis(5));
    }

    #[test]
    fn fail_for_injects_immediately() {
        let flaky = FlakyLink::new(LinkSpec::fixed("l", 0.0, f64::INFINITY).build(), vec![]);
        assert!(!flaky.is_down());
        flaky.fail_for(Duration::from_millis(50));
        assert!(flaky.is_down());
        let t0 = Instant::now();
        flaky.transfer(10);
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn concurrent_transfers_all_survive_outage() {
        let flaky = std::sync::Arc::new(FlakyLink::new(
            LinkSpec::fixed("l", 0.0, f64::INFINITY).build(),
            vec![Outage {
                start: Duration::ZERO,
                len: Duration::from_millis(50),
            }],
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = std::sync::Arc::clone(&flaky);
                std::thread::spawn(move || f.transfer(100))
            })
            .collect();
        for h in handles {
            let r = h.join().unwrap();
            assert!(r.queueing >= Duration::from_millis(20));
        }
    }
}
