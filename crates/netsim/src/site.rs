//! Sites: named locations along the continuum.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque site identifier within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub(crate) u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// The continuum tier a site belongs to. The paper's framework is "currently
/// limited to two layers: edge and cloud"; `Fog` and `Hpc` implement the
/// generalisation listed as future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// IoT / sensor-adjacent devices (RasPi class).
    Edge,
    /// Intermediate aggregation layer.
    Fog,
    /// Cloud data centre (LRZ / Jetstream class).
    Cloud,
    /// HPC centre reachable through a batch queue.
    Hpc,
}

impl Tier {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Edge => "edge",
            Tier::Fog => "fog",
            Tier::Cloud => "cloud",
            Tier::Hpc => "hpc",
        }
    }
}

/// A named site on the continuum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    pub name: String,
    pub tier: Tier,
    /// Free-text region, e.g. "us-east" or "eu-de".
    pub region: String,
}

impl Site {
    /// Construct a site.
    pub fn new(name: &str, tier: Tier, region: &str) -> Self {
        Self {
            name: name.to_string(),
            tier,
            region: region.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels() {
        assert_eq!(Tier::Edge.label(), "edge");
        assert_eq!(Tier::Cloud.label(), "cloud");
    }

    #[test]
    fn site_construction() {
        let s = Site::new("lrz", Tier::Cloud, "eu-de");
        assert_eq!(s.name, "lrz");
        assert_eq!(s.tier, Tier::Cloud);
    }

    #[test]
    fn site_id_display() {
        assert_eq!(SiteId(3).to_string(), "site#3");
    }
}
