//! The end-of-stream sentinel protocol — the one place that defines what a
//! sentinel is and who has seen one.
//!
//! Each producer appends an empty record after its stream ends
//! ([`append_sentinel`]); a partition is complete once its sentinel is
//! consumed ([`SentinelTracker::mark_done`]); the run is complete when
//! every partition is ([`SentinelTracker::all_done`]).

use super::Shared;
use bytes::Bytes;
use parking_lot::Mutex;
use pilot_broker::Record;
use std::collections::HashSet;

/// Whether a record is the end-of-stream sentinel (an empty payload).
pub(crate) fn is_sentinel(record: &Record) -> bool {
    record.value.is_empty()
}

/// Append the end-of-stream sentinel to `partition`.
pub(crate) fn append_sentinel(shared: &Shared, partition: usize) -> Result<(), String> {
    shared
        .broker
        .append(&shared.topic, partition, Record::new(Bytes::new()))
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Which partitions have had their sentinel consumed. Marking is
/// idempotent — a sentinel redelivered across a rebalance is harmless.
pub(crate) struct SentinelTracker {
    done: Mutex<HashSet<usize>>,
    total: usize,
}

impl SentinelTracker {
    pub(crate) fn new(total: usize) -> Self {
        Self {
            done: Mutex::new(HashSet::new()),
            total,
        }
    }

    /// A partition's sentinel was consumed.
    pub(crate) fn mark_done(&self, p: usize) {
        self.done.lock().insert(p);
    }

    /// Whether this partition's sentinel was consumed.
    pub(crate) fn is_done(&self, p: usize) -> bool {
        self.done.lock().contains(&p)
    }

    /// Whether every partition's sentinel was consumed — run completion.
    pub(crate) fn all_done(&self) -> bool {
        self.done.lock().len() >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_distinct_partitions() {
        let t = SentinelTracker::new(2);
        assert!(!t.all_done());
        t.mark_done(0);
        t.mark_done(0); // idempotent
        assert!(t.is_done(0));
        assert!(!t.is_done(1));
        assert!(!t.all_done());
        t.mark_done(1);
        assert!(t.all_done());
    }

    #[test]
    fn sentinel_is_the_empty_record() {
        assert!(is_sentinel(&Record::new(Bytes::new())));
        assert!(!is_sentinel(&Record::new(Bytes::from_static(b"x"))));
    }
}
