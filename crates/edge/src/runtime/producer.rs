//! The producer stage: per-device producing state and the deadline-queue
//! engine that drives it.
//!
//! There is exactly one producer implementation. A [`DeviceProducer`] holds
//! everything that defines a device's stream — message identity, the encode
//! scratch, the batching state, the pacing schedule, the sentinel — and a
//! [`ProducerEngine`] schedules devices by their next send deadline across
//! one or more [`ProducerWorker`] stages:
//!
//! * **Dedicated** (the default): one worker task per device, each driving
//!   a degenerate one-device engine — the thread-per-device behaviour of
//!   the seed, bit-identical message sets included.
//! * **Multiplexed** (`producer_threads = Some(k)`): all devices share one
//!   engine and `k` worker tasks — the fan-in scale-out, where a
//!   1024-device cell needs `k` edge cores instead of 1024.
//!
//! Per-device FIFO ordering holds in both shapes because a device is owned
//! by exactly one worker while popped.

use super::batch::{Batcher, PendingMsg};
use super::config::ProducerEngineKind;
use super::sentinel;
use super::spans::metric_msg_id;
use super::stage::{Stage, StepOutcome};
use super::{ProducerFns, Shared};
use parking_lot::{Condvar, Mutex};
use pilot_broker::Record;
use pilot_metrics::{Component, Gauge};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The complete producing state of one edge device, stepped one message at
/// a time. Message identity (the per-device `msg_id` sequence), the
/// long-lived encode scratch, the batching double-buffer, and the sentinel
/// all live here — so any driver produces byte-identical per-device
/// message sets.
pub(crate) struct DeviceProducer {
    device: usize,
    produce: crate::faas::ProduceFn,
    edge_fn: Option<crate::faas::EdgeFn>,
    sent: u64,
    // One long-lived encode scratch per producer: every message encodes
    // through it (`encode_with_into`), the producer-side mirror of the
    // consumer's decode scratch — steady state allocates nothing.
    enc_scratch: bytes::BytesMut,
    batcher: Batcher,
    /// Pacing schedule origin: message `n` is due at `epoch + interval × n`
    /// (the ideal-schedule pacing of `pilot_datagen::RateLimiter`).
    epoch: Instant,
    interval: Option<Duration>,
}

impl DeviceProducer {
    /// Build a device's state. The pacing epoch is *now*, so construct
    /// inside the driving task when the schedule should start at task
    /// start (the dedicated engine does).
    pub(crate) fn new(shared: &Shared, device: usize, fns: &ProducerFns) -> Box<Self> {
        let ctx = &shared.ctx;
        let rate = shared.producer.rate_per_device;
        let interval =
            (rate.is_finite() && rate > 0.0).then(|| Duration::from_secs_f64(1.0 / rate));
        Box::new(Self {
            device,
            produce: (fns.produce)(ctx, device),
            edge_fn: shared
                .producer
                .mode
                .edge_processing()
                .then(|| (fns.edge)(ctx, device)),
            sent: 0,
            enc_scratch: bytes::BytesMut::new(),
            batcher: Batcher::new(device),
            epoch: Instant::now(),
            interval,
        })
    }

    /// When this device's next message may be emitted — the engine's
    /// deadline key. Unthrottled devices are always due.
    fn next_due(&self) -> Instant {
        match self.interval {
            Some(iv) => self.epoch + iv * self.sent as u32,
            None => self.epoch,
        }
    }

    /// Produce, (optionally) edge-process, encode, and ship one message.
    /// `Ok(false)` means the device's stream ended.
    fn step(&mut self, shared: &Shared) -> Result<bool, String> {
        let ctx = &shared.ctx;
        let spans = shared.spans();
        let t0 = spans.now_us();
        let Some(mut block) = (self.produce)(ctx) else {
            return Ok(false);
        };
        // The framework owns message identity ("a unique job identifier
        // ensures that progress and errors can be consistently tracked"):
        // a per-device sequence replaces whatever the produce function set,
        // so duplicate user-assigned ids cannot corrupt metric linking.
        block.msg_id = self.sent;
        let mid = metric_msg_id(self.device, block.msg_id);
        // Edge processing (hybrid / edge-centric deployments).
        let block = match self.edge_fn.as_mut() {
            Some(f) => {
                let e0 = spans.now_us();
                let out = f(ctx, block)?;
                spans.record(mid, Component::EdgeProcessor, e0, spans.now_us(), 0);
                out
            }
            None => block,
        };
        let payload = pilot_datagen::encode_with_into(
            shared.transport.codec,
            &block,
            t0,
            &mut self.enc_scratch,
        );
        let bytes = payload.len() as u64;
        spans.record(mid, Component::EdgeProducer, t0, spans.now_us(), bytes);
        // Live knob: the batch threshold is re-read per message, so a
        // controller can widen/narrow/disable batching mid-stream.
        if shared.tune.batch_max_bytes() > 0 {
            // Pipelined path: accumulate; the batcher ships when full or
            // when the linger window closes.
            self.batcher.push(shared, PendingMsg { payload, mid, t0 })?;
        } else {
            // Batching was just turned off live: ship what accumulated
            // first so no message trails the ones sent serially below.
            if !self.batcher.is_idle() {
                self.batcher.drain(shared)?;
            }
            // Serial path (the default): every message pays its own
            // blocking edge → broker transfer.
            let n0 = spans.now_us();
            shared.link_edge_broker.transfer(bytes);
            spans.record(
                mid,
                Component::Network(shared.link_edge_broker.name().to_string()),
                n0,
                spans.now_us(),
                bytes,
            );
            // Broker append (service time).
            let b0 = spans.now_us();
            shared
                .broker
                .append(
                    &shared.topic,
                    self.device,
                    Record::new(payload).with_timestamp(t0),
                )
                .map_err(|e| e.to_string())?;
            spans.record(mid, Component::Broker, b0, spans.now_us(), bytes);
        }
        self.sent += 1;
        Ok(true)
    }

    /// Drain the batcher (everything accumulated or in flight must land in
    /// the partition first) and append the end-of-stream sentinel.
    fn finish(&mut self, shared: &Shared) -> Result<(), String> {
        self.batcher.drain(shared)?;
        sentinel::append_sentinel(shared, self.device)
    }
}

/// Devices parked until their next send deadline, ordered by `(due, seq)`.
/// The plain `BTreeMap` tuple-key ordering replaces the hand-written
/// `Ord`/`PartialOrd`/`Eq` boilerplate of the former `DueEntry` binary
/// heap; `seq` is a monotonic requeue counter that makes keys unique and
/// round-robins simultaneously-due devices fairly instead of starving one.
struct DueQueue {
    due: BTreeMap<(Instant, u64), Box<DeviceProducer>>,
    next_seq: u64,
}

/// What [`ProducerEngine::try_pop`] yielded.
enum Popped {
    /// The earliest-due device, owned by the caller until re-pushed or
    /// finished.
    Device(Box<DeviceProducer>),
    /// Nothing due (or every device held by another worker); try again.
    Idle,
    /// Every device has finished — workers may exit.
    Done,
}

/// The deadline-queue scheduler shared by a producer worker pool: every
/// device's [`DeviceProducer`] sits in a queue keyed by its next send
/// time; workers pop the earliest-due device, step it one message, and
/// requeue it.
pub(crate) struct ProducerEngine {
    q: Mutex<DueQueue>,
    work: Condvar,
    /// Devices whose sentinel has not been appended yet.
    active: AtomicUsize,
    /// Telemetry: devices currently parked in the queue. Dedicated engines
    /// all share one handle, so per-engine adds and subs sum into the
    /// cell-wide depth. `None` (telemetry off) costs one null check.
    depth: Option<Arc<Gauge>>,
}

impl ProducerEngine {
    pub(crate) fn new(devices: usize, depth: Option<Arc<Gauge>>) -> Self {
        Self {
            q: Mutex::new(DueQueue {
                due: BTreeMap::new(),
                next_seq: 0,
            }),
            work: Condvar::new(),
            active: AtomicUsize::new(devices),
            depth,
        }
    }

    /// (Re)queue a device at its next deadline and wake waiting workers.
    pub(crate) fn push(&self, state: Box<DeviceProducer>) {
        let mut q = self.q.lock();
        let seq = q.next_seq;
        q.next_seq += 1;
        q.due.insert((state.next_due(), seq), state);
        drop(q);
        if let Some(g) = &self.depth {
            g.incr();
        }
        self.work.notify_all();
    }

    /// A device appended its sentinel (or failed terminally).
    fn device_finished(&self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last device done: wake idle workers so they can exit.
            self.work.notify_all();
        }
    }

    /// Pop the earliest-due device, or report why none came out. Blocks
    /// briefly (bounded condvar waits) so workers neither spin nor miss a
    /// stop: an empty queue waits for a requeue, a not-yet-due head waits
    /// until its deadline, and `stopping` pops regardless of deadlines so
    /// the caller can drain the device.
    fn try_pop(&self, stopping: bool) -> Popped {
        let mut q = self.q.lock();
        if self.active.load(Ordering::Acquire) == 0 {
            return Popped::Done;
        }
        match q.due.first_key_value() {
            // Every unfinished device is held by another worker: wait for
            // a requeue (bounded, so stop/finish without a notify are
            // still observed).
            None => {
                self.work.wait_for(&mut q, Duration::from_millis(10));
                Popped::Idle
            }
            Some((&(due, _), _)) => {
                let now = Instant::now();
                if stopping || due <= now {
                    let (_, state) = q.due.pop_first().expect("peeked entry");
                    if let Some(g) = &self.depth {
                        g.decr();
                    }
                    Popped::Device(state)
                } else {
                    // Sleep until the earliest deadline; a push with an
                    // earlier one notifies and we re-peek.
                    self.work.wait_for(&mut q, due - now);
                    Popped::Idle
                }
            }
        }
    }
}

/// One worker [`Stage`] of a producer engine: pop the earliest-due device,
/// step it one message, requeue it. Progress is counted per stepped
/// message, so the task's payload equals the messages this worker sent.
pub(crate) struct ProducerWorker {
    shared: Arc<Shared>,
    engine: Arc<ProducerEngine>,
}

impl ProducerWorker {
    pub(crate) fn new(shared: Arc<Shared>, engine: Arc<ProducerEngine>) -> Self {
        Self { shared, engine }
    }

    /// Finish a popped device (flush + sentinel) and retire it from the
    /// engine, surfacing the finish error after the retirement so other
    /// workers never hang on the active count.
    fn retire(&self, state: &mut DeviceProducer) -> Result<(), String> {
        let res = state.finish(&self.shared);
        self.engine.device_finished();
        res
    }
}

impl Stage for ProducerWorker {
    fn step(&mut self) -> Result<StepOutcome, String> {
        match self.engine.try_pop(self.shared.stopping()) {
            Popped::Done => Ok(StepOutcome::Finished),
            Popped::Idle => Ok(StepOutcome::Idle),
            Popped::Device(mut state) => {
                if self.shared.stopping() {
                    // Raced with a stop after the pop: drain, don't step.
                    self.retire(&mut state)?;
                    return Ok(StepOutcome::Progress(0));
                }
                match state.step(&self.shared) {
                    Ok(true) => {
                        self.engine.push(state);
                        Ok(StepOutcome::Progress(1))
                    }
                    Ok(false) => {
                        self.retire(&mut state)?;
                        Ok(StepOutcome::Progress(0))
                    }
                    Err(e) => {
                        // A failed device fails the run; retire it first so
                        // the other workers can exit.
                        self.engine.device_finished();
                        Err(e)
                    }
                }
            }
        }
    }

    /// On stop (cooperative cancel) the queue still holds unfinished
    /// devices: drain every one — flush its batches, append its sentinel —
    /// exactly like the threaded seed path, so consumers terminate instead
    /// of waiting for sentinels that would never come.
    fn drain(&mut self) -> Result<(), String> {
        loop {
            match self.engine.try_pop(true) {
                Popped::Done => return Ok(()),
                // Devices held by other workers; wait for them to retire.
                Popped::Idle => continue,
                Popped::Device(mut state) => self.retire(&mut state)?,
            }
        }
    }

    fn abort(&mut self) {}
}

/// Spawn the producer stage: one worker task per device (dedicated), or
/// `workers` tasks sharing one engine (multiplexed). Returns the task
/// futures in spawn order.
pub(crate) fn spawn_producers(
    client: &pilot_dataflow::Client,
    shared: &Arc<Shared>,
    fns: &Arc<ProducerFns>,
) -> Result<Vec<pilot_dataflow::TaskFuture>, pilot_dataflow::TaskError> {
    let mut producers = Vec::new();
    // Telemetry: one shared depth gauge across every engine of this
    // pipeline (a dedicated engine per device still sums correctly).
    let depth = shared
        .stage_gauges()
        .map(|g| Arc::clone(&g.producer_queue_depth));
    match shared.producer.engine {
        ProducerEngineKind::Multiplexed { workers } => {
            // All devices enter one deadline queue up front (their pacing
            // epoch is engine creation) shared by `workers` worker tasks.
            let engine = Arc::new(ProducerEngine::new(shared.producer.devices, depth));
            for device in 0..shared.producer.devices {
                engine.push(DeviceProducer::new(shared, device, fns));
            }
            for w in 0..workers {
                let engine2 = Arc::clone(&engine);
                let fut = super::stage::spawn(
                    client,
                    &format!("produce-mux-{w}"),
                    Arc::clone(shared),
                    None,
                    move |shared| Ok(Box::new(ProducerWorker::new(Arc::clone(shared), engine2))),
                )?;
                producers.push(fut);
            }
        }
        ProducerEngineKind::Dedicated => {
            // One task per device, each driving a degenerate one-device
            // engine built *inside* the task so the pacing epoch starts at
            // task start (the seed's thread-per-device schedule).
            producers.reserve(shared.producer.devices);
            for device in 0..shared.producer.devices {
                let fns2 = Arc::clone(fns);
                let depth2 = depth.clone();
                let fut = super::stage::spawn(
                    client,
                    &format!("produce-edge-{device}"),
                    Arc::clone(shared),
                    None,
                    move |shared| {
                        let engine = Arc::new(ProducerEngine::new(1, depth2));
                        engine.push(DeviceProducer::new(shared, device, &fns2));
                        Ok(Box::new(ProducerWorker::new(Arc::clone(shared), engine)))
                    },
                )?;
                producers.push(fut);
            }
        }
    }
    Ok(producers)
}
