//! Metric identity and hot-path counters — the one place that knows how a
//! message's span chain is keyed.
//!
//! Every component span of a message is recorded under
//! `(job_id, metric_msg_id(device, msg_id))`; stages obtain a job-bound
//! [`pilot_metrics::JobSpans`] recorder via `Shared::spans()` so the job id
//! cannot diverge between components.

use crate::faas::Context;
use std::sync::Arc;

/// Device ids are packed into the high bits of the metric msg id so message
/// ids are unique across devices while the wire format stays unchanged.
pub(crate) const DEVICE_SHIFT: u32 = 40;

/// The metric key of one message: device in the high bits, per-device
/// sequence in the low bits.
pub(crate) fn metric_msg_id(device: usize, block_msg_id: u64) -> u64 {
    ((device as u64) << DEVICE_SHIFT) | (block_msg_id & ((1 << DEVICE_SHIFT) - 1))
}

/// Hot-path counters resolved once per consumer stage. `ctx.counter(name)`
/// takes the registry's counter-map lock and hashes the name; at ~1M
/// messages per run that lookup is pure overhead, so the stage caches the
/// `Arc<Counter>` handles up front and bumps them lock-free per message.
pub(crate) struct HotCounters {
    pub(crate) messages_processed: Arc<pilot_metrics::Counter>,
    pub(crate) process_errors: Arc<pilot_metrics::Counter>,
    pub(crate) decode_errors: Arc<pilot_metrics::Counter>,
}

impl HotCounters {
    pub(crate) fn new(ctx: &Context) -> Self {
        Self {
            messages_processed: ctx.counter("messages_processed"),
            process_errors: ctx.counter("process_errors"),
            decode_errors: ctx.counter("decode_errors"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_msg_ids_unique_across_devices() {
        assert_ne!(metric_msg_id(0, 5), metric_msg_id(1, 5));
        assert_eq!(metric_msg_id(0, 5), 5);
        assert_eq!(metric_msg_id(3, 0) >> DEVICE_SHIFT, 3);
    }
}
