//! The pipeline control surface: [`PipelineCtl`] (what monitor threads
//! observe and adapt) and [`RunningPipeline`] (what applications hold).
//!
//! Shutdown paths all converge on the stage lifecycle: `wait()` lets every
//! stage finish and drain; `abort()` raises `stop_all` so stages drain at
//! their next step boundary; and *dropping* a mid-run pipeline now aborts
//! and joins everything with a bounded grace period, so a dropped handle
//! cannot leak producer, consumer, or prefetch threads.

use super::consumer::ConsumerStage;
use super::reactor::ReactorConsumerStage;
use super::{stage, Shared};
use crate::faas::{CloudFactory, Context};
use crate::pipeline::PipelineError;
use crate::summary::RunSummary;
use parking_lot::Mutex;
use pilot_dataflow::{Client, ReactorHandle, TaskFuture, TaskState};
use pilot_metrics::{PipelineReport, TelemetryFrame, TelemetrySampler};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a consumer member runs: its own cloud task (thread-backed, the
/// default) or the shared reactor (`reactor_threads = Some(k)`). The
/// control plane treats both uniformly through this handle.
pub(crate) enum ConsumerHandle {
    Task(TaskFuture),
    Reactor(ReactorHandle),
}

impl ConsumerHandle {
    fn is_finished(&self) -> bool {
        match self {
            Self::Task(f) => f.is_finished(),
            Self::Reactor(h) => h.is_finished(),
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), String>> {
        match self {
            Self::Task(f) => f
                .wait_timeout(timeout)
                .map(|r| r.map(|_| ()).map_err(|e| e.to_string())),
            Self::Reactor(h) => h.wait_timeout(timeout).map(|r| r.map(|_| ())),
        }
    }

    /// Scheduler state of the backing cloud task. `None` for reactor
    /// members: they are driven by dedicated reactor threads, so the
    /// starvation eviction that watches for never-scheduled tasks does
    /// not apply.
    fn task_state(&self) -> Option<TaskState> {
        match self {
            Self::Task(f) => f.state(),
            Self::Reactor(_) => None,
        }
    }
}

/// The shared control surface of a running pipeline: everything a monitor
/// thread (e.g. the [`crate::adapt::AutoScaler`]) needs to observe and
/// adapt it. Internal — applications hold a [`RunningPipeline`].
pub(crate) struct PipelineCtl {
    pub(crate) shared: Arc<Shared>,
    consumers: Mutex<Vec<(String, Arc<AtomicBool>, ConsumerHandle)>>,
    retired: Mutex<Vec<ConsumerHandle>>,
    cloud_client: Client,
    next_member: AtomicUsize,
    /// The telemetry sampler thread, when `telemetry_sample_ms` is set.
    /// Stopped explicitly at the end of `wait()` (so the final frame sees
    /// the drained gauge levels) and implicitly by its own `Drop`.
    telemetry: Option<TelemetrySampler>,
}

impl PipelineCtl {
    pub(crate) fn new(
        shared: Arc<Shared>,
        cloud_client: Client,
        telemetry: Option<TelemetrySampler>,
    ) -> Self {
        Self {
            shared,
            consumers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            cloud_client,
            next_member: AtomicUsize::new(0),
            telemetry,
        }
    }

    /// Register the next consumer member with the coordinator *before* its
    /// task runs, so partition assignment is stable from the first poll
    /// (no startup rebalance churn).
    pub(crate) fn join_member(&self) -> String {
        let member = format!(
            "processor-{}",
            self.next_member.fetch_add(1, Ordering::Relaxed)
        );
        self.shared.coordinator.join(&member);
        member
    }

    /// Register `n` members in **one** coordinator rebalance (the batch
    /// variant of [`PipelineCtl::join_member`] — O(n) instead of O(n²)
    /// at startup).
    pub(crate) fn join_members(&self, n: usize) -> Vec<String> {
        let members: Vec<String> = (0..n)
            .map(|_| {
                format!(
                    "processor-{}",
                    self.next_member.fetch_add(1, Ordering::Relaxed)
                )
            })
            .collect();
        self.shared.coordinator.join_many(&members);
        members
    }

    fn spawn_consumer(&self) -> Result<(), PipelineError> {
        let member = self.join_member();
        self.spawn_joined_consumer(member)
    }

    /// Start the consumer for an already-joined member: a reactor task
    /// when the event-driven core is on, a dedicated cloud task otherwise.
    /// With the reactor on, `prefetch_depth` is subsumed — the reactor
    /// stage's deadline-parked link reservations already overlap transfer
    /// with other members' processing, without a prefetch thread.
    pub(crate) fn spawn_joined_consumer(&self, member: String) -> Result<(), PipelineError> {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = match &self.shared.reactor {
            Some(executor) => {
                let stage = ReactorConsumerStage::new(
                    Arc::clone(&self.shared),
                    member.clone(),
                    Arc::clone(&stop),
                )
                .map_err(PipelineError::Task)?;
                ConsumerHandle::Reactor(
                    executor.spawn(&format!("process-cloud-{member}"), Box::new(stage)),
                )
            }
            None => {
                let member2 = member.clone();
                ConsumerHandle::Task(stage::spawn(
                    &self.cloud_client,
                    &format!("process-cloud-{member}"),
                    Arc::clone(&self.shared),
                    Some(Arc::clone(&stop)),
                    move |shared| {
                        ConsumerStage::new(Arc::clone(shared), member2).map(|s| Box::new(s) as _)
                    },
                )?)
            }
        };
        self.consumers.lock().push((member, stop, handle));
        Ok(())
    }

    /// Re-queue every parked reactor task so it observes freshly raised
    /// stop flags (a task parked on the arrival registry is only woken by
    /// data otherwise). No-op without the reactor.
    pub(crate) fn wake_reactor(&self) {
        if let Some(executor) = &self.shared.reactor {
            executor.wake_all();
        }
    }

    pub(crate) fn processor_count(&self) -> usize {
        self.consumers.lock().len()
    }

    /// Total consumer-group lag (records behind the watermarks).
    pub(crate) fn total_lag(&self) -> u64 {
        self.shared
            .broker
            .lag(&self.shared.group(), &self.shared.topic)
            .map(|v| v.iter().sum())
            .unwrap_or(0)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.shared.stopping()
    }

    pub(crate) fn all_done(&self) -> bool {
        self.shared.sentinels.all_done()
    }

    /// The telemetry sampler, when the telemetry plane is on (the
    /// controller reads frames and attribution input through this).
    pub(crate) fn telemetry_sampler(&self) -> Option<&TelemetrySampler> {
        self.telemetry.as_ref()
    }

    pub(crate) fn scale_processors(&self, n: usize) -> Result<(), PipelineError> {
        if n == 0 {
            return Err(PipelineError::Capacity(
                "cannot scale processors to 0".into(),
            ));
        }
        loop {
            let current = self.consumers.lock().len();
            if current == n {
                // One wake for the whole scale event: parked members
                // re-sync against the new generation instead of waiting
                // for data (or the idle backstop) to surface it.
                self.wake_reactor();
                // Keep the tune-table mirror in step for observers.
                self.shared.tune.set_processors(n);
                return Ok(());
            }
            if current < n {
                self.spawn_consumer()?;
            } else {
                let (_, stop, handle) = self.consumers.lock().pop().expect("non-empty");
                stop.store(true, Ordering::Relaxed);
                self.wake_reactor();
                self.retired.lock().push(handle);
            }
        }
    }
}

/// A live pipeline. Obtain via [`crate::pipeline::EdgeToCloudPipeline::start`].
///
/// Dropping a `RunningPipeline` without calling [`RunningPipeline::wait`]
/// aborts the run: every stage is stopped at its next step boundary,
/// drains (batch flush, sentinel append, group leave), and is joined with
/// a bounded grace period — no threads outlive the drop.
pub struct RunningPipeline {
    pub(crate) ctl: Arc<PipelineCtl>,
    producers: Vec<TaskFuture>,
    /// The attached control loop — the full feedback controller
    /// (`attach_controller` / `PipelineConfig::controller`) or the legacy
    /// lag-only autoscaler (`autoscale`, a pinned-bounds special case of
    /// the same loop). One slot: attaching either replaces the other.
    /// `Arc`'d so the gateway's `/control/journal` handler can read the
    /// journal without holding a `RunningPipeline` reference.
    pub(crate) scaler: Arc<Mutex<Option<crate::control::ControllerHandle>>>,
    /// The observability gateway, when [`PipelineConfig::gateway`] is set.
    /// Lives here (not in [`PipelineCtl`]): its handlers capture
    /// `Arc<PipelineCtl>`, so storing it inside the ctl would cycle.
    ///
    /// [`PipelineConfig::gateway`]: crate::pipeline::PipelineConfig::gateway
    gateway: Mutex<Option<pilot_gateway::Gateway>>,
}

impl RunningPipeline {
    pub(crate) fn new(ctl: Arc<PipelineCtl>, producers: Vec<TaskFuture>) -> Self {
        Self {
            ctl,
            producers,
            scaler: Arc::new(Mutex::new(None)),
            gateway: Mutex::new(None),
        }
    }

    pub(crate) fn install_gateway(&self, gateway: pilot_gateway::Gateway) {
        *self.gateway.lock() = Some(gateway);
    }

    /// The bound address of the observability gateway, when
    /// [`PipelineConfig::gateway`] is set (resolves `:0` ephemeral ports).
    ///
    /// [`PipelineConfig::gateway`]: crate::pipeline::PipelineConfig::gateway
    pub fn gateway_addr(&self) -> Option<std::net::SocketAddr> {
        self.gateway.lock().as_ref().map(|g| g.addr())
    }

    /// A handle to the broker carrying this pipeline's topic (the gateway's
    /// `POST /produce` appends through the same handle; tests fetch records
    /// back to verify ingestion).
    pub fn broker(&self) -> pilot_broker::Broker {
        self.ctl.shared.broker.clone()
    }

    /// The job id linking this run's metrics.
    pub fn job_id(&self) -> u64 {
        self.ctl.shared.ctx.job_id
    }

    /// The context shared with the FaaS functions.
    pub fn context(&self) -> &Context {
        &self.ctl.shared.ctx
    }

    /// The broker topic carrying this pipeline's data.
    pub fn topic(&self) -> &str {
        &self.ctl.shared.topic
    }

    /// Current consumer-pool size.
    pub fn processor_count(&self) -> usize {
        self.ctl.processor_count()
    }

    /// Total consumer-group lag: records produced but not yet consumed.
    /// The autoscaler's input signal; also useful for dashboards.
    pub fn lag(&self) -> u64 {
        self.ctl.total_lag()
    }

    /// Hot-swap the cloud-processing function (paper Section II-D). Every
    /// consumer re-instantiates from the new factory before its next
    /// message. Returns the new function generation.
    pub fn replace_cloud_function(&self, factory: CloudFactory) -> u64 {
        self.ctl.shared.cloud_slot.replace(factory)
    }

    /// Scale the consumer pool to `n` members at runtime; partitions are
    /// rebalanced across the new member set. During the rebalance, records
    /// in flight at the old owner may be redelivered to the new one
    /// (at-least-once, as in Kafka); distinct-message accounting in the
    /// run summary is unaffected.
    pub fn scale_processors(&self, n: usize) -> Result<(), PipelineError> {
        self.ctl.scale_processors(n)
    }

    /// Attach a lag-driven autoscaler (paper Section V: "a distributed
    /// workload management system that can select, acquire and dynamically
    /// scale resources across the continuum at runtime based on the
    /// application's objectives"). Replaces any previously attached scaler.
    ///
    /// This is the legacy, lag-only special case of
    /// [`RunningPipeline::attach_controller`]: every knob except the
    /// processor count is pinned, and no attribution runs.
    pub fn autoscale(&self, config: crate::adapt::AutoScalerConfig) {
        let handle = crate::adapt::AutoScaler::spawn(Arc::clone(&self.ctl), config);
        if let Some(old) = self.scaler.lock().replace(handle) {
            old.stop();
        }
    }

    /// Attach the feedback controller (DESIGN.md §15), closing the
    /// telemetry→knob loop over this pipeline. Replaces any previously
    /// attached controller or autoscaler. Called automatically by the
    /// runtime when [`PipelineConfig::controller`] is set.
    ///
    /// [`PipelineConfig::controller`]: crate::pipeline::PipelineConfig::controller
    pub fn attach_controller(&self, config: crate::control::ControllerConfig) {
        let handle = crate::control::Controller::spawn(Arc::clone(&self.ctl), config);
        if let Some(old) = self.scaler.lock().replace(handle) {
            old.stop();
        }
    }

    /// Processor-scaling decisions made by the attached control loop so
    /// far, in the legacy [`ScalingEvent`](crate::adapt::ScalingEvent)
    /// shape (enriched with the attributed bottleneck and the gauge
    /// snapshot). Non-processor actions are in
    /// [`RunningPipeline::control_events`].
    pub fn scaling_events(&self) -> Vec<crate::adapt::ScalingEvent> {
        self.control_events()
            .iter()
            .filter_map(crate::adapt::ScalingEvent::from_control)
            .collect()
    }

    /// The attached control loop's full action journal: every applied
    /// action with its cause, knob levels before/after, and the gauge
    /// snapshot at decision time. Empty when no controller is attached
    /// (the default — asserted zero-footprint in `tests/control.rs`).
    pub fn control_events(&self) -> Vec<crate::control::ControlEvent> {
        self.scaler
            .lock()
            .as_ref()
            .map(|s| s.events())
            .unwrap_or_default()
    }

    /// The live knob table shared with the stages: batch threshold,
    /// linger, prefetch depth, fetch budget. Writes take effect within one
    /// stage round; an attached controller writes the same cells.
    pub fn tune(&self) -> Arc<crate::runtime::TuneTable> {
        Arc::clone(&self.ctl.shared.tune)
    }

    /// Linked metrics for this job so far (usable mid-run).
    pub fn report(&self) -> PipelineReport {
        self.ctl.shared.metrics().report_for_job(self.job_id())
    }

    /// Telemetry frames sampled so far (usable mid-run). Each frame is one
    /// timestamped snapshot of every stage gauge — deadline-queue depth,
    /// in-flight batch bytes, prefetch occupancy, per-partition lag, link
    /// backlog/busy time, compute-pool occupancy — taken every
    /// `telemetry_sample_ms` milliseconds. Empty when the telemetry plane
    /// is off (the default). Feed these and the span stream to
    /// [`pilot_metrics::attribute`] for an online bottleneck attribution,
    /// or to [`pilot_metrics::chrome_trace_json`] for a Perfetto-loadable
    /// trace with gauge counter tracks.
    pub fn telemetry(&self) -> Vec<TelemetryFrame> {
        self.ctl
            .telemetry
            .as_ref()
            .map(|s| s.frames())
            .unwrap_or_default()
    }

    /// Stop everything without waiting for stream completion.
    pub fn abort(&self) {
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
        self.ctl.wake_reactor();
    }

    /// Wait for the run to complete: producers finish their streams,
    /// consumers drain every partition's sentinel. Returns the run summary.
    pub fn wait(self, timeout: Duration) -> Result<RunSummary, PipelineError> {
        let deadline = Instant::now() + timeout;
        // 1. Producers run to end-of-stream.
        for fut in &self.producers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match fut.wait_timeout(remaining) {
                None => {
                    self.abort();
                    return Err(PipelineError::Timeout);
                }
                Some(Err(e)) => {
                    self.abort();
                    return Err(PipelineError::Task(e.to_string()));
                }
                Some(Ok(_)) => {}
            }
        }
        // 2. Consumers drain all partitions (skipped when the run was
        // aborted — consumers exit on `stop_all` without draining).
        let grace = Instant::now() + Duration::from_millis(500);
        let mut evicted: HashSet<String> = HashSet::new();
        while !self.ctl.all_done() && !self.ctl.is_stopped() {
            if Instant::now() >= deadline {
                self.abort();
                return Err(PipelineError::Timeout);
            }
            for (member, stop, handle) in self.ctl.consumers.lock().iter() {
                // Surface consumer crashes instead of spinning to timeout.
                if handle.is_finished() {
                    if let Some(Err(e)) = handle.wait_timeout(Duration::ZERO) {
                        self.abort();
                        return Err(PipelineError::Task(e));
                    }
                }
                // Starvation eviction: a member whose task still has no
                // worker core after the grace period (e.g. its pilot is
                // oversubscribed by another pipeline) must not hold
                // partitions hostage — hand them to live members. Reactor
                // members report no task state and are exempt: the
                // executor's threads always run them.
                if Instant::now() > grace
                    && !evicted.contains(member)
                    && matches!(
                        handle.task_state(),
                        Some(TaskState::Pending) | Some(TaskState::Ready)
                    )
                {
                    stop.store(true, Ordering::Relaxed);
                    self.ctl.shared.coordinator.leave(member);
                    evicted.insert(member.clone());
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // 3. Shut the pool down and collect.
        if let Some(scaler) = self.scaler.lock().take() {
            scaler.stop();
        }
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
        self.ctl.wake_reactor();
        let consumers = std::mem::take(&mut *self.ctl.consumers.lock());
        for (_, _, handle) in consumers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if handle
                .wait_timeout(remaining.max(Duration::from_millis(100)))
                .is_none()
            {
                return Err(PipelineError::Timeout);
            }
        }
        // Retired members (scale-downs) may still be draining their
        // committed prefetch queues; those records count as delivered, so
        // the run is not over — and the span store not complete — until
        // they finish. Join them under the same deadline as live members.
        for handle in std::mem::take(&mut *self.ctl.retired.lock()) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match handle.wait_timeout(remaining.max(Duration::from_millis(100))) {
                None => return Err(PipelineError::Timeout),
                Some(Err(e)) => return Err(PipelineError::Task(e)),
                Some(Ok(())) => {}
            }
        }
        // Every reactor task is settled; join the reactor threads now so
        // a completed wait() leaves no pool threads behind.
        if let Some(executor) = &self.ctl.shared.reactor {
            executor.shutdown();
        }
        // The gateway goes down before the sampler: its SSE streams poll
        // the sampler, and shutdown() joins the worker threads, so no
        // handler can observe a stopped telemetry plane.
        if let Some(mut gw) = self.gateway.lock().take() {
            gw.shutdown();
        }
        // Stop the sampler after every stage drained, so its final frame
        // records the quiesced gauge levels (zero depth, zero in-flight).
        if let Some(t) = &self.ctl.telemetry {
            t.stop();
        }
        let ctx = &self.ctl.shared.ctx;
        Ok(RunSummary::from_report(
            ctx.job_id,
            ctx.metrics.report_for_job(ctx.job_id),
            ctx.counter("outliers_detected").get(),
        ))
    }
}

impl Drop for RunningPipeline {
    /// Abort-and-join: stop the scaler, raise `stop_all`, flag every
    /// consumer, and give each task a bounded grace period to drain. After
    /// a completed [`RunningPipeline::wait`] every future is already
    /// settled and this is instantaneous; after a mid-run drop the stages
    /// drain (producers flush batches and append their sentinels, the
    /// sentinel count is conserved) and their pilot cores free up for the
    /// next pipeline.
    fn drop(&mut self) {
        const GRACE: Duration = Duration::from_secs(5);
        if let Some(mut gw) = self.gateway.lock().take() {
            gw.shutdown();
        }
        if let Some(scaler) = self.scaler.lock().take() {
            scaler.stop();
        }
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
        let consumers = std::mem::take(&mut *self.ctl.consumers.lock());
        for (_, stop, _) in &consumers {
            stop.store(true, Ordering::Relaxed);
        }
        self.ctl.wake_reactor();
        for fut in self.producers.drain(..) {
            let _ = fut.wait_timeout(GRACE);
        }
        for (_, _, handle) in consumers {
            let _ = handle.wait_timeout(GRACE);
        }
        for handle in std::mem::take(&mut *self.ctl.retired.lock()) {
            let _ = handle.wait_timeout(GRACE);
        }
        if let Some(executor) = &self.ctl.shared.reactor {
            executor.shutdown();
        }
        if let Some(t) = &self.ctl.telemetry {
            t.stop();
        }
    }
}

impl std::fmt::Debug for RunningPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningPipeline")
            .field("job_id", &self.job_id())
            .field("topic", &self.ctl.shared.topic)
            .field("processors", &self.processor_count())
            .finish()
    }
}
