//! The pipeline control surface: [`PipelineCtl`] (what monitor threads
//! observe and adapt) and [`RunningPipeline`] (what applications hold).
//!
//! Shutdown paths all converge on the stage lifecycle: `wait()` lets every
//! stage finish and drain; `abort()` raises `stop_all` so stages drain at
//! their next step boundary; and *dropping* a mid-run pipeline now aborts
//! and joins everything with a bounded grace period, so a dropped handle
//! cannot leak producer, consumer, or prefetch threads.

use super::consumer::ConsumerStage;
use super::{stage, Shared};
use crate::faas::{CloudFactory, Context};
use crate::pipeline::PipelineError;
use crate::summary::RunSummary;
use parking_lot::Mutex;
use pilot_dataflow::{Client, TaskFuture};
use pilot_metrics::{PipelineReport, TelemetryFrame, TelemetrySampler};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared control surface of a running pipeline: everything a monitor
/// thread (e.g. the [`crate::adapt::AutoScaler`]) needs to observe and
/// adapt it. Internal — applications hold a [`RunningPipeline`].
pub(crate) struct PipelineCtl {
    pub(crate) shared: Arc<Shared>,
    consumers: Mutex<Vec<(String, Arc<AtomicBool>, TaskFuture)>>,
    retired: Mutex<Vec<TaskFuture>>,
    cloud_client: Client,
    next_member: AtomicUsize,
    /// The telemetry sampler thread, when `telemetry_sample_ms` is set.
    /// Stopped explicitly at the end of `wait()` (so the final frame sees
    /// the drained gauge levels) and implicitly by its own `Drop`.
    telemetry: Option<TelemetrySampler>,
}

impl PipelineCtl {
    pub(crate) fn new(
        shared: Arc<Shared>,
        cloud_client: Client,
        telemetry: Option<TelemetrySampler>,
    ) -> Self {
        Self {
            shared,
            consumers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            cloud_client,
            next_member: AtomicUsize::new(0),
            telemetry,
        }
    }

    /// Register the next consumer member with the coordinator *before* its
    /// task runs, so partition assignment is stable from the first poll
    /// (no startup rebalance churn).
    pub(crate) fn join_member(&self) -> String {
        let member = format!(
            "processor-{}",
            self.next_member.fetch_add(1, Ordering::Relaxed)
        );
        self.shared.coordinator.join(&member);
        member
    }

    fn spawn_consumer(&self) -> Result<(), PipelineError> {
        let member = self.join_member();
        self.spawn_joined_consumer(member)
    }

    /// Submit the consumer task for an already-joined member.
    pub(crate) fn spawn_joined_consumer(&self, member: String) -> Result<(), PipelineError> {
        let stop = Arc::new(AtomicBool::new(false));
        let member2 = member.clone();
        let fut = stage::spawn(
            &self.cloud_client,
            &format!("process-cloud-{member}"),
            Arc::clone(&self.shared),
            Some(Arc::clone(&stop)),
            move |shared| ConsumerStage::new(Arc::clone(shared), member2).map(|s| Box::new(s) as _),
        )?;
        self.consumers.lock().push((member, stop, fut));
        Ok(())
    }

    pub(crate) fn processor_count(&self) -> usize {
        self.consumers.lock().len()
    }

    /// Total consumer-group lag (records behind the watermarks).
    pub(crate) fn total_lag(&self) -> u64 {
        self.shared
            .broker
            .lag(&self.shared.group(), &self.shared.topic)
            .map(|v| v.iter().sum())
            .unwrap_or(0)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.shared.stopping()
    }

    pub(crate) fn all_done(&self) -> bool {
        self.shared.sentinels.all_done()
    }

    pub(crate) fn scale_processors(&self, n: usize) -> Result<(), PipelineError> {
        if n == 0 {
            return Err(PipelineError::Capacity(
                "cannot scale processors to 0".into(),
            ));
        }
        loop {
            let current = self.consumers.lock().len();
            if current == n {
                return Ok(());
            }
            if current < n {
                self.spawn_consumer()?;
            } else {
                let (_, stop, fut) = self.consumers.lock().pop().expect("non-empty");
                stop.store(true, Ordering::Relaxed);
                self.retired.lock().push(fut);
            }
        }
    }
}

/// A live pipeline. Obtain via [`crate::pipeline::EdgeToCloudPipeline::start`].
///
/// Dropping a `RunningPipeline` without calling [`RunningPipeline::wait`]
/// aborts the run: every stage is stopped at its next step boundary,
/// drains (batch flush, sentinel append, group leave), and is joined with
/// a bounded grace period — no threads outlive the drop.
pub struct RunningPipeline {
    pub(crate) ctl: Arc<PipelineCtl>,
    producers: Vec<TaskFuture>,
    scaler: Mutex<Option<crate::adapt::AutoScalerHandle>>,
}

impl RunningPipeline {
    pub(crate) fn new(ctl: Arc<PipelineCtl>, producers: Vec<TaskFuture>) -> Self {
        Self {
            ctl,
            producers,
            scaler: Mutex::new(None),
        }
    }

    /// The job id linking this run's metrics.
    pub fn job_id(&self) -> u64 {
        self.ctl.shared.ctx.job_id
    }

    /// The context shared with the FaaS functions.
    pub fn context(&self) -> &Context {
        &self.ctl.shared.ctx
    }

    /// The broker topic carrying this pipeline's data.
    pub fn topic(&self) -> &str {
        &self.ctl.shared.topic
    }

    /// Current consumer-pool size.
    pub fn processor_count(&self) -> usize {
        self.ctl.processor_count()
    }

    /// Total consumer-group lag: records produced but not yet consumed.
    /// The autoscaler's input signal; also useful for dashboards.
    pub fn lag(&self) -> u64 {
        self.ctl.total_lag()
    }

    /// Hot-swap the cloud-processing function (paper Section II-D). Every
    /// consumer re-instantiates from the new factory before its next
    /// message. Returns the new function generation.
    pub fn replace_cloud_function(&self, factory: CloudFactory) -> u64 {
        self.ctl.shared.cloud_slot.replace(factory)
    }

    /// Scale the consumer pool to `n` members at runtime; partitions are
    /// rebalanced across the new member set. During the rebalance, records
    /// in flight at the old owner may be redelivered to the new one
    /// (at-least-once, as in Kafka); distinct-message accounting in the
    /// run summary is unaffected.
    pub fn scale_processors(&self, n: usize) -> Result<(), PipelineError> {
        self.ctl.scale_processors(n)
    }

    /// Attach a lag-driven autoscaler (paper Section V: "a distributed
    /// workload management system that can select, acquire and dynamically
    /// scale resources across the continuum at runtime based on the
    /// application's objectives"). Replaces any previously attached scaler.
    pub fn autoscale(&self, config: crate::adapt::AutoScalerConfig) {
        let handle = crate::adapt::AutoScaler::spawn(Arc::clone(&self.ctl), config);
        if let Some(old) = self.scaler.lock().replace(handle) {
            old.stop();
        }
    }

    /// Scaling decisions made by the attached autoscaler so far.
    pub fn scaling_events(&self) -> Vec<crate::adapt::ScalingEvent> {
        self.scaler
            .lock()
            .as_ref()
            .map(|s| s.events())
            .unwrap_or_default()
    }

    /// Linked metrics for this job so far (usable mid-run).
    pub fn report(&self) -> PipelineReport {
        self.ctl.shared.metrics().report_for_job(self.job_id())
    }

    /// Telemetry frames sampled so far (usable mid-run). Each frame is one
    /// timestamped snapshot of every stage gauge — deadline-queue depth,
    /// in-flight batch bytes, prefetch occupancy, per-partition lag, link
    /// backlog/busy time, compute-pool occupancy — taken every
    /// `telemetry_sample_ms` milliseconds. Empty when the telemetry plane
    /// is off (the default). Feed these and the span stream to
    /// [`pilot_metrics::attribute`] for an online bottleneck attribution,
    /// or to [`pilot_metrics::chrome_trace_json`] for a Perfetto-loadable
    /// trace with gauge counter tracks.
    pub fn telemetry(&self) -> Vec<TelemetryFrame> {
        self.ctl
            .telemetry
            .as_ref()
            .map(|s| s.frames())
            .unwrap_or_default()
    }

    /// Stop everything without waiting for stream completion.
    pub fn abort(&self) {
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
    }

    /// Wait for the run to complete: producers finish their streams,
    /// consumers drain every partition's sentinel. Returns the run summary.
    pub fn wait(self, timeout: Duration) -> Result<RunSummary, PipelineError> {
        let deadline = Instant::now() + timeout;
        // 1. Producers run to end-of-stream.
        for fut in &self.producers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match fut.wait_timeout(remaining) {
                None => {
                    self.abort();
                    return Err(PipelineError::Timeout);
                }
                Some(Err(e)) => {
                    self.abort();
                    return Err(PipelineError::Task(e.to_string()));
                }
                Some(Ok(_)) => {}
            }
        }
        // 2. Consumers drain all partitions (skipped when the run was
        // aborted — consumers exit on `stop_all` without draining).
        let grace = Instant::now() + Duration::from_millis(500);
        let mut evicted: HashSet<String> = HashSet::new();
        while !self.ctl.all_done() && !self.ctl.is_stopped() {
            if Instant::now() >= deadline {
                self.abort();
                return Err(PipelineError::Timeout);
            }
            for (member, stop, fut) in self.ctl.consumers.lock().iter() {
                // Surface consumer crashes instead of spinning to timeout.
                if fut.is_finished() {
                    if let Some(Err(e)) = fut.wait_timeout(Duration::ZERO) {
                        self.abort();
                        return Err(PipelineError::Task(e.to_string()));
                    }
                }
                // Starvation eviction: a member whose task still has no
                // worker core after the grace period (e.g. its pilot is
                // oversubscribed by another pipeline) must not hold
                // partitions hostage — hand them to live members.
                if Instant::now() > grace
                    && !evicted.contains(member)
                    && matches!(
                        fut.state(),
                        Some(pilot_dataflow::TaskState::Pending)
                            | Some(pilot_dataflow::TaskState::Ready)
                    )
                {
                    stop.store(true, Ordering::Relaxed);
                    self.ctl.shared.coordinator.leave(member);
                    evicted.insert(member.clone());
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // 3. Shut the pool down and collect.
        if let Some(scaler) = self.scaler.lock().take() {
            scaler.stop();
        }
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
        let consumers = std::mem::take(&mut *self.ctl.consumers.lock());
        for (_, _, fut) in consumers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if fut
                .wait_timeout(remaining.max(Duration::from_millis(100)))
                .is_none()
            {
                return Err(PipelineError::Timeout);
            }
        }
        for fut in std::mem::take(&mut *self.ctl.retired.lock()) {
            let _ = fut.wait_timeout(Duration::from_millis(100));
        }
        // Stop the sampler after every stage drained, so its final frame
        // records the quiesced gauge levels (zero depth, zero in-flight).
        if let Some(t) = &self.ctl.telemetry {
            t.stop();
        }
        let ctx = &self.ctl.shared.ctx;
        Ok(RunSummary::from_report(
            ctx.job_id,
            ctx.metrics.report_for_job(ctx.job_id),
            ctx.counter("outliers_detected").get(),
        ))
    }
}

impl Drop for RunningPipeline {
    /// Abort-and-join: stop the scaler, raise `stop_all`, flag every
    /// consumer, and give each task a bounded grace period to drain. After
    /// a completed [`RunningPipeline::wait`] every future is already
    /// settled and this is instantaneous; after a mid-run drop the stages
    /// drain (producers flush batches and append their sentinels, the
    /// sentinel count is conserved) and their pilot cores free up for the
    /// next pipeline.
    fn drop(&mut self) {
        const GRACE: Duration = Duration::from_secs(5);
        if let Some(scaler) = self.scaler.lock().take() {
            scaler.stop();
        }
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
        let consumers = std::mem::take(&mut *self.ctl.consumers.lock());
        for (_, stop, _) in &consumers {
            stop.store(true, Ordering::Relaxed);
        }
        for fut in self.producers.drain(..) {
            let _ = fut.wait_timeout(GRACE);
        }
        for (_, _, fut) in consumers {
            let _ = fut.wait_timeout(GRACE);
        }
        for fut in std::mem::take(&mut *self.ctl.retired.lock()) {
            let _ = fut.wait_timeout(GRACE);
        }
        if let Some(t) = &self.ctl.telemetry {
            t.stop();
        }
    }
}

impl std::fmt::Debug for RunningPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningPipeline")
            .field("job_id", &self.job_id())
            .field("topic", &self.ctl.shared.topic)
            .field("processors", &self.processor_count())
            .finish()
    }
}
