//! Runtime integration tests: end-to-end runs, fault isolation, hot swap,
//! scaling, abort. (Stage- and module-level unit tests live next to their
//! modules; knob-composition and drop-semantics suites live in the
//! workspace `tests/` directory.)

use crate::faas::{CloudFactory, Context, ProcessOutcome};
use crate::pipeline::EdgeToCloudPipeline;
use crate::processors::{baseline_factory, datagen_produce_factory};
use pilot_core::{Pilot, PilotComputeService, PilotDescription};
use pilot_datagen::DataGenConfig;
use pilot_metrics::Component;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

fn pilots(svc: &PilotComputeService, edge_cores: usize, cloud_cores: usize) -> (Pilot, Pilot) {
    let edge = svc
        .submit_and_wait(PilotDescription::local(edge_cores, 16.0), WAIT)
        .unwrap();
    let cloud = svc
        .submit_and_wait(PilotDescription::local(cloud_cores, 16.0), WAIT)
        .unwrap();
    (edge, cloud)
}

#[test]
fn end_to_end_baseline_run() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 2, 2);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(25), 8))
        .process_cloud_function(baseline_factory())
        .devices(2)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 16, "2 devices × 8 messages");
    assert_eq!(summary.errors, 0);
    assert!(summary.throughput_msgs > 0.0);
    // All expected components reported.
    assert!(summary.report.component(&Component::EdgeProducer).is_some());
    assert!(summary.report.component(&Component::Broker).is_some());
    assert!(summary
        .report
        .component(&Component::CloudProcessor)
        .is_some());
}

#[test]
fn per_message_point_counts_survive_transport() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(40), 5))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .start()
        .unwrap();
    let ctx_points = running.context().counter("points_processed");
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 5);
    assert_eq!(ctx_points.get(), 200, "5 messages × 40 points");
}

#[test]
fn processing_error_is_isolated() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 1, 1);
    // Fail on every other message; the stream must still complete.
    let flaky: CloudFactory = Arc::new(|_ctx| {
        let mut n = 0u64;
        Box::new(move |_ctx: &Context, _block| {
            n += 1;
            if n.is_multiple_of(2) {
                Err("synthetic failure".into())
            } else {
                Ok(ProcessOutcome::default())
            }
        })
    });
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 6))
        .process_cloud_function(flaky)
        .devices(1)
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.errors, 3, "3 of 6 messages fail");
    // All 6 still linked end-to-end through producer/broker spans.
    assert_eq!(summary.messages, 6);
}

#[test]
fn hot_swap_changes_function_mid_run() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 30))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .rate_per_device(100.0) // ~300 ms stream: time to swap
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let swapped: CloudFactory = Arc::new(|_ctx| {
        Box::new(move |ctx: &Context, _block| {
            ctx.counter("swapped_invocations").incr();
            Ok(ProcessOutcome::default())
        })
    });
    let gen = running.replace_cloud_function(swapped);
    assert_eq!(gen, 2);
    let ctx_counter = running.context().counter("swapped_invocations");
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 30);
    let swapped_count = ctx_counter.get();
    assert!(
        swapped_count > 0 && swapped_count < 30,
        "swap must take effect mid-stream (got {swapped_count})"
    );
}

#[test]
fn scale_processors_up_and_down() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 4, 6);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 20))
        .process_cloud_function(baseline_factory())
        .devices(4)
        .processors(1)
        .rate_per_device(100.0)
        .start()
        .unwrap();
    assert_eq!(running.processor_count(), 1);
    running.scale_processors(4).unwrap();
    assert_eq!(running.processor_count(), 4);
    std::thread::sleep(Duration::from_millis(50));
    running.scale_processors(2).unwrap();
    assert_eq!(running.processor_count(), 2);
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 80, "4 devices × 20 messages");
    assert_eq!(summary.errors, 0);
}

#[test]
fn scale_to_zero_rejected() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 2))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .start()
        .unwrap();
    assert!(running.scale_processors(0).is_err());
    running.wait(WAIT).unwrap();
}

#[test]
fn reactor_end_to_end_run() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 4, 2);
    let summary = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(25), 8))
        .process_cloud_function(baseline_factory())
        .devices(4)
        .reactor_threads(2) // 4 members on 2 reactor threads: fine
        .run(WAIT)
        .unwrap();
    assert_eq!(summary.messages, 32, "4 devices × 8 messages");
    assert_eq!(summary.errors, 0);
    assert!(summary
        .report
        .component(&Component::CloudProcessor)
        .is_some());
    assert!(summary
        .report
        .component(&Component::Network("loopback".into()))
        .is_some());
}

#[test]
fn reactor_scale_down_retires_members() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 4, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 20))
        .process_cloud_function(baseline_factory())
        .devices(4)
        .rate_per_device(100.0)
        .reactor_threads(2)
        .start()
        .unwrap();
    assert_eq!(running.processor_count(), 4);
    std::thread::sleep(Duration::from_millis(50));
    // A retired reactor member is parked on the arrival registry; the
    // scale-down must wake it so it observes its stop flag and leaves.
    running.scale_processors(1).unwrap();
    assert_eq!(running.processor_count(), 1);
    let summary = running.wait(WAIT).unwrap();
    assert_eq!(summary.messages, 80, "4 devices × 20 messages");
    assert_eq!(summary.errors, 0);
}

#[test]
fn reactor_abort_wakes_parked_members() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 2, 2);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 100_000))
        .process_cloud_function(baseline_factory())
        .devices(2)
        .rate_per_device(50.0) // trickle: members spend the run parked
        .reactor_threads(2)
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    running.abort();
    let summary = running.wait(Duration::from_secs(10)).unwrap();
    assert!(summary.messages < 100_000);
}

#[test]
fn abort_stops_early() {
    let svc = PilotComputeService::new();
    let (edge, cloud) = pilots(&svc, 1, 1);
    let running = EdgeToCloudPipeline::builder()
        .pilot_edge(edge)
        .pilot_cloud_processing(cloud)
        .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 100_000))
        .process_cloud_function(baseline_factory())
        .devices(1)
        .rate_per_device(50.0) // would take ~2000 s to finish
        .start()
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    running.abort();
    // After abort the producers stop, append sentinels, and wait()
    // completes quickly.
    let summary = running.wait(Duration::from_secs(10)).unwrap();
    assert!(summary.messages < 100_000);
}
