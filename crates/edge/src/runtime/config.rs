//! Per-stage configuration: the validated form of [`PipelineConfig`].
//!
//! The flat [`PipelineConfig`] (and its builder methods) stays the public
//! compatibility surface; [`PipelineConfig::resolve`] turns it into
//! [`StageConfigs`] — one sub-config per stage, checked by
//! [`PipelineConfig::validate`] — at `start()`. The stages only ever see
//! their own sub-config, so a knob cannot leak into the wrong stage.

use crate::deployment::DeploymentMode;
use crate::pipeline::{PipelineConfig, PipelineError};
use std::time::Duration;

/// Which engine drives the edge producers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProducerEngineKind {
    /// One dedicated engine worker per device (the default, the paper's
    /// "edge devices are simulated with a Dask task"): each device gets its
    /// own task driving a degenerate one-device engine.
    Dedicated,
    /// All devices multiplexed onto `workers` engine workers via the
    /// deadline queue ([`PipelineConfig::producer_threads`]).
    Multiplexed {
        /// Engine worker tasks sharing the device set.
        workers: usize,
    },
}

/// Producer-stage configuration (who produces, how fast, where edge
/// processing runs).
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Edge devices = broker partitions.
    pub devices: usize,
    /// Dedicated task per device, or a multiplexed worker pool.
    pub engine: ProducerEngineKind,
    /// Per-device send rate in messages/second (0 = unthrottled).
    pub rate_per_device: f64,
    /// Deployment modality (decides whether `process_edge` runs).
    pub mode: DeploymentMode,
}

/// Transport-stage configuration (how encoded messages cross the
/// edge→broker link).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Wire codec for blocks crossing the network.
    pub codec: pilot_datagen::Codec,
    /// Producer batch threshold in encoded bytes (0 = serial per-message
    /// transfers, the default).
    pub batch_max_bytes: usize,
    /// How long the first message of a batch may wait for batch-mates.
    pub linger: Duration,
}

impl TransportConfig {
    /// Whether producer batching (the pipelined transport) is on.
    pub fn batching(&self) -> bool {
        self.batch_max_bytes > 0
    }
}

/// Consumer-stage configuration (fetch, prefetch, and processor pool).
#[derive(Debug, Clone)]
pub struct ConsumerConfig {
    /// Initial consumer-task count.
    pub processors: usize,
    /// Batches each consumer fetches ahead of processing (0 = fetch
    /// inlined in the processing loop, the default).
    pub prefetch_depth: usize,
    /// Max records per partition per fetch.
    pub fetch_max: usize,
    /// Blocking-poll timeout per consumer loop iteration.
    pub poll_timeout: Duration,
    /// Reactor threads driving every member as a waker-based state machine
    /// (`None` = one thread-backed cloud task per member, the default).
    pub reactor_threads: Option<usize>,
}

/// The per-stage sub-configs resolved from a validated [`PipelineConfig`]
/// at `start()`.
#[derive(Debug, Clone)]
pub struct StageConfigs {
    /// Producer stage.
    pub producer: ProducerConfig,
    /// Edge→broker transport.
    pub transport: TransportConfig,
    /// Consumer stage.
    pub consumer: ConsumerConfig,
}

impl PipelineConfig {
    /// Check knob consistency without needing pilots.
    ///
    /// Rejected configurations:
    /// * `devices == 0` or `processors == 0` ([`PipelineError::Capacity`]);
    /// * `producer_threads == Some(0)` — a multiplexed engine with no
    ///   workers would strand every device ([`PipelineError::Config`]);
    /// * `compute_threads == Some(0)` — a width-0 compute pool cannot run
    ///   anything ([`PipelineError::Config`]);
    /// * `reactor_threads == Some(0)` — an event-driven consumer core with
    ///   no reactor threads would never poll any member
    ///   ([`PipelineError::Config`]);
    /// * `linger > 0` with `batch_max_bytes == 0` — the linger window only
    ///   exists inside the batcher, so this combination used to be a silent
    ///   no-op; it is now an error so the intent (batching) is explicit
    ///   ([`PipelineError::Config`]);
    /// * `telemetry_sample_ms == Some(0)` — a zero sampling interval would
    ///   spin the sampler thread flat out; use `None` to disable telemetry
    ///   ([`PipelineError::Config`]);
    /// * an inconsistent [`controller`](PipelineConfig::controller) config
    ///   — zero tick or hysteresis, inverted lag thresholds, or any
    ///   per-knob bound with `min > max` ([`PipelineError::Config`]);
    /// * an inconsistent [`gateway`](PipelineConfig::gateway) config — an
    ///   empty bind address, zero workers, or a zero body cap
    ///   ([`PipelineError::Config`]).
    ///
    /// Called by `EdgeToCloudPipeline::start()` before any resource is
    /// provisioned; also usable directly on a hand-built config.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.devices == 0 {
            return Err(PipelineError::Capacity("devices must be > 0".into()));
        }
        if self.processors == 0 {
            return Err(PipelineError::Capacity("processors must be > 0".into()));
        }
        if self.producer_threads == Some(0) {
            return Err(PipelineError::Config(
                "producer_threads must be > 0 when set".into(),
            ));
        }
        if self.compute_threads == Some(0) {
            return Err(PipelineError::Config(
                "compute_threads must be > 0 when set".into(),
            ));
        }
        if self.reactor_threads == Some(0) {
            return Err(PipelineError::Config(
                "reactor_threads must be > 0 when set (use None for \
                 thread-backed consumer tasks)"
                    .into(),
            ));
        }
        if self.linger > Duration::ZERO && self.batch_max_bytes == 0 {
            return Err(PipelineError::Config(
                "linger requires batch_max_bytes > 0 (a linger window without \
                 batching would silently do nothing)"
                    .into(),
            ));
        }
        if self.telemetry_sample_ms == Some(0) {
            return Err(PipelineError::Config(
                "telemetry_sample_ms must be > 0 when set (use None to \
                 disable telemetry)"
                    .into(),
            ));
        }
        if self.log_dir.is_none() {
            if self.fsync_interval_ms.is_some() {
                return Err(PipelineError::Config(
                    "fsync_interval_ms requires log_dir (there is no durable \
                     log for the fsync window to apply to)"
                        .into(),
                ));
            }
            if self.fsync_batch_bytes.is_some() {
                return Err(PipelineError::Config(
                    "fsync_batch_bytes requires log_dir (there is no durable \
                     log for the early-kick threshold to apply to)"
                        .into(),
                ));
            }
        }
        if self.fsync_interval_ms == Some(0) {
            return Err(PipelineError::Config(
                "fsync_interval_ms must be > 0 when set (a zero commit \
                 window would fsync per append; omit it for the default)"
                    .into(),
            ));
        }
        if self.fsync_batch_bytes == Some(0) {
            return Err(PipelineError::Config(
                "fsync_batch_bytes must be > 0 when set (a zero threshold \
                 would kick the flusher on every append; omit it for the \
                 default)"
                    .into(),
            ));
        }
        if let Some(ctl) = &self.controller {
            ctl.validate().map_err(PipelineError::Config)?;
        }
        if let Some(gw) = &self.gateway {
            gw.validate()
                .map_err(|e| PipelineError::Config(format!("gateway: {e}")))?;
        }
        Ok(())
    }

    /// Resolve the durable-log knobs into the broker's
    /// [`DurabilityConfig`](pilot_broker::DurabilityConfig) — `None` when
    /// [`log_dir`](PipelineConfig::log_dir) is unset (the seed memory-only
    /// log). Assumes [`Self::validate`] passed.
    pub fn durability(&self) -> Option<pilot_broker::DurabilityConfig> {
        let dir = self.log_dir.as_ref()?;
        let (mut interval, mut batch_bytes) = match pilot_broker::SyncPolicy::group_commit_default()
        {
            pilot_broker::SyncPolicy::GroupCommit {
                interval,
                batch_bytes,
            } => (interval, batch_bytes),
            _ => unreachable!("default policy is group commit"),
        };
        if let Some(ms) = self.fsync_interval_ms {
            interval = Duration::from_millis(ms);
        }
        if let Some(b) = self.fsync_batch_bytes {
            batch_bytes = b;
        }
        Some(pilot_broker::DurabilityConfig::new(dir).with_policy(
            pilot_broker::SyncPolicy::GroupCommit {
                interval,
                batch_bytes,
            },
        ))
    }

    /// Validate and split into per-stage sub-configs.
    pub fn resolve(&self) -> Result<StageConfigs, PipelineError> {
        self.validate()?;
        Ok(StageConfigs {
            producer: ProducerConfig {
                devices: self.devices,
                engine: match self.producer_threads {
                    Some(workers) => ProducerEngineKind::Multiplexed { workers },
                    None => ProducerEngineKind::Dedicated,
                },
                rate_per_device: self.rate_per_device,
                mode: self.mode,
            },
            transport: TransportConfig {
                codec: self.codec,
                batch_max_bytes: self.batch_max_bytes,
                linger: self.linger,
            },
            consumer: ConsumerConfig {
                processors: self.processors,
                prefetch_depth: self.prefetch_depth,
                fetch_max: self.fetch_max,
                poll_timeout: self.poll_timeout,
                reactor_threads: self.reactor_threads,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(PipelineConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_devices_rejected() {
        let cfg = PipelineConfig {
            devices: 0,
            ..PipelineConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(PipelineError::Capacity(_))));
    }

    #[test]
    fn zero_processors_rejected() {
        let cfg = PipelineConfig {
            processors: 0,
            ..PipelineConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(PipelineError::Capacity(_))));
    }

    #[test]
    fn zero_producer_threads_rejected() {
        let cfg = PipelineConfig {
            producer_threads: Some(0),
            ..PipelineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        assert!(err.to_string().contains("producer_threads"));
    }

    #[test]
    fn zero_compute_threads_rejected() {
        let cfg = PipelineConfig {
            compute_threads: Some(0),
            ..PipelineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        assert!(err.to_string().contains("compute_threads"));
    }

    #[test]
    fn zero_reactor_threads_rejected() {
        let cfg = PipelineConfig {
            reactor_threads: Some(0),
            ..PipelineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        assert!(err.to_string().contains("reactor_threads"));
        let on = PipelineConfig {
            reactor_threads: Some(2),
            ..PipelineConfig::default()
        };
        assert!(on.validate().is_ok());
    }

    #[test]
    fn zero_telemetry_interval_rejected() {
        let cfg = PipelineConfig {
            telemetry_sample_ms: Some(0),
            ..PipelineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        assert!(err.to_string().contains("telemetry_sample_ms"));
        let on = PipelineConfig {
            telemetry_sample_ms: Some(5),
            ..PipelineConfig::default()
        };
        assert!(on.validate().is_ok());
    }

    #[test]
    fn fsync_knobs_require_log_dir() {
        for cfg in [
            PipelineConfig {
                fsync_interval_ms: Some(5),
                ..PipelineConfig::default()
            },
            PipelineConfig {
                fsync_batch_bytes: Some(1 << 20),
                ..PipelineConfig::default()
            },
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(matches!(err, PipelineError::Config(_)), "{err}");
            assert!(err.to_string().contains("log_dir"), "{err}");
        }
    }

    #[test]
    fn zero_fsync_knobs_rejected() {
        let base = PipelineConfig {
            log_dir: Some(std::env::temp_dir().join("pilot-knob-test")),
            ..PipelineConfig::default()
        };
        assert!(base.validate().is_ok());
        assert!(base.durability().is_some());
        let cfg = PipelineConfig {
            fsync_interval_ms: Some(0),
            ..base.clone()
        };
        assert!(cfg.validate().is_err());
        let cfg = PipelineConfig {
            fsync_batch_bytes: Some(0),
            ..base
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn durability_resolves_knobs_onto_policy() {
        assert!(PipelineConfig::default().durability().is_none());
        let cfg = PipelineConfig {
            log_dir: Some(std::env::temp_dir().join("pilot-knob-test")),
            fsync_interval_ms: Some(7),
            fsync_batch_bytes: Some(4096),
            ..PipelineConfig::default()
        };
        let d = cfg.durability().unwrap();
        assert_eq!(
            d.policy,
            pilot_broker::SyncPolicy::GroupCommit {
                interval: Duration::from_millis(7),
                batch_bytes: 4096,
            }
        );
        // Unset knobs fall back to the engine default.
        let cfg = PipelineConfig {
            log_dir: Some(std::env::temp_dir().join("pilot-knob-test")),
            ..PipelineConfig::default()
        };
        assert_eq!(
            cfg.durability().unwrap().policy,
            pilot_broker::SyncPolicy::group_commit_default()
        );
    }

    #[test]
    fn inconsistent_controller_rejected() {
        use crate::control::{ControlBounds, ControllerConfig};
        let ok = PipelineConfig {
            controller: Some(ControllerConfig::default()),
            ..PipelineConfig::default()
        };
        assert!(ok.validate().is_ok());
        for bad in [
            ControllerConfig {
                tick: Duration::ZERO,
                ..ControllerConfig::default()
            },
            ControllerConfig {
                hysteresis: 0,
                ..ControllerConfig::default()
            },
            ControllerConfig {
                lag_low: 100,
                lag_bound: 10,
                ..ControllerConfig::default()
            },
            ControllerConfig {
                bounds: ControlBounds {
                    min_processors: 8,
                    max_processors: 2,
                    ..ControlBounds::default()
                },
                ..ControllerConfig::default()
            },
        ] {
            let cfg = PipelineConfig {
                controller: Some(bad),
                ..PipelineConfig::default()
            };
            let err = cfg.validate().unwrap_err();
            assert!(matches!(err, PipelineError::Config(_)), "{err}");
            assert!(err.to_string().contains("controller"), "{err}");
        }
    }

    #[test]
    fn linger_without_batching_rejected() {
        let cfg = PipelineConfig {
            linger: Duration::from_millis(2),
            ..PipelineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        assert!(err.to_string().contains("batch_max_bytes"));
    }

    #[test]
    fn linger_with_batching_accepted() {
        let cfg = PipelineConfig {
            linger: Duration::from_millis(2),
            batch_max_bytes: 64 * 1024,
            ..PipelineConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn resolve_maps_knobs_onto_stages() {
        let cfg = PipelineConfig {
            devices: 8,
            processors: 2,
            producer_threads: Some(3),
            batch_max_bytes: 1024,
            linger: Duration::from_millis(1),
            prefetch_depth: 2,
            reactor_threads: Some(4),
            ..PipelineConfig::default()
        };
        let stages = cfg.resolve().unwrap();
        assert_eq!(stages.producer.devices, 8);
        assert_eq!(
            stages.producer.engine,
            ProducerEngineKind::Multiplexed { workers: 3 }
        );
        assert!(stages.transport.batching());
        assert_eq!(stages.consumer.processors, 2);
        assert_eq!(stages.consumer.prefetch_depth, 2);
        assert_eq!(stages.consumer.reactor_threads, Some(4));
        let dedicated = PipelineConfig::default().resolve().unwrap();
        assert_eq!(dedicated.producer.engine, ProducerEngineKind::Dedicated);
        assert!(!dedicated.transport.batching());
        assert_eq!(dedicated.consumer.reactor_threads, None);
    }
}
