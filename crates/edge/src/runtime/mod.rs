//! The running pipeline: a staged engine of producer and consumer stages
//! (task wiring, dataflow, termination, adaptation).
//!
//! What `start` builds (paper Fig. 1, step 2):
//!
//! ```text
//!  edge pilot                     broker pilot                cloud pilot
//!  ┌───────────────┐   link      ┌──────────────┐   link     ┌──────────────┐
//!  │ producer task ├────────────▶│ topic, 1 part│◀───────────┤ consumer task│
//!  │  (per device) │  e→broker   │  per device  │  broker→c  │ (per proc.)  │
//!  └───────────────┘             │ param server │            └──────────────┘
//!                                └──────────────┘
//! ```
//!
//! Producers run `produce_edge` (and, in hybrid mode, `process_edge`),
//! serialize, cross the simulated edge→broker link, and append to their
//! device's partition. Consumers poll their assigned partitions (range
//! assignment via the consumer-group coordinator), cross the broker→cloud
//! link, decode, and run `process_cloud`. Every step records a linked
//! metric span keyed by `(job_id, msg_id)`.
//!
//! # Module map (DESIGN.md §10)
//!
//! Every runtime task is a `stage::Stage` (spawn → step → drain → abort)
//! driven by `stage::drive`; the cross-cutting concerns each live in
//! exactly one module:
//!
//! * `stage` — the shared lifecycle and uniform error propagation;
//! * [`config`] — validated per-stage sub-configs resolved from the flat
//!   [`PipelineConfig`](crate::pipeline::PipelineConfig) at `start()`;
//! * `producer` — `DeviceProducer` state + the deadline-queue
//!   `ProducerEngine`; thread-per-device is the one-device/one-worker
//!   configuration of the same engine;
//! * `consumer` — the `ConsumerStage` (membership, fetch, transport,
//!   processing); serial consumption is the prefetch-depth-0 shape with
//!   the fetch step inlined;
//! * `reactor` — the `ReactorConsumerStage`: the same consumer round as a
//!   waker-based state machine on a fixed pool of reactor threads
//!   (`reactor_threads = Some(k)`; DESIGN.md §12);
//! * `batch` — producer-side batching (accumulate / flush / double
//!   buffer) of the pipelined transport;
//! * `sentinel` — the end-of-stream protocol and per-partition tracker;
//! * `spans` — metric message identity and hot-path counters;
//! * `ctl` — `PipelineCtl` / [`RunningPipeline`]: scaling, hot-swap,
//!   wait/abort/drop shutdown.
//!
//! **Termination**: each producer appends an empty *sentinel* record after
//! its stream ends; a partition is complete once its sentinel is consumed;
//! the run is complete when every partition is.
//!
//! **Pipelined transport** (off by default; see
//! [`PipelineConfig::batch_max_bytes`](crate::pipeline::PipelineConfig::batch_max_bytes)
//! and
//! [`PipelineConfig::prefetch_depth`](crate::pipeline::PipelineConfig::prefetch_depth)):
//! producers batch encoded messages
//! and ship each batch over one non-blocking link reservation, completing
//! the previous batch (wait + per-message append) while the next one is
//! encoding; consumers move fetch + broker→cloud transfer onto a bounded
//! prefetch thread so batch N+1 crosses the WAN while batch N is in
//! `process_cloud`. Per-message metric spans are preserved in both modes:
//! every message of a batch gets its own Network/Broker/CloudProcessor
//! spans (network spans share the batch's wall-clock window, carrying the
//! message's own byte count).
//!
//! **Fan-in scale-out** (off by default; see
//! [`PipelineConfig::producer_threads`](crate::pipeline::PipelineConfig::producer_threads)):
//! with `producer_threads = Some(k)`
//! the dedicated per-device producer tasks are replaced by `k` engine
//! workers multiplexing every device over one deadline queue, so a
//! 1024-device cell needs `k` edge cores instead of 1024. Per-device
//! message sets are identical between the two shapes under a fixed seed.
//! Consumers always fetch via one multi-partition `poll_many` (one shared
//! condvar wait per member, not one timeout per partition), pausing
//! partitions whose sentinel arrived.
//!
//! **Adaptation** (paper Section II-D): [`RunningPipeline::replace_cloud_function`]
//! hot-swaps the processing function (consumers re-instantiate on the next
//! message); [`RunningPipeline::scale_processors`] grows or shrinks the
//! consumer pool at runtime, rebalancing partitions across members.

pub mod config;

mod batch;
mod consumer;
mod ctl;
mod gateway;
mod producer;
mod reactor;
pub(crate) mod sentinel;
mod spans;
mod stage;
pub mod telemetry;
pub mod tune;

#[cfg(test)]
mod tests;

pub(crate) use ctl::PipelineCtl;
pub use ctl::RunningPipeline;
pub use tune::TuneTable;

use crate::faas::{Context, SwappableCloudFactory};
use crate::pipeline::{EdgeToCloudPipeline, PipelineError};
use config::{ConsumerConfig, ProducerConfig, TransportConfig};
use pilot_broker::{Broker, GroupCoordinator};
use pilot_core::Pilot;
use pilot_metrics::{JobSpans, MetricsRegistry, TelemetrySampler};
use pilot_netsim::Link;
use sentinel::SentinelTracker;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::StageGauges;

/// Process-global job-id source so concurrent pipelines never collide.
static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(1);

/// Everything the stages of one pipeline share: context, broker, links,
/// the resolved per-stage configs, and the termination state.
pub(crate) struct Shared {
    pub(crate) ctx: Context,
    pub(crate) broker: Broker,
    pub(crate) topic: String,
    pub(crate) producer: ProducerConfig,
    pub(crate) transport: TransportConfig,
    pub(crate) consumer: ConsumerConfig,
    pub(crate) link_edge_broker: Link,
    pub(crate) link_broker_cloud: Link,
    pub(crate) cloud_slot: SwappableCloudFactory,
    pub(crate) coordinator: GroupCoordinator,
    pub(crate) sentinels: SentinelTracker,
    pub(crate) stop_all: AtomicBool,
    /// Live knob cells the stages re-read at loop/poll boundaries; seeded
    /// from the resolved configs, so an untouched table is bit-identical
    /// to the frozen-config behaviour.
    pub(crate) tune: Arc<TuneTable>,
    /// Stage gauges of the live telemetry plane; `None` (the default, when
    /// `telemetry_sample_ms` is unset) keeps every hot-path update a single
    /// null check.
    pub(crate) gauges: Option<Arc<StageGauges>>,
    /// The shared reactor driving `ReactorConsumerStage` members; `None`
    /// (the default, when `reactor_threads` is unset) keeps consumers on
    /// their thread-backed cloud tasks.
    pub(crate) reactor: Option<Arc<pilot_dataflow::LocalExecutor>>,
}

impl Shared {
    pub(crate) fn metrics(&self) -> &MetricsRegistry {
        &self.ctx.metrics
    }

    /// A span recorder bound to this pipeline's job id.
    pub(crate) fn spans(&self) -> JobSpans<'_> {
        self.ctx.metrics.for_job(self.ctx.job_id)
    }

    /// The consumer-group name of this pipeline.
    pub(crate) fn group(&self) -> String {
        format!("pilot-edge-{}", self.ctx.job_id)
    }

    /// Whether the pipeline-wide stop flag is raised.
    pub(crate) fn stopping(&self) -> bool {
        self.stop_all.load(Ordering::Relaxed)
    }

    /// The stage gauges, when the telemetry plane is on.
    pub(crate) fn stage_gauges(&self) -> Option<&StageGauges> {
        self.gauges.as_deref()
    }
}

/// Factories captured for producer tasks.
pub(crate) struct ProducerFns {
    pub(crate) produce: crate::faas::ProduceFactory,
    pub(crate) edge: crate::faas::EdgeFactory,
}

pub(crate) fn start(
    builder: EdgeToCloudPipeline,
    edge: Pilot,
    cloud: Pilot,
    broker_pilot: Pilot,
) -> Result<RunningPipeline, PipelineError> {
    let job_id = NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed);
    let cfg = builder.config.clone();
    let stages = cfg.resolve()?;
    let broker = broker_pilot
        .start_broker()
        .map_err(|e| PipelineError::Task(e.to_string()))?;
    let params = broker_pilot
        .start_param_server()
        .map_err(|e| PipelineError::Task(e.to_string()))?;
    let metrics = builder.metrics.clone().unwrap_or_default();
    let topic = cfg
        .topic
        .clone()
        .unwrap_or_else(|| format!("pilot-edge-{job_id}"));
    // Durable broker log (off by default): with `log_dir` set the topic
    // persists through the broker's segmented storage engine — group-commit
    // fsync, crash recovery, O(1) segment-file retention. Without it the
    // topic is the seed's memory-only structure, byte for byte.
    match cfg.durability() {
        Some(durability) => {
            broker.create_topic_durable(&topic, cfg.devices, cfg.retention, &durability)?
        }
        None => broker.create_topic(&topic, cfg.devices, cfg.retention)?,
    }
    // One intra-task compute pool per cloud pilot, sized from its cores
    // unless overridden: a 1-core pilot gets a width-1 (inline) pool, a
    // multi-core one lets each model invocation fan out. All consumers of
    // this pipeline share the pool; concurrent jobs serialise inside it.
    let compute_width = cfg
        .compute_threads
        .unwrap_or_else(|| cloud.description().cores);
    // With a controller configured the pool is resizable up to the
    // controller's compute bound; without one it is the seed's fixed-width
    // pool, byte for byte.
    let compute_pool = match &cfg.controller {
        Some(ctl_cfg) => pilot_dataflow::ComputePool::resizable(
            compute_width,
            ctl_cfg.bounds.max_compute.max(compute_width),
        ),
        None => pilot_dataflow::ComputePool::new(compute_width),
    };
    // Telemetry plane (off by default): register the stage gauges before
    // any stage runs, so the first sampler frame already has every name.
    let gauges = cfg
        .telemetry_sample_ms
        .map(|_| Arc::new(StageGauges::new(&metrics, cfg.devices)));
    // Event-driven consumer core (off by default): a fixed pool of
    // reactor threads drives every member as a waker-based state machine,
    // so member count no longer dictates cloud-side thread count.
    let reactor = stages
        .consumer
        .reactor_threads
        .map(|k| Arc::new(pilot_dataflow::LocalExecutor::new(k)));
    let ctx = Context::new(
        job_id,
        cfg.devices,
        params,
        metrics,
        builder.settings.clone(),
    )
    .with_compute_pool(Arc::new(compute_pool));
    let tune = Arc::new(TuneTable::from_stages(&stages, compute_width));
    let shared = Arc::new(Shared {
        ctx,
        broker,
        topic,
        producer: stages.producer,
        transport: stages.transport,
        consumer: stages.consumer,
        link_edge_broker: builder.link_edge_broker.clone(),
        link_broker_cloud: builder.link_broker_cloud.clone(),
        cloud_slot: SwappableCloudFactory::new(
            builder.cloud_factory.clone().expect("validated by builder"),
        ),
        coordinator: GroupCoordinator::new(cfg.devices),
        sentinels: SentinelTracker::new(cfg.devices),
        stop_all: AtomicBool::new(false),
        tune,
        gauges,
        reactor,
    });
    // The sampler thread snapshots the gauges every `telemetry_sample_ms`;
    // it is owned by the ctl (not by Shared), stopped on wait()/drop.
    let sampler = cfg.telemetry_sample_ms.map(|ms| {
        TelemetrySampler::spawn(
            shared.metrics().clone(),
            Duration::from_millis(ms),
            TelemetrySampler::DEFAULT_CAPACITY,
            StageGauges::probes(&shared),
        )
    });

    let edge_client = edge
        .client()
        .map_err(|e| PipelineError::Task(e.to_string()))?;
    let cloud_client = cloud
        .client()
        .map_err(|e| PipelineError::Task(e.to_string()))?;

    let fns = Arc::new(ProducerFns {
        produce: builder.produce_factory.clone().expect("validated"),
        edge: builder.edge_factory.clone(),
    });
    let producers = producer::spawn_producers(&edge_client, &shared, &fns)?;

    let ctl = Arc::new(PipelineCtl::new(shared, cloud_client, sampler));
    // Join every startup member before submitting any consumer task, so
    // the first poll already sees the final assignment (no startup
    // rebalance, no at-least-once redelivery). The batch join is one
    // rebalance for the whole pool — O(n), where n sequential joins cost
    // O(n²) assignment writes (minutes at 64k members). Scale events later
    // may still redeliver in-flight batches — inherent to consumer-group
    // semantics and documented on `scale_processors`.
    for member in ctl.join_members(cfg.processors) {
        ctl.spawn_joined_consumer(member)?;
    }
    let running = RunningPipeline::new(ctl, producers);
    // Close the loop last: the controller's first tick already sees every
    // startup member and the seeded tune table.
    if let Some(ctl_cfg) = cfg.controller.clone() {
        running.attach_controller(ctl_cfg);
    }
    // The observability front door opens after the controller attached, so
    // `/control/journal` never races an armed-but-empty scaler slot. The
    // tune endpoint reuses the controller's bounds when one is configured
    // (external tunes obey the same envelope), defaults otherwise.
    if let Some(gw_cfg) = &cfg.gateway {
        let bounds = cfg
            .controller
            .as_ref()
            .map(|c| c.bounds.clone())
            .unwrap_or_default();
        let gw = gateway::start(gw_cfg, &running.ctl, &running.scaler, bounds)
            .map_err(|e| PipelineError::Task(format!("gateway: {e}")))?;
        running.install_gateway(gw);
    }
    Ok(running)
}
