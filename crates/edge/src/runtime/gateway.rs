//! The observability front door of a running pipeline (DESIGN.md §16):
//! wires the generic [`pilot_gateway`] HTTP server onto a live
//! [`PipelineCtl`].
//!
//! The gateway crate knows sockets, HTTP framing, routing, and SSE — it
//! has never heard of pipelines. This module is the other half: it builds
//! the endpoint handlers as closures over the pipeline control surface and
//! hands them to [`pilot_gateway::Gateway::start`]. Opt-in via
//! [`PipelineConfig::gateway`](crate::pipeline::PipelineConfig::gateway);
//! with the knob unset (the default) none of this exists — no listener, no
//! threads, no `gateway.*` gauges.
//!
//! | endpoint                 | serves                                          |
//! |--------------------------|-------------------------------------------------|
//! | `GET /metrics`           | Prometheus text exposition of every gauge/counter |
//! | `GET /telemetry/frames`  | the telemetry frame ring as a JSON array        |
//! | `GET /telemetry/stream`  | SSE: each new frame + periodic bottleneck verdict |
//! | `GET /top`               | the `pilot_top` table as JSON ([`TopView`])     |
//! | `GET /trace`             | Chrome `trace_event` JSON, streamed to the socket |
//! | `GET /control/journal`   | controller + external tune actions, merged      |
//! | `POST /control/tune`     | set `TuneTable` knobs live, bounds-checked      |
//! | `POST /produce`          | append a record to a topic partition            |
//!
//! External tunes are journalled as [`ControlEvent`]s with
//! [`Verdict::External`] so `GET /control/journal` shows one causal
//! history: what the controller did, what an operator did, interleaved.

use super::ctl::PipelineCtl;
use crate::control::{Action, Cause, ControlBounds, ControlEvent, ControllerHandle, Verdict};
use parking_lot::Mutex;
use pilot_broker::{BrokerError, Record};
use pilot_gateway::{Gateway, GatewayConfig, Request, Response, Router, StopFlag};
use pilot_metrics::{
    attribute, frames_json, prometheus_exposition, push_json_string, write_chrome_trace_to, Span,
    TelemetryFrame, TopView, PIPELINE_GAUGES,
};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ceiling for externally set linger windows (10 s in µs): the knob has no
/// [`ControlBounds`] entry because the controller core never turns it, so
/// the gateway enforces its own sanity bound.
pub const LINGER_MAX_US: u64 = 10_000_000;

/// SSE frame poll interval.
const STREAM_POLL: Duration = Duration::from_millis(25);
/// Minimum spacing between two SSE bottleneck verdicts.
const VERDICT_EVERY: Duration = Duration::from_millis(250);
/// Attribution window for `/top` and the SSE verdict events.
const ATTRIBUTION_WINDOW_US: u64 = 250_000;

/// Start the pipeline's gateway: build every endpoint around `ctl` and
/// serve on `cfg.bind`. `scaler` is the controller slot (for the journal
/// endpoint); `bounds` gates `POST /control/tune`.
pub(crate) fn start(
    cfg: &GatewayConfig,
    ctl: &Arc<PipelineCtl>,
    scaler: &Arc<Mutex<Option<ControllerHandle>>>,
    bounds: ControlBounds,
) -> io::Result<Gateway> {
    let stop = StopFlag::new();
    let journal: Arc<Mutex<Vec<ControlEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let registry = ctl.shared.metrics().clone();
    let job_id = ctl.shared.ctx.job_id;

    let metrics_registry = registry.clone();
    let frames_ctl = Arc::clone(ctl);
    let stream_ctl = Arc::clone(ctl);
    let stream_stop = stop.clone();
    let top_ctl = Arc::clone(ctl);
    let trace_ctl = Arc::clone(ctl);
    let journal_scaler = Arc::clone(scaler);
    let journal_log = Arc::clone(&journal);
    let tune_ctl = Arc::clone(ctl);
    let tune_log = Arc::clone(&journal);
    let produce_ctl = Arc::clone(ctl);

    let router = Router::new()
        .get(
            "/metrics",
            Box::new(move |_req: &Request| Response::Full {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: prometheus_exposition(&metrics_registry).into_bytes(),
            }),
        )
        .get(
            "/telemetry/frames",
            Box::new(move |_req: &Request| {
                let frames = frames_ctl
                    .telemetry_sampler()
                    .map(|s| s.frames())
                    .unwrap_or_default();
                Response::json(frames_json(&frames))
            }),
        )
        .get(
            "/telemetry/stream",
            Box::new(move |_req: &Request| {
                if stream_ctl.telemetry_sampler().is_none() {
                    return telemetry_off();
                }
                let ctl = Arc::clone(&stream_ctl);
                let stop = stream_stop.clone();
                Response::Stream {
                    content_type: "text/event-stream",
                    write: Box::new(move |w| stream_telemetry(&ctl, &stop, w)),
                }
            }),
        )
        .get(
            "/top",
            Box::new(move |_req: &Request| {
                let Some(sampler) = top_ctl.telemetry_sampler() else {
                    return telemetry_off();
                };
                let frames = sampler.frames();
                let Some(latest) = frames.last() else {
                    return Response::text(503, "no telemetry frame sampled yet\n");
                };
                let processed = top_ctl
                    .shared
                    .metrics()
                    .report_for_job(job_id)
                    .total_messages();
                let mut view = TopView::from_frame(latest, PIPELINE_GAUGES, processed, None);
                view.bottleneck = attribute_dominant(&top_ctl, &frames);
                Response::json(view.to_json())
            }),
        )
        .get(
            "/trace",
            Box::new(move |_req: &Request| {
                let ctl = Arc::clone(&trace_ctl);
                Response::Stream {
                    content_type: "application/json",
                    write: Box::new(move |w| {
                        let spans = job_spans(&ctl);
                        let frames = ctl
                            .telemetry_sampler()
                            .map(|s| s.frames())
                            .unwrap_or_default();
                        write_chrome_trace_to(w, &spans, &frames)
                    }),
                }
            }),
        )
        .get(
            "/control/journal",
            Box::new(move |_req: &Request| {
                let mut events: Vec<ControlEvent> = journal_scaler
                    .lock()
                    .as_ref()
                    .map(|s| s.events())
                    .unwrap_or_default();
                events.extend(journal_log.lock().iter().cloned());
                events.sort_by_key(|e| e.at);
                Response::json(events_json(&events))
            }),
        )
        .post(
            "/control/tune",
            Box::new(move |req: &Request| apply_tune(req, &tune_ctl, &bounds, &tune_log, started)),
        )
        .post(
            "/produce",
            Box::new(move |req: &Request| produce(req, &produce_ctl)),
        );

    Gateway::start(cfg, router, &registry, stop)
}

fn telemetry_off() -> Response {
    Response::text(
        404,
        "telemetry plane is off (set telemetry_sample_ms on the pipeline)\n",
    )
}

/// Spans of this pipeline's job (other jobs sharing the registry are not
/// this gateway's business).
fn job_spans(ctl: &PipelineCtl) -> Vec<Span> {
    let job_id = ctl.shared.ctx.job_id;
    ctl.shared
        .metrics()
        .snapshot()
        .into_iter()
        .filter(|s| s.job_id == job_id)
        .collect()
}

/// Dominant component of the most recent attribution window, when enough
/// signal exists.
fn attribute_dominant(ctl: &PipelineCtl, frames: &[TelemetryFrame]) -> Option<String> {
    if frames.len() < 2 {
        return None;
    }
    let spans = job_spans(ctl);
    if spans.is_empty() {
        return None;
    }
    let attr = attribute(&spans, frames, ATTRIBUTION_WINDOW_US);
    attr.windows
        .last()
        .and_then(|w| w.dominant())
        .or_else(|| attr.dominant())
        .map(|c| c.label())
}

/// The SSE loop: push every new telemetry frame (`event: frame`) and a
/// periodic bottleneck verdict (`event: verdict`) until the subscriber
/// hangs up or the gateway stops. The cursor starts one frame back so a
/// new subscriber sees data immediately instead of waiting a sample tick.
fn stream_telemetry(ctl: &PipelineCtl, stop: &StopFlag, w: &mut dyn io::Write) -> io::Result<()> {
    let sampler = ctl.telemetry_sampler().expect("checked by handler");
    let mut cursor = {
        let frames = sampler.frames();
        frames
            .len()
            .checked_sub(2)
            .and_then(|i| frames.get(i))
            .map(|f| f.t_us)
            .unwrap_or(0)
    };
    let mut last_verdict = Instant::now();
    let mut first = true;
    while !stop.is_stopped() && !ctl.is_stopped() {
        let frames = sampler.frames();
        for frame in frames.iter() {
            if frame.t_us <= cursor {
                continue;
            }
            pilot_gateway::write_sse_event(w, Some("frame"), &frame.to_json())?;
            cursor = frame.t_us;
        }
        if first || last_verdict.elapsed() >= VERDICT_EVERY {
            first = false;
            last_verdict = Instant::now();
            let mut data = String::from("{\"t_us\":");
            data.push_str(&ctl.shared.metrics().now_us().to_string());
            data.push_str(",\"bottleneck\":");
            match attribute_dominant(ctl, &frames) {
                Some(label) => push_json_string(&mut data, &label),
                None => data.push_str("null"),
            }
            data.push('}');
            pilot_gateway::write_sse_event(w, Some("verdict"), &data)?;
        }
        std::thread::sleep(STREAM_POLL);
    }
    Ok(())
}

/// Render a journal as a JSON array (one object per [`ControlEvent`]).
fn events_json(events: &[ControlEvent]) -> String {
    let mut out = String::with_capacity(2 + events.len() * 160);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"at_us\":");
        out.push_str(&(e.at.as_micros() as u64).to_string());
        out.push_str(",\"action\":");
        push_json_string(&mut out, e.action.label());
        out.push_str(",\"before\":");
        out.push_str(&e.before.to_string());
        out.push_str(",\"after\":");
        out.push_str(&e.after.to_string());
        out.push_str(",\"cause\":{\"lag\":");
        out.push_str(&e.cause.lag.to_string());
        out.push_str(",\"verdict\":");
        push_json_string(&mut out, e.cause.verdict.label());
        out.push_str(",\"bottleneck\":");
        match &e.cause.bottleneck {
            Some(b) => push_json_string(&mut out, b),
            None => out.push_str("null"),
        }
        out.push_str("},\"gauges\":{");
        for (j, (name, value)) in e.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// `POST /control/tune?batch_max_bytes=..&linger_us=..&prefetch_depth=..&fetch_max=..`
///
/// Validates the whole request against `bounds` first (tracking the
/// would-be state so `batch_max_bytes=65536&linger_us=2000` in one request
/// is legal), then applies and journals every action. Any unknown knob,
/// unparsable value, or out-of-bounds target rejects the request whole —
/// nothing is applied.
fn apply_tune(
    req: &Request,
    ctl: &PipelineCtl,
    bounds: &ControlBounds,
    journal: &Mutex<Vec<ControlEvent>>,
    started: Instant,
) -> Response {
    if req.query.is_empty() {
        return Response::bad_request(
            "no knobs given; supported: batch_max_bytes, linger_us, prefetch_depth, fetch_max",
        );
    }
    let tune = &ctl.shared.tune;
    // Validation pass over the planned state.
    let mut batch = tune.batch_max_bytes();
    let mut actions: Vec<Action> = Vec::with_capacity(req.query.len());
    for (knob, value) in &req.query {
        let v: u64 = match value.parse() {
            Ok(v) => v,
            Err(_) => {
                return Response::bad_request(format!("knob {knob}: not an integer: {value:?}"))
            }
        };
        let action = match knob.as_str() {
            "batch_max_bytes" => {
                let to = v as usize;
                if to < bounds.min_batch_bytes || to > bounds.max_batch_bytes {
                    return out_of_bounds(knob, v, bounds.min_batch_bytes, bounds.max_batch_bytes);
                }
                let from = batch;
                batch = to;
                Action::SetBatchMaxBytes { from, to }
            }
            "linger_us" => {
                if v > LINGER_MAX_US {
                    return out_of_bounds(knob, v, 0, LINGER_MAX_US as usize);
                }
                if v > 0 && batch == 0 {
                    return Response::bad_request(
                        "linger_us requires batching on (set batch_max_bytes > 0 first, \
                         or in the same request)",
                    );
                }
                Action::SetLinger {
                    from_us: tune.linger().as_micros() as u64,
                    to_us: v,
                }
            }
            "prefetch_depth" => {
                let to = v as usize;
                if to < bounds.min_prefetch || to > bounds.max_prefetch {
                    return out_of_bounds(knob, v, bounds.min_prefetch, bounds.max_prefetch);
                }
                Action::SetPrefetchDepth {
                    from: tune.prefetch_depth(),
                    to,
                }
            }
            "fetch_max" => {
                let to = v as usize;
                if to < bounds.min_fetch_max || to > bounds.max_fetch_max {
                    return out_of_bounds(knob, v, bounds.min_fetch_max, bounds.max_fetch_max);
                }
                Action::SetFetchMax {
                    from: tune.fetch_max(),
                    to,
                }
            }
            other => {
                return Response::bad_request(format!(
                    "unknown knob {other:?}; supported: batch_max_bytes, linger_us, \
                     prefetch_depth, fetch_max"
                ))
            }
        };
        actions.push(action);
    }
    // Apply pass: everything validated, nothing can fail now.
    let lag = ctl.total_lag();
    let gauges: Vec<(String, i64)> = ctl
        .telemetry_sampler()
        .and_then(|s| s.latest())
        .map(|f| f.values.iter().map(|(n, v)| (n.to_string(), *v)).collect())
        .unwrap_or_default();
    let at = started.elapsed();
    let mut applied = journal.lock();
    for action in &actions {
        match action {
            Action::SetBatchMaxBytes { to, .. } => tune.set_batch_max_bytes(*to),
            Action::SetLinger { to_us, .. } => tune.set_linger(Duration::from_micros(*to_us)),
            Action::SetPrefetchDepth { to, .. } => tune.set_prefetch_depth(*to),
            Action::SetFetchMax { to, .. } => tune.set_fetch_max(*to),
            _ => unreachable!("tune endpoint only builds knob-set actions"),
        }
        applied.push(ControlEvent {
            at,
            cause: Cause {
                lag,
                verdict: Verdict::External,
                bottleneck: None,
            },
            action: action.clone(),
            before: action.before(),
            after: action.after(),
            gauges: gauges.clone(),
        });
    }
    drop(applied);
    let mut body = String::from("{\"applied\":[");
    for (i, action) in actions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"action\":");
        push_json_string(&mut body, action.label());
        body.push_str(",\"before\":");
        body.push_str(&action.before().to_string());
        body.push_str(",\"after\":");
        body.push_str(&action.after().to_string());
        body.push('}');
    }
    body.push_str("]}");
    Response::json(body)
}

fn out_of_bounds(knob: &str, v: u64, min: usize, max: usize) -> Response {
    Response::bad_request(format!("knob {knob}: {v} outside bounds [{min}, {max}]"))
}

/// `POST /produce?topic=<name>&partition=<n>` with the record payload as
/// the request body. The topic defaults to the pipeline's own; the
/// partition to 0. Empty bodies are rejected: an empty payload *is* the
/// end-of-stream sentinel of the pipeline protocol, and letting one in
/// through the front door would terminate the partition.
fn produce(req: &Request, ctl: &PipelineCtl) -> Response {
    if req.body.is_empty() {
        return Response::bad_request(
            "empty payload (an empty record is the end-of-stream sentinel)",
        );
    }
    let topic = req
        .query_param("topic")
        .unwrap_or(ctl.shared.topic.as_str())
        .to_string();
    let partition: usize = match req.query_param("partition").unwrap_or("0").parse() {
        Ok(p) => p,
        Err(_) => return Response::bad_request("partition: not an integer"),
    };
    let record = Record::new(req.body.clone()).with_timestamp(ctl.shared.metrics().now_us());
    match ctl.shared.broker.append(&topic, partition, record) {
        Ok(offset) => {
            let mut body = String::from("{\"topic\":");
            push_json_string(&mut body, &topic);
            body.push_str(",\"partition\":");
            body.push_str(&partition.to_string());
            body.push_str(",\"offset\":");
            body.push_str(&offset.to_string());
            body.push('}');
            Response::json(body)
        }
        Err(e @ (BrokerError::UnknownTopic(_) | BrokerError::UnknownPartition { .. })) => {
            Response::text(404, format!("{e}\n"))
        }
        Err(e) => Response::text(500, format!("{e}\n")),
    }
}
