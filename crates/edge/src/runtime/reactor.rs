//! The event-driven consumer core: one group member as a polled state
//! machine on the shared reactor.
//!
//! With `reactor_threads = Some(k)` the cell stops dedicating a cloud task
//! (and its OS thread) to every consumer member. Instead each member is a
//! [`ReactorConsumerStage`] — a [`ReactorTask`] driven by the
//! [`pilot_dataflow::LocalExecutor`]'s fixed pool of `k` threads. The
//! stage never blocks a reactor thread waiting for data or for a link
//! reservation:
//!
//! * **Fetch** goes through [`Fetcher::poll_ready`] → the broker's arrival
//!   registry. No data means the member's waker is armed on exactly the
//!   partitions it watches and the task returns `Pending`; the append that
//!   makes a watched partition non-empty re-queues it. Ten thousand parked
//!   members cost an appender one waker, not a `notify_all` herd.
//! * **Broker→cloud transport** reserves the link for the whole batch and
//!   parks on the reservation's *deadline* (`PendingUntil`) instead of
//!   sleeping in [`Reservation::wait`] — the reactor thread is free to
//!   poll other members while the simulated bytes are in flight.
//!
//! The state machine mirrors the inline [`ConsumerStage`] round — sync →
//! refresh → fetch → transfer → process → commit — and keeps its commit
//! policy: offsets commit only after a fetched round is fully processed,
//! so a member stopped mid-transfer redelivers (at-least-once).
//!
//! [`ConsumerStage`]: super::consumer::ConsumerStage
//! [`Reservation::wait`]: pilot_netsim::Reservation::wait

use super::consumer::{Fetcher, Processor};
use super::sentinel;
use super::Shared;
use pilot_broker::Record;
use pilot_dataflow::{ReactorPoll, ReactorTask};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::Waker;
use std::time::{Duration, Instant};

/// Idle members re-poll at least this often even if no wake reaches them.
const IDLE_BACKSTOP: Duration = Duration::from_secs(1);

/// Where the member is inside its poll round.
enum State {
    /// Ready to sync membership and fetch the next round.
    Fetch,
    /// A batch's broker→cloud transfer is in flight; the front of `queue`
    /// completes at `deadline`.
    Transfer {
        queue: VecDeque<(usize, Vec<Record>)>,
        deadline: Instant,
        net_start_us: u64,
    },
}

/// One consumer member as a reactor task. Construction resolves the
/// group assignment and subscribes (same as the thread-backed shapes);
/// polling advances the round state machine by one bounded step.
pub(crate) struct ReactorConsumerStage {
    shared: Arc<Shared>,
    member: String,
    stop: Arc<AtomicBool>,
    fetcher: Fetcher,
    proc: Processor,
    state: State,
    processed: u64,
}

impl ReactorConsumerStage {
    pub(crate) fn new(
        shared: Arc<Shared>,
        member: String,
        stop: Arc<AtomicBool>,
    ) -> Result<Self, String> {
        let fetcher = Fetcher::new(Arc::clone(&shared), member.clone())?;
        let proc = Processor::new(&shared);
        Ok(Self {
            shared,
            member,
            stop,
            fetcher,
            proc,
            state: State::Fetch,
            processed: 0,
        })
    }

    /// Reserve the broker→cloud link for the batch at the front of the
    /// queue and return the instant the transfer completes. The
    /// reservation object is dropped immediately — the link accounted the
    /// busy window at reserve time; only the deadline matters here.
    fn start_transfer(&self, queue: &VecDeque<(usize, Vec<Record>)>) -> (Instant, u64) {
        let (_, records) = queue.front().expect("transfer starts with a batch");
        let sizes: Vec<u64> = records.iter().map(|r| r.value.len() as u64).collect();
        let net_start_us = self.shared.spans().now_us();
        let reservation = self.shared.link_broker_cloud.reserve_batch(&sizes);
        (reservation.deadline(), net_start_us)
    }

    /// Orderly completion: commit (only when no fetched round is left
    /// half-processed — positions past unprocessed records must stay
    /// uncommitted so a successor redelivers), leave the group.
    fn finish(&mut self) -> ReactorPoll {
        if matches!(self.state, State::Fetch) {
            self.fetcher.consumer.commit();
        }
        self.shared.coordinator.leave(&self.member);
        ReactorPoll::Complete(Ok(self.processed))
    }

    /// Failure path: raise the shared stop flag (mirrors `stage::drive`),
    /// release membership without committing.
    fn fail(&mut self, e: String) -> ReactorPoll {
        self.shared.stop_all.store(true, Ordering::Relaxed);
        self.shared.coordinator.leave(&self.member);
        ReactorPoll::Complete(Err(e))
    }
}

impl ReactorTask for ReactorConsumerStage {
    fn poll(&mut self, waker: &Waker) -> ReactorPoll {
        loop {
            if self.stop.load(Ordering::Relaxed) || self.shared.stopping() {
                return self.finish();
            }
            match std::mem::replace(&mut self.state, State::Fetch) {
                State::Fetch => {
                    if self.shared.sentinels.all_done() {
                        return self.finish();
                    }
                    match self.fetcher.sync() {
                        Ok(true) => {}
                        // Retired by a scale-down rebalance.
                        Ok(false) => return self.finish(),
                        Err(e) => return self.fail(e),
                    }
                    self.proc.refresh(&self.shared);
                    if self.fetcher.idle() {
                        // Nothing assigned (or all assigned partitions
                        // finished): no arrival can wake us. Rebalances,
                        // completion, and shutdown all `wake_all` the
                        // executor, so the timer is only a coarse backstop
                        // — at 64k members a `poll_timeout`-paced idle
                        // would saturate the pool with no-op polls during
                        // the drain tail.
                        let pace = self.shared.consumer.poll_timeout.max(IDLE_BACKSTOP);
                        return ReactorPoll::PendingUntil(Instant::now() + pace);
                    }
                    let batches = match self.fetcher.poll_ready(waker) {
                        Ok(Some(b)) => b,
                        // Waker armed on the arrival registry: the next
                        // append to a watched partition re-queues us.
                        Ok(None) => return ReactorPoll::Pending,
                        Err(e) => return self.fail(e),
                    };
                    let mut queue: VecDeque<(usize, Vec<Record>)> = VecDeque::new();
                    for (p, records) in batches {
                        let mut kept = Vec::with_capacity(records.len());
                        for record in records {
                            if sentinel::is_sentinel(&record) {
                                self.shared.sentinels.mark_done(p);
                                let _ = self.fetcher.consumer.pause(p);
                            } else {
                                kept.push(record);
                            }
                        }
                        if !kept.is_empty() {
                            queue.push_back((p, kept));
                        }
                    }
                    if queue.is_empty() {
                        // The round was sentinels only (consumed — commit
                        // records that) or empty; yield for fairness.
                        self.fetcher.consumer.commit();
                        return ReactorPoll::Ready;
                    }
                    let (deadline, net_start_us) = self.start_transfer(&queue);
                    self.state = State::Transfer {
                        queue,
                        deadline,
                        net_start_us,
                    };
                    // Fall through to the Transfer arm: a zero-latency
                    // link completes inline instead of bouncing through
                    // the timer heap.
                }
                State::Transfer {
                    mut queue,
                    deadline,
                    net_start_us,
                } => {
                    if Instant::now() < deadline {
                        self.state = State::Transfer {
                            queue,
                            deadline,
                            net_start_us,
                        };
                        return ReactorPoll::PendingUntil(deadline);
                    }
                    let net_end_us = self.shared.spans().now_us();
                    let (p, records) = queue.pop_front().expect("transfer state has a batch");
                    for record in &records {
                        match self
                            .proc
                            .process(&self.shared, p, record, net_start_us, net_end_us)
                        {
                            Ok(n) => self.processed += n,
                            Err(e) => return self.fail(e),
                        }
                    }
                    if queue.front().is_some() {
                        let (deadline, net_start_us) = self.start_transfer(&queue);
                        self.state = State::Transfer {
                            queue,
                            deadline,
                            net_start_us,
                        };
                        continue;
                    }
                    // Round fully processed: commit and yield (Ready, not
                    // another fetch — one round per poll keeps a hot
                    // member from starving its reactor thread's siblings).
                    self.fetcher.consumer.commit();
                    return ReactorPoll::Ready;
                }
            }
        }
    }
}
