//! Producer-side batching — the accumulate / flush / double-buffer logic of
//! the pipelined transport, implemented exactly once.
//!
//! Encoded messages accumulate in a [`Batcher`] until their summed size
//! reaches `batch_max_bytes` or the linger window closes; the batch then
//! ships over one non-blocking link reservation while the next batch
//! encodes (at most one batch stays in flight — a double buffer). When the
//! reservation completes, each message is appended to the broker
//! individually with its own Network and Broker spans, so offsets, ordering
//! and the per-message span chain are identical to the serial path.

use super::Shared;
use bytes::Bytes;
use pilot_broker::Record;
use pilot_metrics::Component;
use pilot_netsim::Reservation;
use std::collections::VecDeque;
use std::time::Instant;

/// An encoded message waiting inside (or in flight with) a producer batch.
pub(crate) struct PendingMsg {
    /// Encoded wire payload.
    pub(crate) payload: Bytes,
    /// Metric msg id (device packed into the high bits).
    pub(crate) mid: u64,
    /// Produce start timestamp (also the record timestamp).
    pub(crate) t0: u64,
}

/// A batch whose link reservation is in flight: the reservation, the
/// batch's network-span start, and the messages aboard.
struct InFlightBatch {
    reservation: Reservation,
    net_start_us: u64,
    msgs: Vec<PendingMsg>,
    /// Summed payload bytes aboard (the in-flight telemetry gauge's unit).
    bytes: u64,
}

/// One device's batching state: the open (accumulating) batch and the
/// in-flight double buffer. Owned by a `DeviceProducer`, so interleaved
/// stepping on multiplexed engine workers can never mix batches across
/// devices.
pub(crate) struct Batcher {
    device: usize,
    pending: Vec<PendingMsg>,
    pending_bytes: usize,
    batch_open: Option<Instant>,
    in_flight: VecDeque<InFlightBatch>,
}

impl Batcher {
    pub(crate) fn new(device: usize) -> Self {
        Self {
            device,
            pending: Vec::new(),
            pending_bytes: 0,
            batch_open: None,
            in_flight: VecDeque::new(),
        }
    }

    /// Accumulate one encoded message; the batch ships when it is full or
    /// its linger window closed. The reservation completes (and the
    /// messages append) while later messages encode. The threshold and
    /// linger window are live [`TuneTable`](super::TuneTable) cells,
    /// re-read per push, so a widened batch takes effect mid-stream.
    pub(crate) fn push(&mut self, shared: &Shared, msg: PendingMsg) -> Result<(), String> {
        self.pending_bytes += msg.payload.len();
        self.pending.push(msg);
        let opened = *self.batch_open.get_or_insert_with(Instant::now);
        if self.pending_bytes >= shared.tune.batch_max_bytes()
            || opened.elapsed() >= shared.tune.linger()
        {
            self.flush(shared)?;
        }
        Ok(())
    }

    /// Whether nothing is accumulated or in flight — the producer's guard
    /// for switching to the serial path when batching is turned off live.
    pub(crate) fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.in_flight.is_empty()
    }

    /// Ship the accumulated batch over one link reservation (non-blocking)
    /// and complete older batches so at most one stays in flight.
    pub(crate) fn flush(&mut self, shared: &Shared) -> Result<(), String> {
        self.pending_bytes = 0;
        self.batch_open = None;
        if self.pending.is_empty() {
            return Ok(());
        }
        let sizes: Vec<u64> = self
            .pending
            .iter()
            .map(|m| m.payload.len() as u64)
            .collect();
        let net_start_us = shared.metrics().now_us();
        let reservation = shared.link_edge_broker.reserve_batch(&sizes);
        let bytes: u64 = sizes.iter().sum();
        if let Some(g) = shared.stage_gauges() {
            g.inflight_batch_bytes.add(bytes as i64);
        }
        self.in_flight.push_back(InFlightBatch {
            reservation,
            net_start_us,
            msgs: std::mem::take(&mut self.pending),
            bytes,
        });
        while self.in_flight.len() > 1 {
            self.complete_oldest(shared)?;
        }
        Ok(())
    }

    /// Flush and wait out everything still in flight — called before the
    /// sentinel so every message lands in the partition first.
    pub(crate) fn drain(&mut self, shared: &Shared) -> Result<(), String> {
        self.flush(shared)?;
        while !self.in_flight.is_empty() {
            self.complete_oldest(shared)?;
        }
        Ok(())
    }

    /// Wait out the oldest in-flight batch's reservation, then append its
    /// messages individually (offsets and ordering as in the serial path)
    /// with per-message Network and Broker spans.
    fn complete_oldest(&mut self, shared: &Shared) -> Result<(), String> {
        let Some(batch) = self.in_flight.pop_front() else {
            return Ok(());
        };
        let spans = shared.spans();
        batch.reservation.wait();
        if let Some(g) = shared.stage_gauges() {
            g.inflight_batch_bytes.sub(batch.bytes as i64);
        }
        let net_end_us = spans.now_us();
        for msg in batch.msgs {
            let bytes = msg.payload.len() as u64;
            spans.record(
                msg.mid,
                Component::Network(shared.link_edge_broker.name().to_string()),
                batch.net_start_us,
                net_end_us,
                bytes,
            );
            let b0 = spans.now_us();
            shared
                .broker
                .append(
                    &shared.topic,
                    self.device,
                    Record::new(msg.payload).with_timestamp(msg.t0),
                )
                .map_err(|e| e.to_string())?;
            spans.record(msg.mid, Component::Broker, b0, spans.now_us(), bytes);
        }
        Ok(())
    }
}
