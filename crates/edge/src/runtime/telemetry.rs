//! The pipeline's stage gauges — the push/pull instrumentation points of
//! the live telemetry plane (DESIGN.md §11).
//!
//! When [`PipelineConfig::telemetry_sample_ms`] is set, `start()` registers
//! one [`Gauge`] per instrumentation point under a stable name in the job's
//! [`MetricsRegistry`] and stores the handles here. **Push** gauges are
//! updated inline by the stage that owns the state (deadline-queue depth by
//! the producer engine, in-flight batch bytes by the batcher, prefetch
//! occupancy by the consumer) — one relaxed atomic add on a path that
//! already crosses a simulated network link. **Pull** gauges (link
//! reservation queues, compute-pool occupancy, per-partition consumer lag)
//! are refreshed by `StageGauges::probes` closures the
//! [`TelemetrySampler`](pilot_metrics::TelemetrySampler) runs before each
//! snapshot, so the hot path never pays for state it does not own.
//!
//! With the knob unset, `Shared::gauges` is `None` and none of this exists:
//! no registry entries, no sampler thread, and every hot-path update is a
//! single pointer-null check (asserted zero-overhead in
//! `tests/telemetry.rs`).
//!
//! [`PipelineConfig::telemetry_sample_ms`]: crate::pipeline::PipelineConfig::telemetry_sample_ms

use super::Shared;
use pilot_metrics::{Gauge, MetricsRegistry, Probe};
use std::sync::Arc;

/// Stable gauge name: producer deadline-queue depth (devices parked in the
/// engine, waiting for their next send deadline or a free worker).
pub const GAUGE_PRODUCER_QUEUE_DEPTH: &str = "producer.deadline_queue_depth";
/// Stable gauge name: encoded bytes aboard in-flight producer batches
/// (reservation issued, messages not yet appended).
pub const GAUGE_INFLIGHT_BATCH_BYTES: &str = "producer.inflight_batch_bytes";
/// Stable gauge name: batches queued between the prefetch threads and the
/// consumer stages (summed over all consumers).
pub const GAUGE_PREFETCH_OCCUPANCY: &str = "consumer.prefetch_occupancy";
/// Stable gauge name: jobs currently running inside the cloud compute pool.
pub const GAUGE_COMPUTE_POOL_OCCUPANCY: &str = "cloud.compute_pool_occupancy";
/// Stable gauge name: µs of transfer already reserved but not yet elapsed
/// on the edge→broker link (its queueing backlog).
pub const GAUGE_NET_EDGE_BROKER_PENDING: &str = "net.edge_broker.pending_us";
/// Stable gauge name: cumulative µs of transit reserved on the edge→broker
/// link since creation (its busy time).
pub const GAUGE_NET_EDGE_BROKER_BUSY: &str = "net.edge_broker.busy_us";
/// Stable gauge name: reservation backlog of the broker→cloud link.
pub const GAUGE_NET_BROKER_CLOUD_PENDING: &str = "net.broker_cloud.pending_us";
/// Stable gauge name: cumulative busy time of the broker→cloud link.
pub const GAUGE_NET_BROKER_CLOUD_BUSY: &str = "net.broker_cloud.busy_us";
/// Stable gauge name: total consumer-group lag (records behind the
/// watermarks, summed over partitions). Per-partition gauges live under
/// `broker.lag.p<N>`.
pub const GAUGE_BROKER_LAG_TOTAL: &str = "broker.lag.total";
/// Stable gauge name: reactor tasks queued ready to poll (consumer members
/// with data or an expired timer, waiting for a reactor thread). Stays 0
/// when the event-driven core is off.
pub const GAUGE_REACTOR_READY_DEPTH: &str = "consumer.reactor.ready_queue_depth";
/// Stable gauge name: cumulative µs the reactor threads spent inside task
/// polls (the reactor's busy time; compare against wall clock × threads
/// for utilisation). Stays 0 when the event-driven core is off.
pub const GAUGE_REACTOR_POLL_US: &str = "consumer.reactor.poll_us";
/// Stable gauge name: bytes appended to the durable broker log but not yet
/// covered by an fsync. Stays 0 when `log_dir` is unset.
pub const GAUGE_LOG_DIRTY_BYTES: &str = "broker.log.dirty_bytes";
/// Stable gauge name: cumulative µs the storage engine has spent inside
/// fsync — when this grows as fast as wall clock, the platter is the choke
/// point and the bottleneck attributor should say so.
pub const GAUGE_LOG_FSYNC_US: &str = "broker.log.fsync_us";
/// Stable gauge name: log segments across all topics and partitions
/// (resident and on-disk alike).
pub const GAUGE_LOG_SEGMENT_COUNT: &str = "broker.log.segment_count";
/// Stable gauge name: records appended but not yet durable, summed over
/// partitions (high watermark − durable watermark). Bounded by one commit
/// window of traffic when the group-commit flusher keeps up.
pub const GAUGE_LOG_DURABLE_LAG: &str = "broker.log.durable_lag";

/// The per-partition lag gauge name.
pub fn partition_lag_gauge(partition: usize) -> String {
    format!("broker.lag.p{partition}")
}

/// The pipeline's registered gauge handles. Lives in `Shared::gauges` (as
/// `Option<Arc<_>>`); `None` means telemetry is off and every hot-path
/// update short-circuits on the null check.
pub(crate) struct StageGauges {
    /// Devices parked in the producer engine(s). Dedicated engines all
    /// share this one handle; their adds and subs sum into the cell-wide
    /// depth, exactly like the multiplexed engine's single queue.
    pub(crate) producer_queue_depth: Arc<Gauge>,
    /// Bytes aboard in-flight producer batches.
    pub(crate) inflight_batch_bytes: Arc<Gauge>,
    /// Batches queued between prefetch threads and consumer stages.
    pub(crate) prefetch_occupancy: Arc<Gauge>,
    /// Compute-pool occupancy (pull — refreshed by the sampler probe).
    compute_pool_occupancy: Arc<Gauge>,
    /// Link backlog / busy-time gauges (pull).
    net_edge_broker_pending: Arc<Gauge>,
    net_edge_broker_busy: Arc<Gauge>,
    net_broker_cloud_pending: Arc<Gauge>,
    net_broker_cloud_busy: Arc<Gauge>,
    /// Consumer lag, one gauge per partition plus the total (pull).
    lag_total: Arc<Gauge>,
    lag_partitions: Vec<Arc<Gauge>>,
    /// Reactor ready-queue depth and cumulative poll time (pull; zero
    /// unless the event-driven consumer core is on).
    reactor_ready_depth: Arc<Gauge>,
    reactor_poll_us: Arc<Gauge>,
    /// Storage-engine gauges (pull; all but `segment_count` stay zero
    /// unless the durable log is on).
    log_dirty_bytes: Arc<Gauge>,
    log_fsync_us: Arc<Gauge>,
    log_segment_count: Arc<Gauge>,
    log_durable_lag: Arc<Gauge>,
}

impl StageGauges {
    /// Register every stage gauge under its stable name.
    pub(crate) fn new(registry: &MetricsRegistry, devices: usize) -> Self {
        Self {
            producer_queue_depth: registry.gauge(GAUGE_PRODUCER_QUEUE_DEPTH),
            inflight_batch_bytes: registry.gauge(GAUGE_INFLIGHT_BATCH_BYTES),
            prefetch_occupancy: registry.gauge(GAUGE_PREFETCH_OCCUPANCY),
            compute_pool_occupancy: registry.gauge(GAUGE_COMPUTE_POOL_OCCUPANCY),
            net_edge_broker_pending: registry.gauge(GAUGE_NET_EDGE_BROKER_PENDING),
            net_edge_broker_busy: registry.gauge(GAUGE_NET_EDGE_BROKER_BUSY),
            net_broker_cloud_pending: registry.gauge(GAUGE_NET_BROKER_CLOUD_PENDING),
            net_broker_cloud_busy: registry.gauge(GAUGE_NET_BROKER_CLOUD_BUSY),
            lag_total: registry.gauge(GAUGE_BROKER_LAG_TOTAL),
            lag_partitions: (0..devices)
                .map(|p| registry.gauge(&partition_lag_gauge(p)))
                .collect(),
            reactor_ready_depth: registry.gauge(GAUGE_REACTOR_READY_DEPTH),
            reactor_poll_us: registry.gauge(GAUGE_REACTOR_POLL_US),
            log_dirty_bytes: registry.gauge(GAUGE_LOG_DIRTY_BYTES),
            log_fsync_us: registry.gauge(GAUGE_LOG_FSYNC_US),
            log_segment_count: registry.gauge(GAUGE_LOG_SEGMENT_COUNT),
            log_durable_lag: registry.gauge(GAUGE_LOG_DURABLE_LAG),
        }
    }

    /// The sampler probes refreshing the pull gauges before each snapshot:
    /// link backlog and busy time, compute-pool occupancy, and consumer
    /// lag via the broker's `partition_lags` accessor. The probes capture
    /// the pipeline's `Shared` — the sampler is owned by `PipelineCtl`,
    /// not by `Shared`, so no reference cycle forms.
    pub(crate) fn probes(shared: &Arc<Shared>) -> Vec<Probe> {
        let links = Arc::clone(shared);
        let pool = Arc::clone(shared);
        let lag = Arc::clone(shared);
        let reactor = Arc::clone(shared);
        let storage = Arc::clone(shared);
        vec![
            Box::new(move || {
                let Some(g) = links.gauges.as_deref() else {
                    return;
                };
                g.net_edge_broker_pending
                    .set(links.link_edge_broker.pending_us() as i64);
                g.net_edge_broker_busy
                    .set(links.link_edge_broker.busy_us() as i64);
                g.net_broker_cloud_pending
                    .set(links.link_broker_cloud.pending_us() as i64);
                g.net_broker_cloud_busy
                    .set(links.link_broker_cloud.busy_us() as i64);
            }),
            Box::new(move || {
                let Some(g) = pool.gauges.as_deref() else {
                    return;
                };
                g.compute_pool_occupancy
                    .set(pool.ctx.compute.occupancy() as i64);
            }),
            Box::new(move || {
                let Some(g) = lag.gauges.as_deref() else {
                    return;
                };
                let Ok(lags) = lag.broker.partition_lags(&lag.group(), &lag.topic) else {
                    return;
                };
                let mut total = 0i64;
                for pl in &lags {
                    total += pl.lag() as i64;
                    if let Some(gauge) = g.lag_partitions.get(pl.partition) {
                        gauge.set(pl.lag() as i64);
                    }
                }
                g.lag_total.set(total);
            }),
            Box::new(move || {
                let Some(g) = reactor.gauges.as_deref() else {
                    return;
                };
                let Some(executor) = &reactor.reactor else {
                    return;
                };
                g.reactor_ready_depth.set(executor.ready_depth());
                g.reactor_poll_us.set(executor.poll_time_us() as i64);
            }),
            Box::new(move || {
                let Some(g) = storage.gauges.as_deref() else {
                    return;
                };
                let stats = storage.broker.log_stats();
                g.log_dirty_bytes.set(stats.dirty_bytes as i64);
                g.log_fsync_us.set(stats.fsync_us as i64);
                g.log_segment_count.set(stats.segment_count as i64);
                g.log_durable_lag.set(stats.durable_lag as i64);
            }),
        ]
    }
}
