//! The consumer stage: group membership, fetch, broker→cloud transport,
//! and cloud processing — one implementation for both consumer shapes.
//!
//! A [`ConsumerStage`] is either **inline** (prefetch depth 0, the
//! default): the [`Fetcher`] runs in the processing task and each record
//! pays its broker→cloud transfer between fetch and process — or
//! **prefetching** (`prefetch_depth > 0`): the same `Fetcher` moves onto a
//! dedicated thread that fetches and transfers batch N+1 (one link
//! reservation per batch) while the stage processes batch N, connected by
//! a depth-bounded queue (backpressure). The [`Processor`] — decode
//! scratch, hot-swappable cloud function, counters, span recording — is
//! identical in both shapes.
//!
//! Commit policy (at-least-once): offsets commit once per poll round after
//! processing (inline) or after queueing (prefetch — records handed to the
//! processing side count as delivered), plus a final commit on drain.

use super::sentinel;
use super::spans::{metric_msg_id, HotCounters};
use super::stage::{Stage, StepOutcome};
use super::Shared;
use crate::faas::CloudFn;
use pilot_broker::consumer::PartitionBatches;
use pilot_broker::{Consumer, Record};
use pilot_metrics::Component;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Records fetched (and transferred) from one partition, plus the
/// wall-clock window their shared broker→cloud transfer occupied.
struct FetchedBatch {
    partition: usize,
    records: Vec<Record>,
    net_start_us: u64,
    net_end_us: u64,
}

/// One member's view of the consumer group: assignment, rebalance
/// tracking, and the multi-partition fetch. Used directly by the inline
/// shape, owned by the prefetch thread otherwise, and embedded in the
/// reactor stage (`super::reactor`) — membership logic exists once.
pub(super) struct Fetcher {
    shared: Arc<Shared>,
    member: String,
    group: String,
    pub(super) consumer: Consumer,
    my_gen: u64,
    parts: Vec<usize>,
}

impl Fetcher {
    /// Resolve the member's assignment (membership is normally registered
    /// at spawn time so the first poll sees the final assignment; join
    /// here as a fallback) and subscribe to it.
    pub(super) fn new(shared: Arc<Shared>, member: String) -> Result<Self, String> {
        let group = shared.group();
        let (my_gen, parts) = shared
            .coordinator
            .assignment(&member)
            .unwrap_or_else(|| shared.coordinator.join(&member));
        let consumer = Self::subscribe(&shared, &group, &parts)?;
        Ok(Self {
            shared,
            member,
            group,
            consumer,
            my_gen,
            parts,
        })
    }

    /// Build a consumer over `parts`, pausing every partition whose
    /// sentinel was already consumed — a fresh consumer after a rebalance
    /// may be handed partitions an earlier owner finished.
    fn subscribe(shared: &Shared, group: &str, parts: &[usize]) -> Result<Consumer, String> {
        let mut consumer = Consumer::new(shared.broker.clone(), &shared.topic, group, parts)
            .map_err(|e| e.to_string())?;
        for &p in parts {
            if shared.sentinels.is_done(p) {
                let _ = consumer.pause(p);
            }
        }
        Ok(consumer)
    }

    /// Re-subscribe if the group generation moved. `Ok(false)` means this
    /// member is no longer part of the group (retired by a scale-down) and
    /// the caller should finish.
    pub(super) fn sync(&mut self) -> Result<bool, String> {
        if self.shared.coordinator.generation() != self.my_gen {
            match self.shared.coordinator.assignment(&self.member) {
                Some((g, p)) => {
                    self.my_gen = g;
                    self.parts = p;
                    self.consumer = Self::subscribe(&self.shared, &self.group, &self.parts)?;
                }
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Nothing to fetch: no assignment, or every assigned partition
    /// already finished.
    pub(super) fn idle(&self) -> bool {
        self.parts.is_empty() || self.consumer.all_paused()
    }

    /// One multi-partition fetch for everything this member owns: a single
    /// blocking wait on the topic's arrival condvar, however many
    /// partitions are assigned (a member owning 128 partitions of a
    /// 1024-device cell pays one wakeup, not 128 poll timeouts). The fetch
    /// budget is a live [`TuneTable`](super::TuneTable) cell, re-read per
    /// poll.
    fn poll(&mut self) -> Result<Vec<(usize, Vec<Record>)>, String> {
        self.consumer
            .poll_many(
                self.shared.tune.fetch_max(),
                self.shared.consumer.poll_timeout,
            )
            .map_err(|e| e.to_string())
    }

    /// Non-blocking readiness variant of [`Fetcher::poll`] for the reactor
    /// stage: `Ok(None)` means no data was ready and `waker` is armed on
    /// the topic's arrival registry — the next append to a watched
    /// partition wakes it (exact wake, no timeout polling).
    pub(super) fn poll_ready(
        &mut self,
        waker: &std::task::Waker,
    ) -> Result<Option<PartitionBatches>, String> {
        self.consumer
            .poll_many_ready(self.shared.tune.fetch_max(), waker)
            .map_err(|e| e.to_string())
    }
}

/// The cloud-side processing state shared by all consumer shapes: the
/// hot-swappable function, cached counters, and the decode scratch.
pub(super) struct Processor {
    fn_gen: u64,
    func: CloudFn,
    counters: HotCounters,
    // One scratch block per consumer: every message decodes into it
    // (`decode_any_into`), so the steady state allocates nothing even for
    // the paper's 2.6 MB messages — the data Vec reaches its high-water
    // capacity after the first message and is reused thereafter.
    scratch: pilot_datagen::Block,
}

impl Processor {
    pub(super) fn new(shared: &Shared) -> Self {
        let (fn_gen, factory) = shared.cloud_slot.current();
        Self {
            fn_gen,
            func: factory(&shared.ctx),
            counters: HotCounters::new(&shared.ctx),
            scratch: pilot_datagen::Block::default(),
        }
    }

    /// Re-instantiate the cloud function if it was hot-swapped.
    pub(super) fn refresh(&mut self, shared: &Shared) {
        let (g, factory) = shared.cloud_slot.current();
        if g != self.fn_gen {
            self.fn_gen = g;
            self.func = factory(&shared.ctx);
        }
    }

    /// Decode one non-sentinel record and run the cloud function on it,
    /// recording the Network span over `[net_start_us, net_end_us]` (the
    /// record's transfer window — per-batch wall clock under prefetch) and
    /// a CloudProcessor span covering decode + invoke. Returns 1 on
    /// success, 0 when the invocation failed (the error span is recorded;
    /// the stream continues — fault isolation).
    pub(super) fn process(
        &mut self,
        shared: &Shared,
        partition: usize,
        record: &Record,
        net_start_us: u64,
        net_end_us: u64,
    ) -> Result<u64, String> {
        let ctx = &shared.ctx;
        let spans = shared.spans();
        let bytes = record.value.len() as u64;
        // Cloud processing: deserialization is part of the processing
        // service time (it is what the paper's Dask consumer tasks spend
        // their floor cost on).
        let p0 = spans.now_us();
        let _produced_at = match pilot_datagen::decode_any_into(&record.value, &mut self.scratch) {
            Ok(v) => v,
            Err(e) => {
                self.counters.decode_errors.incr();
                return Err(format!("wire decode failed: {e}"));
            }
        };
        let mid = metric_msg_id(partition, self.scratch.msg_id);
        spans.record(
            mid,
            Component::Network(shared.link_broker_cloud.name().to_string()),
            net_start_us,
            net_end_us,
            bytes,
        );
        match (self.func)(ctx, &self.scratch) {
            Ok(_outcome) => {
                spans.record(mid, Component::CloudProcessor, p0, spans.now_us(), bytes);
                self.counters.messages_processed.incr();
                Ok(1)
            }
            Err(msg) => {
                spans.record_error(mid, Component::CloudProcessor, p0, spans.now_us(), bytes);
                self.counters.process_errors.incr();
                // A failing function invocation is recorded and the stream
                // continues — one bad message must not kill the processor
                // (fault isolation).
                let _ = msg;
                Ok(0)
            }
        }
    }
}

/// Hard cap on a prefetch channel's capacity: the admission gate (the live
/// `prefetch_depth` knob) bounds the queue below this; the channel itself
/// only backstops a knob raised beyond it.
const PREFETCH_QUEUE_CAP: usize = 64;

/// Where this stage's records come from.
enum Source {
    /// Fetch + broker→cloud transfer inlined in the processing task
    /// (prefetch depth 0, the default). Boxed: the fetcher (consumer
    /// positions, pause set, scratch) dwarfs the prefetch variant.
    Inline(Box<Fetcher>),
    /// A prefetch thread owns the [`Fetcher`]; batches arrive through a
    /// depth-bounded queue, errors travel through the same queue.
    Prefetch {
        rx: Option<mpsc::Receiver<Result<FetchedBatch, String>>>,
        quit: Arc<AtomicBool>,
        /// Batches currently in the queue — the admission-gate counter the
        /// prefetch loop checks against the live `prefetch_depth` knob.
        queued: Arc<AtomicUsize>,
        thread: Option<std::thread::JoinHandle<()>>,
    },
}

/// One consumer member as a [`Stage`]: stepping processes one poll round
/// (inline) or one prefetched batch; draining commits and leaves the
/// group.
pub(crate) struct ConsumerStage {
    shared: Arc<Shared>,
    member: String,
    proc: Processor,
    source: Source,
}

impl ConsumerStage {
    pub(crate) fn new(shared: Arc<Shared>, member: String) -> Result<Self, String> {
        let proc = Processor::new(&shared);
        // The shape is picked from the *live* knob at member spawn: depth 0
        // inlines the fetch; depth > 0 spawns the prefetch thread, whose
        // queue admission then tracks the knob live (a scaled-up member
        // joining after a `set_prefetch_depth` gets the new shape).
        let depth = shared.tune.prefetch_depth();
        let source = if depth == 0 {
            Source::Inline(Box::new(Fetcher::new(Arc::clone(&shared), member.clone())?))
        } else {
            // Capacity covers the deepest admissible knob so the gate (not
            // the channel) is what bounds the queue as the knob moves.
            let (tx, rx) = mpsc::sync_channel(depth.max(PREFETCH_QUEUE_CAP));
            let quit = Arc::new(AtomicBool::new(false));
            let queued = Arc::new(AtomicUsize::new(0));
            let thread = {
                let shared2 = Arc::clone(&shared);
                let member2 = member.clone();
                let quit2 = Arc::clone(&quit);
                let queued2 = Arc::clone(&queued);
                std::thread::spawn(move || prefetch_loop(shared2, member2, &quit2, &queued2, &tx))
            };
            Source::Prefetch {
                rx: Some(rx),
                quit,
                queued,
                thread: Some(thread),
            }
        };
        Ok(Self {
            shared,
            member,
            proc,
            source,
        })
    }

    /// Stop the prefetch thread (if any), commit when `commit` (on orderly
    /// shutdown the inline shape commits its final positions; the prefetch
    /// thread commits its own on exit), and release group membership.
    fn close(&mut self, commit: bool) -> Result<(), String> {
        let mut failure: Option<String> = None;
        match &mut self.source {
            Source::Inline(fetcher) => {
                if commit {
                    fetcher.consumer.commit();
                }
            }
            Source::Prefetch {
                rx,
                quit,
                queued,
                thread,
            } => {
                quit.store(true, Ordering::Relaxed);
                // Drain the queue before dropping it: the drain unblocks a
                // fetcher parked on a full queue, and each dequeued batch
                // decrements the occupancy gauge, so post-shutdown
                // telemetry reads zero instead of leaking the queued count.
                //
                // Queued batches are already *committed* (the fetcher
                // commits after queueing — records handed to the
                // processing side count as delivered), so the orderly
                // drain must still process them: a successor member reads
                // from the committed offset and would never redeliver
                // them. Discarding here would silently lose delivered
                // records on a scale-down retirement. Only the abort path
                // (a failing run) drops them.
                if commit {
                    self.proc.refresh(&self.shared);
                }
                if let Some(rx) = rx.take() {
                    loop {
                        match rx.try_recv() {
                            Ok(item) => {
                                if let Ok(batch) = item {
                                    queued.fetch_sub(1, Ordering::Relaxed);
                                    if let Some(g) = self.shared.stage_gauges() {
                                        g.prefetch_occupancy.decr();
                                    }
                                    if !commit || failure.is_some() {
                                        continue;
                                    }
                                    for record in &batch.records {
                                        if sentinel::is_sentinel(record) {
                                            self.shared.sentinels.mark_done(batch.partition);
                                            continue;
                                        }
                                        if let Err(e) = self.proc.process(
                                            &self.shared,
                                            batch.partition,
                                            record,
                                            batch.net_start_us,
                                            batch.net_end_us,
                                        ) {
                                            // Keep draining (the fetcher
                                            // must unpark), but surface
                                            // the first failure.
                                            failure = Some(e);
                                            break;
                                        }
                                    }
                                }
                            }
                            Err(mpsc::TryRecvError::Empty) => match thread {
                                // Fetcher still live (it observes `quit` at
                                // its next loop top, a bounded poll away).
                                Some(t) if !t.is_finished() => {
                                    std::thread::sleep(Duration::from_millis(1))
                                }
                                _ => break,
                            },
                            Err(mpsc::TryRecvError::Disconnected) => break,
                        }
                    }
                }
                if let Some(t) = thread.take() {
                    let _ = t.join();
                }
            }
        }
        self.shared.coordinator.leave(&self.member);
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Stage for ConsumerStage {
    fn step(&mut self) -> Result<StepOutcome, String> {
        if self.shared.sentinels.all_done() {
            return Ok(StepOutcome::Finished);
        }
        match &mut self.source {
            Source::Inline(fetcher) => {
                if !fetcher.sync()? {
                    // Retired by a scale-down rebalance.
                    return Ok(StepOutcome::Finished);
                }
                self.proc.refresh(&self.shared);
                if fetcher.idle() {
                    // Nothing assigned (or all assigned partitions
                    // finished): idle politely until rebalance or
                    // completion.
                    std::thread::sleep(self.shared.consumer.poll_timeout);
                    return Ok(StepOutcome::Idle);
                }
                let batches = fetcher.poll()?;
                if batches.is_empty() {
                    return Ok(StepOutcome::Idle);
                }
                let spans = self.shared.spans();
                let mut processed = 0u64;
                for (p, records) in batches {
                    for record in records {
                        if sentinel::is_sentinel(&record) {
                            self.shared.sentinels.mark_done(p);
                            let _ = fetcher.consumer.pause(p);
                            continue;
                        }
                        // Broker → cloud transport, paid inline.
                        let n0 = spans.now_us();
                        self.shared
                            .link_broker_cloud
                            .transfer(record.value.len() as u64);
                        let n1 = spans.now_us();
                        processed += self.proc.process(&self.shared, p, &record, n0, n1)?;
                    }
                }
                fetcher.consumer.commit();
                Ok(StepOutcome::Progress(processed))
            }
            Source::Prefetch { rx, queued, .. } => {
                let batch = match rx
                    .as_ref()
                    .expect("receiver lives until drain/abort")
                    .recv_timeout(self.shared.consumer.poll_timeout)
                {
                    Ok(Ok(batch)) => {
                        queued.fetch_sub(1, Ordering::Relaxed);
                        if let Some(g) = self.shared.stage_gauges() {
                            g.prefetch_occupancy.decr();
                        }
                        batch
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(mpsc::RecvTimeoutError::Timeout) => return Ok(StepOutcome::Idle),
                    // Fetch thread exited (e.g. retired by a scale-down).
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(StepOutcome::Finished),
                };
                self.proc.refresh(&self.shared);
                let mut processed = 0u64;
                for record in &batch.records {
                    if sentinel::is_sentinel(record) {
                        self.shared.sentinels.mark_done(batch.partition);
                        continue;
                    }
                    processed += self.proc.process(
                        &self.shared,
                        batch.partition,
                        record,
                        batch.net_start_us,
                        batch.net_end_us,
                    )?;
                }
                Ok(StepOutcome::Progress(processed))
            }
        }
    }

    fn drain(&mut self) -> Result<(), String> {
        self.close(true)
    }

    /// Failure path: same shutdown minus the offset commit (positions past
    /// a failed record must stay uncommitted) and minus processing of
    /// already-queued batches. Also fixes the seed's serial consumer
    /// leaving its group membership dangling on error.
    fn abort(&mut self) {
        let _ = self.close(false);
    }
}

/// The prefetch thread: owns the [`Fetcher`], pays the broker→cloud
/// transfer per batch (one reservation, propagation charged once), and
/// hands completed batches to the stage through the admission-gated queue
/// (the gate parks this thread while the processor is `prefetch_depth`
/// batches behind — backpressure against the *live* knob, so a controller
/// can deepen or shallow the window mid-run). Offsets commit only after a
/// round's batches are safely queued; a send failure means the stage
/// exited, so offsets stay uncommitted and a successor redelivers
/// (at-least-once).
fn prefetch_loop(
    shared: Arc<Shared>,
    member: String,
    quit: &AtomicBool,
    queued: &AtomicUsize,
    tx: &mpsc::SyncSender<Result<FetchedBatch, String>>,
) {
    let mut fetcher = match Fetcher::new(Arc::clone(&shared), member) {
        Ok(f) => f,
        Err(e) => {
            let _ = tx.send(Err(e));
            return;
        }
    };
    let spans = shared.spans();
    while !quit.load(Ordering::Relaxed) && !shared.stopping() && !shared.sentinels.all_done() {
        match fetcher.sync() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
        if fetcher.idle() {
            std::thread::sleep(shared.consumer.poll_timeout);
            continue;
        }
        let batches = match fetcher.poll() {
            Ok(b) => b,
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        };
        if batches.is_empty() {
            continue;
        }
        for (p, records) in batches {
            // Pay the broker → cloud transfer for the whole batch while
            // the stage chews on earlier batches: one reservation, transit
            // for the summed bytes, propagation once.
            let sizes: Vec<u64> = records
                .iter()
                .filter(|r| !sentinel::is_sentinel(r))
                .map(|r| r.value.len() as u64)
                .collect();
            let net_start_us = spans.now_us();
            if !sizes.is_empty() {
                shared.link_broker_cloud.reserve_batch(&sizes).wait();
            }
            let net_end_us = spans.now_us();
            if records.iter().any(sentinel::is_sentinel) {
                // Sentinel forwarded: stop polling this partition even
                // before the stage marks it done.
                let _ = fetcher.consumer.pause(p);
            }
            let batch = FetchedBatch {
                partition: p,
                records,
                net_start_us,
                net_end_us,
            };
            // Admission gate: park while the stage is a full window behind
            // the *live* depth knob (clamped to ≥ 1 — a live 0 cannot turn
            // this thread back inline). The channel capacity only backstops
            // knobs raised beyond `PREFETCH_QUEUE_CAP`.
            while queued.load(Ordering::Relaxed) >= shared.tune.prefetch_depth().max(1)
                && !quit.load(Ordering::Relaxed)
                && !shared.stopping()
            {
                std::thread::sleep(Duration::from_micros(200));
            }
            // Occupancy is incremented before the (blocking) send so the
            // gauge can never dip negative against the stage's decrement;
            // a failed send (stage gone) undoes it.
            queued.fetch_add(1, Ordering::Relaxed);
            if let Some(g) = shared.stage_gauges() {
                g.prefetch_occupancy.incr();
            }
            if tx.send(Ok(batch)).is_err() {
                queued.fetch_sub(1, Ordering::Relaxed);
                if let Some(g) = shared.stage_gauges() {
                    g.prefetch_occupancy.decr();
                }
                return;
            }
        }
        // Commit only after the fetched batches are safely queued.
        fetcher.consumer.commit();
    }
    fetcher.consumer.commit();
}
