//! The shared stage lifecycle: **spawn → step → drain → abort**.
//!
//! Every runtime task — producer engine workers and consumer members alike
//! — is a [`Stage`] driven by [`drive`]:
//!
//! ```text
//!   spawn ──▶ step ──▶ step ──▶ … ──▶ Finished ──▶ drain ──▶ Ok(units)
//!               │                        ▲
//!               │   stop / stop_all ─────┘   (stopped stages still drain:
//!               │                             flush batches, append
//!               └──▶ Err ──▶ stop_all ──▶ abort ──▶ Err(e)   sentinels,
//!                                                            leave groups)
//! ```
//!
//! Error propagation is uniform: the first stage to fail raises the shared
//! `stop_all` flag (stopping every other stage at its next step boundary),
//! releases what it holds via [`Stage::abort`], and surfaces the error
//! through its task future to `RunningPipeline::wait`. This is the single
//! hook point future robustness work (retry, backoff, fault injection,
//! tracing) extends — one lifecycle, not one per loop.

use super::Shared;
use pilot_dataflow::{Client, Payload, Resources, TaskError, TaskFuture};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What one [`Stage::step`] call accomplished.
pub(crate) enum StepOutcome {
    /// Work was done: `n` units (messages) to add to the task's total.
    Progress(u64),
    /// Nothing available right now; step again.
    Idle,
    /// The stage's stream is complete; proceed to drain.
    Finished,
}

/// One schedulable unit of the pipeline with a uniform lifecycle.
pub(crate) trait Stage: Send {
    /// Perform one bounded unit of work.
    fn step(&mut self) -> Result<StepOutcome, String>;

    /// Orderly shutdown after the last step — also on a *stop*, so
    /// cooperative cancellation still flushes batches, appends sentinels,
    /// commits offsets, and releases group membership.
    fn drain(&mut self) -> Result<(), String>;

    /// Release held resources after a failure (or failed drain). Must not
    /// block on other stages and must not fail.
    fn abort(&mut self);
}

/// Drive a stage through its lifecycle. Returns the summed
/// [`StepOutcome::Progress`] units on success. On any error the shared
/// `stop_all` flag is raised before the error propagates, so one failing
/// stage stops the whole pipeline (uniform error propagation).
pub(crate) fn drive(
    shared: &Shared,
    stop: Option<&AtomicBool>,
    stage: &mut dyn Stage,
) -> Result<u64, String> {
    let mut units = 0u64;
    let failed = loop {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) || shared.stopping() {
            break None;
        }
        match stage.step() {
            Ok(StepOutcome::Progress(n)) => units += n,
            Ok(StepOutcome::Idle) => {}
            Ok(StepOutcome::Finished) => break None,
            Err(e) => break Some(e),
        }
    };
    let failed = match failed {
        Some(e) => Some(e),
        None => stage.drain().err(),
    };
    match failed {
        None => Ok(units),
        Some(e) => {
            shared.stop_all.store(true, Ordering::Relaxed);
            stage.abort();
            Err(e)
        }
    }
}

/// Submit a task that builds a stage and [`drive`]s it. The stage is
/// constructed *inside* the task (so e.g. a producer's pacing epoch starts
/// when the task starts, not when it was submitted); a construction failure
/// propagates like a step failure, stopping the pipeline.
pub(crate) fn spawn(
    client: &Client,
    name: &str,
    shared: Arc<Shared>,
    stop: Option<Arc<AtomicBool>>,
    make: impl FnOnce(&Arc<Shared>) -> Result<Box<dyn Stage>, String> + Send + 'static,
) -> Result<TaskFuture, TaskError> {
    client.submit_full(name, Resources::default(), &[], move |_| {
        let mut stage = match make(&shared) {
            Ok(s) => s,
            Err(e) => {
                shared
                    .stop_all
                    .store(true, std::sync::atomic::Ordering::Relaxed);
                return Err(e);
            }
        };
        drive(&shared, stop.as_deref(), stage.as_mut()).map(|n| Arc::new(n) as Payload)
    })
}
