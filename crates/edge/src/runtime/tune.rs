//! The live knob table: one shared `TuneTable` of atomic knob cells
//! replaces the per-stage config *values* on the hot paths.
//!
//! [`PipelineConfig::resolve`](crate::pipeline::PipelineConfig::resolve)
//! still validates and splits the flat config at `start()` — but where the
//! stages used to read the frozen copies (`shared.transport.batch_max_bytes`
//! and friends), they now re-read the corresponding [`TuneTable`] cell at
//! their loop/poll boundaries:
//!
//! | cell              | re-read at                                         |
//! |-------------------|----------------------------------------------------|
//! | `batch_max_bytes` | every `DeviceProducer::step` / `Batcher::push`     |
//! | `linger_us`       | every `Batcher::push`                              |
//! | `prefetch_depth`  | every prefetch-loop send (queue admission gate)    |
//! | `fetch_max`       | every `Fetcher::poll` / `poll_ready`               |
//! | `compute_width`   | every published `ComputePool` job (via `set_width`)|
//! | `processors`      | mirror of the live consumer count (`scale_processors`) |
//!
//! so a change lands within one stage round without restarting anything.
//! All cells use relaxed atomics: each is an independent scalar, readers
//! need freshness (not ordering), and an un-touched table is bit-identical
//! to the seed's frozen-config behaviour — the default when no controller
//! runs.
//!
//! Writers are the feedback controller ([`crate::control`]) and
//! applications via [`RunningPipeline::tune`](super::RunningPipeline::tune).

use super::config::StageConfigs;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Shared atomic knob cells read by the stages at loop/poll boundaries.
/// See the module docs for which stage reads which cell and when.
#[derive(Debug)]
pub struct TuneTable {
    /// Producer batch threshold in encoded bytes (0 = serial transfers).
    batch_max_bytes: AtomicUsize,
    /// Linger window in microseconds for the first message of a batch.
    linger_us: AtomicU64,
    /// Prefetch-queue admission depth (batches a consumer may run ahead).
    prefetch_depth: AtomicUsize,
    /// Max records per partition per fetch (clamped to ≥ 1 on read).
    fetch_max: AtomicUsize,
    /// Live compute-pool width; mirrors `ComputePool::threads()`.
    compute_width: AtomicUsize,
    /// Live consumer-member count; mirrors `PipelineCtl::scale_processors`.
    processors: AtomicUsize,
}

impl TuneTable {
    /// Seed the table from the resolved per-stage configs: until something
    /// writes a cell, every stage reads exactly the values `resolve()`
    /// produced.
    pub(crate) fn from_stages(stages: &StageConfigs, compute_width: usize) -> Self {
        Self {
            batch_max_bytes: AtomicUsize::new(stages.transport.batch_max_bytes),
            linger_us: AtomicU64::new(stages.transport.linger.as_micros() as u64),
            prefetch_depth: AtomicUsize::new(stages.consumer.prefetch_depth),
            fetch_max: AtomicUsize::new(stages.consumer.fetch_max),
            compute_width: AtomicUsize::new(compute_width),
            processors: AtomicUsize::new(stages.consumer.processors),
        }
    }

    /// Current batch threshold; 0 means serial per-message transfers.
    pub fn batch_max_bytes(&self) -> usize {
        self.batch_max_bytes.load(Ordering::Relaxed)
    }

    /// Set the batch threshold. Setting 0 live is safe: producers drain
    /// their open batch before switching to the serial path.
    pub fn set_batch_max_bytes(&self, bytes: usize) {
        self.batch_max_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Current linger window.
    pub fn linger(&self) -> Duration {
        Duration::from_micros(self.linger_us.load(Ordering::Relaxed))
    }

    /// Set the linger window (only meaningful while batching is on).
    pub fn set_linger(&self, linger: Duration) {
        self.linger_us
            .store(linger.as_micros() as u64, Ordering::Relaxed);
    }

    /// Current prefetch admission depth.
    pub fn prefetch_depth(&self) -> usize {
        self.prefetch_depth.load(Ordering::Relaxed)
    }

    /// Set the prefetch admission depth. The consumer *shape* (inline vs
    /// prefetch thread) is fixed at member spawn from the then-current
    /// value; on a prefetching member the live value gates queue admission,
    /// clamped to ≥ 1 (a live 0 cannot turn the thread back inline).
    pub fn set_prefetch_depth(&self, depth: usize) {
        self.prefetch_depth.store(depth, Ordering::Relaxed);
    }

    /// Current per-partition fetch budget (≥ 1).
    pub fn fetch_max(&self) -> usize {
        self.fetch_max.load(Ordering::Relaxed).max(1)
    }

    /// Set the per-partition fetch budget (stored as given; reads clamp to
    /// ≥ 1 so a misconfigured 0 cannot stall fetching).
    pub fn set_fetch_max(&self, n: usize) {
        self.fetch_max.store(n, Ordering::Relaxed);
    }

    /// The compute-pool width mirror (authoritative value lives on the
    /// pool; `PipelineCtl` keeps the two in sync).
    pub fn compute_width(&self) -> usize {
        self.compute_width.load(Ordering::Relaxed)
    }

    pub(crate) fn set_compute_width(&self, width: usize) {
        self.compute_width.store(width, Ordering::Relaxed);
    }

    /// The live consumer-member count mirror (authoritative value is the
    /// ctl's member list; `scale_processors` keeps the two in sync).
    pub fn processors(&self) -> usize {
        self.processors.load(Ordering::Relaxed)
    }

    pub(crate) fn set_processors(&self, n: usize) {
        self.processors.store(n, Ordering::Relaxed);
    }
}
