//! # pilot-edge — the paper's contribution: a FaaS abstraction and runtime
//! for edge-to-cloud pipelines
//!
//! Pilot-Edge lets an application express an edge-to-cloud workload as three
//! functions (paper Listing 1) —
//!
//! ```text
//! def produce_edge(context)                      # sensing / data generation
//! def process_edge(context, data)                # edge-side processing
//! def process_cloud(context, data)               # cloud-side processing
//! ```
//!
//! — and a binding of those functions to *pilots* (paper Listing 2:
//! `pilot_edge`, `pilot_cloud_broker`, `pilot_cloud_processing`). The
//! framework then handles everything in between: packaging functions into
//! tasks on each pilot's cluster, creating the broker topic (one partition
//! per edge device), moving data over the (simulated) network, sharing
//! model state through the parameter server, and recording linked metrics
//! in every component.
//!
//! The crate mirrors that design:
//!
//! * [`faas`] — the function traits, the [`Context`] object ("information on
//!   the resource topology and shared state are via a context object"), and
//!   hot-swappable function slots (Section II-D: "the processing functions
//!   can be programmatically replaced at runtime").
//! * [`pipeline`] — [`EdgeToCloudPipeline`], the Listing-2 builder, plus
//!   validation of pilot capacities against the paper's resource envelopes.
//! * [`runtime`] — the running pipeline as a *staged engine*: every task
//!   (producer engine workers on the edge pilot, consumer members on the
//!   cloud pilot, partition:consumer ratio 1:1 by default) follows one
//!   `Stage` lifecycle — spawn → step → drain → abort — with sentinel-based
//!   termination and dynamic processor scaling via consumer-group
//!   rebalancing. See DESIGN.md §10 for the module map.
//! * [`deployment`] — the paper's deployment modalities (cloud-centric /
//!   hybrid / edge-centric) deciding where `process_edge` runs and what
//!   crosses the WAN.
//! * [`processors`] — ready-made `process_cloud` implementations wrapping
//!   the `pilot-ml` models (baseline, k-means, isolation forest,
//!   auto-encoder) with parameter-server weight publication, used by the
//!   experiments.
//! * [`control`] — the feedback controller closing the telemetry→knob loop
//!   (DESIGN.md §15): a control thread maps lag + bottleneck attribution
//!   onto typed actions over the live knob table — consumer pool, compute
//!   width, batching, prefetch, fetch budget, model placement — with
//!   hysteresis, per-knob cooldowns, and an append-only action journal.
//! * [`adapt`] — the lag-driven autoscaler (Section V's "dynamically scale
//!   resources across the continuum at runtime based on the application's
//!   objectives"); now the pinned-bounds, lag-only special case of the
//!   controller.
//! * [`planner`] — analytic capacity planning: predict throughput,
//!   bottleneck, and the latency floor of a deployment before running it
//!   (the conclusion's "optimal resource layout").
//! * [`placement`] — placement advice: given a model's per-byte compute
//!   cost and a link, should processing sit at the edge or in the cloud?
//!   (the trade-off Fig. 3's geographic experiment probes).
//! * [`summary`] — [`RunSummary`], the per-run digest (throughput, latency
//!   quantiles, bottleneck) the experiment harness prints.

pub mod adapt;
pub mod control;
pub mod deployment;
pub mod faas;
pub mod federation;
pub mod pipeline;
pub mod placement;
pub mod planner;
pub mod processors;
pub mod runtime;
pub mod summary;
pub mod windows;

pub use adapt::{AutoScalerConfig, ScalingEvent};
pub use control::{
    Action, BottleneckStage, ControlBounds, ControlEvent, ControllerConfig, MigrationPolicy,
};
pub use deployment::DeploymentMode;
pub use faas::{CloudFactory, Context, EdgeFactory, ProcessOutcome, ProduceFactory};
pub use federation::{FederationConfig, FederationSummary, RunningFederation};
pub use pilot_dataflow::ComputePool;
pub use pipeline::{EdgeToCloudPipeline, PipelineConfig, PipelineError};
pub use runtime::config::{
    ConsumerConfig, ProducerConfig, ProducerEngineKind, StageConfigs, TransportConfig,
};
pub use runtime::RunningPipeline;
pub use summary::RunSummary;
