//! Deployment modalities: where processing happens along the continuum.
//!
//! The paper (Section II-D and its companion emulation study \[8\])
//! distinguishes *cloud-centric* deployments — the pattern used for all of
//! Fig. 3: "we deploy the data generator on the edge and the processing
//! tasks ... on the cloud" — from *edge* and *hybrid* deployments, which it
//! recommends for WAN-limited scenarios ("both scenarios would benefit from
//! a hybrid edge-to-cloud deployment, e.g., by adding a data compression
//! step before the data transfer").

use serde::{Deserialize, Serialize};

/// Where the `process_edge` stage runs and what crosses the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeploymentMode {
    /// Generator on the edge; everything else in the cloud. Raw blocks
    /// cross the network. The paper's primary pattern.
    CloudCentric,
    /// `process_edge` runs on the edge device before transport (e.g.
    /// pre-aggregation / compression), shrinking what crosses the WAN;
    /// `process_cloud` still runs in the cloud.
    Hybrid,
    /// Full processing at the edge; only results (scores/aggregates) cross
    /// the network. `process_cloud` receives the *edge-processed* block and
    /// typically just archives it.
    EdgeCentric,
}

impl DeploymentMode {
    /// Does `process_edge` execute on the edge pilot in this mode?
    pub fn edge_processing(self) -> bool {
        matches!(self, DeploymentMode::Hybrid | DeploymentMode::EdgeCentric)
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeploymentMode::CloudCentric => "cloud-centric",
            DeploymentMode::Hybrid => "hybrid",
            DeploymentMode::EdgeCentric => "edge-centric",
        }
    }
}

impl std::fmt::Display for DeploymentMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(DeploymentMode::CloudCentric.label(), "cloud-centric");
        assert_eq!(DeploymentMode::Hybrid.label(), "hybrid");
        assert_eq!(DeploymentMode::EdgeCentric.label(), "edge-centric");
    }

    #[test]
    fn edge_processing_flags() {
        assert!(!DeploymentMode::CloudCentric.edge_processing());
        assert!(DeploymentMode::Hybrid.edge_processing());
        assert!(DeploymentMode::EdgeCentric.edge_processing());
    }
}
